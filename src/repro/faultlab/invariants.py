"""System invariant checkers for fault-lab runs.

Each checker inspects a live :class:`~repro.mediation.network.
GridVineNetwork` (omniscient harness view — allowed for ground-truth
checks, never inside protocol logic) and returns a list of violation
strings; an empty list means the invariant holds.  They come in two
flavours:

*always* invariants
    Must hold at any quiescent instant, faults or not:
    :func:`check_routing_tables` (every routing reference verifiably
    covers its level's complementary subtree) and
    :func:`check_engine_cache` (no cached reformulation plan deviates
    from a fresh planning run over the current mapping mirror).

*eventual* invariants
    Must hold after every fault healed and anti-entropy ran — the
    explorer drives the network to that state before checking:
    :func:`check_trie_coverage` (every leaf of the trie has a live
    holder), :func:`check_replica_agreement` (replica stores converge
    bit-for-bit), :func:`check_synopsis_convergence` (an observer's
    CRDT registry holds every peer's newest digest) and
    :func:`check_recall` (panel queries recover their ground-truth
    answers — the paper's headline property).

:func:`check_live_recall` is the odd one out: it judges the *report*
of a scenario that ran under faults, asserting the mid-fault recall
never fell below a floor — the consensus-answers style lower bound on
answer quality while replicas disagree.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.core import QueryEngine
    from repro.mediation.network import GridVineNetwork
    from repro.resilience.scenario import Panel, ScenarioReport


@dataclass(frozen=True)
class Violation:
    """One invariant violation: which invariant, and what it saw."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


@dataclass
class LabContext:
    """Everything the checkers may look at for one run."""

    net: "GridVineNetwork"
    #: recall panel ``(query, ground-truth subjects)`` — enables the
    #: recall invariants
    panel: "Panel | None" = None
    #: node id issuing check queries / owning the observed registry
    origin: str | None = None
    #: engine under test (enables the cache-coherence invariant)
    engine: "QueryEngine | None" = None
    #: scenario report of the faulted run (enables live recall)
    report: "ScenarioReport | None" = None
    #: floor for post-heal recall (eventual invariant)
    min_recall: float = 0.9
    #: floor for mean recall *during* the faulted run
    min_live_recall: float = 0.4
    #: query knobs for the post-heal recall probe
    strategy: str = "iterative"
    max_hops: int = 8

    def origin_id(self) -> str:
        return self.origin if self.origin is not None \
            else self.net.peer_ids()[0]


# ----------------------------------------------------------------------
# Always invariants
# ----------------------------------------------------------------------

def check_routing_tables(ctx: LabContext) -> list[str]:
    """Every routing reference covers its level's complement.

    A reference at level ``l`` of peer ``p`` must point at an existing
    peer whose path is prefix-comparable with ``p.path.
    sibling_prefix(l)`` — otherwise greedy forwarding can stop
    extending the common prefix and messages loop or die.  Maintenance
    repair must never adopt a reference that breaks this, no matter
    what the fault schedule did to the probes.
    """
    violations = []
    peers = ctx.net.peers
    for node_id in sorted(peers):
        peer = peers[node_id]
        for level, refs in enumerate(peer.routing_table):
            complement = peer.path.sibling_prefix(level)
            for ref in refs:
                if ref == node_id:
                    violations.append(f"{node_id} references itself "
                                      f"at level {level}")
                    continue
                target = peers.get(ref)
                if target is None:
                    violations.append(f"{node_id} level {level} "
                                      f"references unknown peer {ref}")
                    continue
                if not (complement.is_prefix_of(target.path)
                        or target.path.is_prefix_of(complement)):
                    violations.append(
                        f"{node_id} level {level} references {ref} "
                        f"(path {target.path.bits}) outside complement "
                        f"{complement.bits}"
                    )
    return violations


def check_engine_cache(ctx: LabContext) -> list[str]:
    """No cached plan may differ from a fresh planning run.

    Replays every live plan-cache entry against the engine's current
    mapping mirror; a mismatch means an invalidation was missed (a
    mapping event observed by the mirror did not evict the plans that
    depend on it).
    """
    engine = ctx.engine
    if engine is None:
        return []
    from repro.reformulation.planner import plan_reformulations

    violations = []
    for (query, max_hops, include_original), entry in engine.cache.entries():
        fresh = plan_reformulations(query, engine.graph, max_hops=max_hops,
                                    include_original=include_original)
        if set(entry.reformulations) != set(fresh):
            violations.append(
                f"stale cached plan for {query} (hops {max_hops}): "
                f"{len(entry.reformulations)} cached vs "
                f"{len(fresh)} freshly planned reformulations"
            )
    return violations


# ----------------------------------------------------------------------
# Eventual invariants (check after heal + anti-entropy)
# ----------------------------------------------------------------------

def check_trie_coverage(ctx: LabContext) -> list[str]:
    """Every trie leaf keeps at least one online replica."""
    by_path: dict[str, list[str]] = {}
    for node_id, peer in ctx.net.peers.items():
        by_path.setdefault(peer.path.bits, []).append(node_id)
    violations = []
    for bits in sorted(by_path):
        holders = by_path[bits]
        if not any(ctx.net.network.is_online(n) for n in holders):
            violations.append(
                f"leaf {bits or '(root)'} has no online holder "
                f"(replica group {sorted(holders)} all down)"
            )
    return violations


def check_replica_agreement(ctx: LabContext) -> list[str]:
    """Replica groups hold identical stores once anti-entropy ran."""
    by_path: dict[str, list] = {}
    for node_id in sorted(ctx.net.peers):
        peer = ctx.net.peers[node_id]
        by_path.setdefault(peer.path.bits, []).append(peer)
    violations = []
    for bits in sorted(by_path):
        group = by_path[bits]
        if len(group) < 2:
            continue
        reference = group[0]
        ref_counts = Counter(
            (key_bits, value)
            for key_bits, values in reference.store.items()
            for value in values
        )
        for other in group[1:]:
            other_counts = Counter(
                (key_bits, value)
                for key_bits, values in other.store.items()
                for value in values
            )
            if ref_counts != other_counts:
                missing = sum((ref_counts - other_counts).values())
                extra = sum((other_counts - ref_counts).values())
                violations.append(
                    f"replicas {reference.node_id} and {other.node_id} "
                    f"(leaf {bits}) disagree: {missing} value(s) "
                    f"missing, {extra} extra"
                )
    return violations


def check_synopsis_convergence(ctx: LabContext) -> list[str]:
    """The origin's registry holds every peer's newest digest.

    The synopsis registry is a state-based CRDT; after partitions heal
    and one anti-entropy sweep runs, the observing peer must know a
    digest at least as new as what each peer would publish *right
    now*.  Any gap means merge or dissemination lost an update.
    """
    origin = ctx.net.peers[ctx.origin_id()]
    violations = []
    for node_id in sorted(ctx.net.peers):
        if node_id == origin.node_id:
            continue
        peer = ctx.net.peers[node_id]
        current = peer.synopsis_digest()
        if current is None:
            continue
        known = origin.synopses.get(node_id)
        if known is None:
            violations.append(f"origin knows no digest for {node_id} "
                              f"(current version {current.version})")
        elif known.version < current.version:
            violations.append(
                f"origin's digest for {node_id} is stale: version "
                f"{known.version} < current {current.version}"
            )
    return violations


def check_recall(ctx: LabContext) -> list[str]:
    """Post-heal panel queries reach the ground-truth recall floor.

    Issues every panel query from the origin (through the real
    protocol — this spends messages, so the explorer runs it last) and
    requires per-query recall ``>= ctx.min_recall``.
    """
    if not ctx.panel:
        return []
    from repro.resilience.scenario import recall_hits

    violations = []
    for index, (query, truth) in enumerate(ctx.panel):
        if not truth:
            continue
        outcome = ctx.net.search_for(query, strategy=ctx.strategy,
                                     max_hops=ctx.max_hops,
                                     origin=ctx.origin_id())
        hits = recall_hits(outcome)
        recall = len(hits & truth) / len(truth)
        if recall < ctx.min_recall:
            violations.append(
                f"panel query {index} recall {recall:.3f} < "
                f"{ctx.min_recall:.3f} after heal "
                f"({len(hits & truth)}/{len(truth)} subjects)"
            )
    return violations


def check_live_recall(ctx: LabContext) -> list[str]:
    """Mean recall *under faults* stays above the configured floor."""
    report = ctx.report
    if report is None or not report.per_query_recall:
        return []
    if report.recall < ctx.min_live_recall:
        return [
            f"mean recall under faults {report.recall:.3f} < floor "
            f"{ctx.min_live_recall:.3f} "
            f"({report.queries_complete}/{report.queries_issued} "
            f"queries complete)"
        ]
    return []


#: name -> checker, in checking order (cheap state scans first, the
#: message-spending recall probe last)
INVARIANTS: dict[str, Callable[[LabContext], list[str]]] = {
    "routing_tables": check_routing_tables,
    "trie_coverage": check_trie_coverage,
    "replica_agreement": check_replica_agreement,
    "synopsis_convergence": check_synopsis_convergence,
    "engine_cache": check_engine_cache,
    "live_recall": check_live_recall,
    "recall": check_recall,
}


@dataclass
class InvariantReport:
    """All violations one run produced, grouped for reporting."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def failed_invariants(self) -> list[str]:
        """Names of invariants with at least one violation, sorted."""
        return sorted({v.invariant for v in self.violations})

    def summary(self) -> list[str]:
        if self.ok:
            return ["all invariants hold"]
        return [str(v) for v in self.violations]


def run_invariants(ctx: LabContext,
                   names: list[str] | None = None) -> InvariantReport:
    """Run the named invariants (default: all) against ``ctx``."""
    selected = list(INVARIANTS) if names is None else names
    report = InvariantReport()
    for name in selected:
        checker = INVARIANTS[name]
        for detail in checker(ctx):
            report.violations.append(Violation(name, detail))
    return report
