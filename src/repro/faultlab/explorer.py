"""Randomized fault-scenario exploration with replay and shrinking.

The explorer closes the loop the fault lab exists for:

1. **generate** — :func:`generate_plan` derives a whole fault
   schedule (partitions with heals, lossy/duplicating/reordering
   links, crash-restarts) from a single integer seed;
2. **run** — :meth:`ScenarioExplorer.run_trial` executes the schedule
   against a scripted :class:`~repro.resilience.scenario.
   ScenarioSpec` deployment, then drives the network to a healed,
   anti-entropied quiescent state and checks every system invariant
   (:mod:`repro.faultlab.invariants`);
3. **replay** — the *same seed* rebuilds the deployment, the corpus,
   the churn timeline and the fault schedule, so any failure the
   explorer prints is reproducible from that one number;
4. **shrink** — :meth:`ScenarioExplorer.shrink` greedily deletes
   clauses from a failing schedule while the failure persists,
   yielding a minimal reproducer (per-clause RNG seeding makes clause
   deletion side-effect-free — see :mod:`repro.faultlab.plan`).

Intensity profiles scale how hostile generated schedules are:
``"light"`` (a few mild clauses, everything heals early — the CI
smoke profile), ``"heavy"`` (more and harsher clauses), and
``"extreme"`` (heavy plus one kill-every-reply clause that caps
under-fault recall at whatever the origin can answer from its own
leaf; paired with a strict ``min_live_recall`` floor it is the
built-in failing case used to exercise replay and shrinking end to
end).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.faultlab.injector import FaultInjector
from repro.faultlab.invariants import (
    InvariantReport,
    LabContext,
    run_invariants,
)
from repro.faultlab.plan import (
    CrashRestart,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    MessageReorder,
    Partition,
)
from repro.resilience.scenario import (
    ScenarioReport,
    ScenarioRunner,
    ScenarioSpec,
)
from repro.stats.gossip import StatsAntiEntropy

INTENSITIES = ("light", "heavy", "extreme")


def default_spec(seed: int = 0) -> ScenarioSpec:
    """The small deployment generated trials run against."""
    return ScenarioSpec(
        num_peers=20,
        replication=2,
        refs_per_level=2,
        seed=seed,
        num_schemas=3,
        num_entities=24,
        churn=False,  # the fault plan owns the outage schedule
        maintenance=True,
        maintenance_interval=15.0,
        warmup=30.0,
        num_queries=6,
        query_interval=30.0,
        strategy="iterative",
        max_hops=8,
    )


def spec_horizon(spec: ScenarioSpec) -> float:
    """Virtual seconds a spec's scripted run covers."""
    return spec.warmup + spec.num_queries * spec.query_interval


def generate_plan(seed: int, node_ids: list[str], horizon: float,
                  intensity: str = "light",
                  protected: tuple[str, ...] = ()) -> FaultPlan:
    """Derive a fault schedule from ``seed`` alone.

    ``node_ids`` and ``horizon`` come from the spec (not from a live
    network), so the plan exists before anything is built — replay
    needs only the seed.  ``protected`` nodes are never crashed (the
    query origin must stay able to issue operations); partitions may
    still isolate them, which is exactly the interesting case.
    """
    if intensity not in INTENSITIES:
        raise ValueError(f"unknown intensity {intensity!r}")
    rng = random.Random(seed)
    nodes = sorted(node_ids)
    crashable = [n for n in nodes if n not in protected]
    clauses: list = []

    heavy = intensity in ("heavy", "extreme")
    count = rng.randint(2, 4) if not heavy else rng.randint(4, 7)
    max_p = 0.10 if not heavy else 0.35
    for _ in range(count):
        kind = rng.choice(("drop", "delay", "duplicate", "reorder",
                           "partition", "crash"))
        start = rng.uniform(0.0, 0.6 * horizon)
        length = rng.uniform(0.1, 0.25 if not heavy else 0.5) * horizon
        until = min(start + length, 0.9 * horizon)
        if kind == "drop":
            clauses.append(MessageDrop(
                probability=round(rng.uniform(0.02, max_p), 3),
                start=round(start, 1), until=round(until, 1),
            ))
        elif kind == "delay":
            clauses.append(MessageDelay(
                probability=round(rng.uniform(0.05, 0.3), 3),
                jitter_min=round(rng.uniform(0.5, 2.0), 1),
                jitter_max=round(rng.uniform(5.0, 25.0), 1),
                start=round(start, 1), until=round(until, 1),
            ))
        elif kind == "duplicate":
            clauses.append(MessageDuplicate(
                probability=round(rng.uniform(0.05, 0.3), 3),
                copies=rng.randint(1, 2),
                spread=round(rng.uniform(1.0, 8.0), 1),
                start=round(start, 1), until=round(until, 1),
            ))
        elif kind == "reorder":
            clauses.append(MessageReorder(
                probability=round(rng.uniform(0.05, 0.25), 3),
                hold_max=round(rng.uniform(5.0, 20.0), 1),
                start=round(start, 1), until=round(until, 1),
            ))
        elif kind == "partition":
            shuffled = list(nodes)
            rng.shuffle(shuffled)
            cut = rng.randint(max(1, len(nodes) // 5),
                              max(2, len(nodes) // 2))
            side_b = tuple(sorted(shuffled[:cut]))
            side_a = tuple(sorted(shuffled[cut:]))
            clauses.append(Partition(
                side_a=side_a, side_b=side_b,
                start=round(start, 1),
                heal_at=round(until, 1),
                symmetric=rng.random() < 0.7,
            ))
        else:  # crash
            if not crashable:
                continue
            node = rng.choice(crashable)
            downtime = rng.uniform(10.0, 0.2 * horizon)
            clauses.append(CrashRestart(
                node=node, at=round(start, 1),
                restart_at=round(min(start + downtime, 0.9 * horizon), 1),
            ))
    if intensity == "extreme":
        # Every reply vanishes for the whole run (stalled queries
        # stretch virtual time past any finite horizon, so the window
        # is unbounded — uninstall ends it): queries keep only what
        # the origin answers from its own leaf, so a strict
        # live-recall floor reliably fails.  Exercised by tests of
        # failure replay and schedule shrinking.
        clauses.append(MessageDrop(kinds=("reply",), probability=1.0))
    return FaultPlan(seed=seed, faults=tuple(clauses))


@dataclass
class Trial:
    """One explored scenario: schedule, measurements, verdict."""

    seed: int
    plan: FaultPlan
    report: ScenarioReport
    invariants: InvariantReport

    @property
    def ok(self) -> bool:
        return self.invariants.ok

    def summary(self) -> list[str]:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"seed {self.seed}: {verdict} — {len(self.plan)} fault "
            f"clause(s), recall {self.report.recall:.3f} under faults, "
            f"{self.report.messages_dropped} drop(s)",
        ]
        if not self.ok:
            lines += [f"  violated {name}"
                      for name in self.invariants.failed_invariants()]
        return lines


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing schedule."""

    seed: int
    original: FaultPlan
    shrunk: FaultPlan
    #: trials executed while shrinking (including the reproduction)
    trials: int
    #: invariants the original failure violated
    failed_invariants: list[str] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return len(self.original) - len(self.shrunk)

    def summary(self) -> list[str]:
        lines = [
            f"shrunk {len(self.original)} -> {len(self.shrunk)} fault "
            f"clause(s) in {self.trials} trial(s); still violates "
            + ", ".join(self.failed_invariants),
        ]
        if len(self.shrunk) == 0:
            lines.append("failure is fault-independent: it persists "
                         "with no faults injected (check the "
                         "configured floors against the fault-free "
                         "deployment)")
        else:
            lines.append("minimal reproducer:")
            lines += ["  " + line for line in self.shrunk.describe()]
        return lines


class ScenarioExplorer:
    """Seeded random exploration of fault schedules over one spec.

    Parameters
    ----------
    spec:
        Scenario shape every trial runs (per-trial ``seed`` and
        ``faults`` are filled in by the explorer); defaults to
        :func:`default_spec`.
    intensity:
        Schedule-generation profile (``light`` / ``heavy`` /
        ``extreme``).
    invariants:
        Names from :data:`repro.faultlab.invariants.INVARIANTS` to
        check (default: all).
    min_recall / min_live_recall:
        Floors for the post-heal and under-faults recall invariants.
    """

    def __init__(self, spec: ScenarioSpec | None = None,
                 intensity: str = "light",
                 invariants: list[str] | None = None,
                 min_recall: float = 0.9,
                 min_live_recall: float = 0.4) -> None:
        if intensity not in INTENSITIES:
            raise ValueError(f"unknown intensity {intensity!r}")
        self.spec = spec if spec is not None else default_spec()
        self.intensity = intensity
        self.invariants = invariants
        self.min_recall = min_recall
        self.min_live_recall = min_live_recall

    # ------------------------------------------------------------------
    # Plan derivation
    # ------------------------------------------------------------------

    def plan_for_seed(self, seed: int) -> FaultPlan:
        """The fault schedule trial ``seed`` will run (pure function)."""
        node_ids = [f"peer-{i}" for i in range(self.spec.num_peers)]
        # ScenarioRunner's default origin is the first sorted peer id.
        origin = sorted(node_ids)[0]
        return generate_plan(seed, node_ids, spec_horizon(self.spec),
                             intensity=self.intensity,
                             protected=(origin,))

    # ------------------------------------------------------------------
    # Trials
    # ------------------------------------------------------------------

    def run_trial(self, seed: int,
                  plan: FaultPlan | None = None,
                  trace_path: str | None = None) -> Trial:
        """Run one seeded trial: scenario, stabilization, invariants.

        ``plan`` overrides the seed-derived schedule (used by the
        shrinker); everything else still derives from ``seed``.
        ``trace_path`` installs a span recorder before the scenario
        runs and exports the trial's trace (queries, retries, injected
        faults) as sorted JSONL afterwards — tracing changes no
        behaviour, so a traced trial reproduces the untraced one.
        """
        plan = self.plan_for_seed(seed) if plan is None else plan
        spec = replace(self.spec, seed=seed, faults=plan)
        runner = ScenarioRunner.from_spec(spec)
        if trace_path is not None:
            runner.network.install_tracer()
        report = runner.run()
        self._stabilize(runner)
        if trace_path is not None:
            runner.network.export_trace(trace_path)
        # The cache-coherence invariant audits the cache the workload
        # actually exercised (an "engine"-strategy run, whose cached
        # plans lived through every mapping event and fault).  Other
        # strategies have no engine cache, so the check is skipped —
        # warming a throwaway cache post-run would compare it against
        # an unchanged graph, a check that can never fail.
        ctx = LabContext(
            net=runner.network,
            panel=runner.panel,
            origin=runner.origin,
            engine=runner.engine,
            report=report,
            min_recall=self.min_recall,
            min_live_recall=self.min_live_recall,
            strategy=spec.strategy if spec.strategy in
            ("local", "iterative", "recursive") else "iterative",
            max_hops=spec.max_hops,
        )
        return Trial(seed=seed, plan=plan, report=report,
                     invariants=run_invariants(ctx, self.invariants))

    def _stabilize(self, runner: ScenarioRunner) -> None:
        """Drive the healed network to the eventually-consistent state
        the eventual invariants are defined over.

        The scenario already uninstalled its injector (healing every
        fault) and stopped its background processes; what remains is
        to drain in-flight traffic, let failure-detector quarantines
        expire and run the overlay's own repair machinery explicitly:
        routing-table repair sweeps (levels emptied during a partition
        have no refs left to probe, so the periodic path alone would
        never refill them), one replica anti-entropy exchange (each
        peer pushes its store to its whole replica group — one round
        gives pairwise convergence) and one synopsis anti-entropy
        sweep from the origin.
        """
        from repro.pgrid.maintenance import MaintenanceProcess

        net = runner.network
        spec = runner.spec
        net.settle()
        # Blacklist entries quarantine refs for 2x the maintenance
        # interval past the drop; advance past the last possible
        # expiry so repair may re-adopt recovered peers.
        net.loop.run_until(net.loop.now
                           + 2 * spec.maintenance_interval + 1.0)
        repair = MaintenanceProcess(
            net.peers,
            interval=spec.maintenance_interval,
            refs_per_level=getattr(net, "refs_per_level",
                                   spec.refs_per_level),
            rng=random.Random(spec.seed + 404),
        )
        for _sweep in range(3):
            if repair.repair_sweep() == 0:
                break
            net.settle()
        for node_id in sorted(net.peers):
            peer = net.peers[node_id]
            if not peer.online:
                continue
            items = [
                (bits, value)
                for bits, values in sorted(peer.store.items())
                for value in values
            ]
            for replica in sorted(peer.replicas):
                peer.send(replica, "sync_push", {"items": items})
        net.settle()
        sweep = StatsAntiEntropy(net.peers, runner.origin)
        sweep.sweep()
        net.settle()

    def explore(self, budget: int, start_seed: int = 0) -> list[Trial]:
        """Run ``budget`` consecutive seeded trials."""
        return [self.run_trial(seed)
                for seed in range(start_seed, start_seed + budget)]

    # ------------------------------------------------------------------
    # Shrinking
    # ------------------------------------------------------------------

    def shrink(self, seed: int,
               trial: Trial | None = None) -> ShrinkResult:
        """Minimize the failing schedule of trial ``seed``.

        Reproduces the failure first (a non-failing seed raises
        ``ValueError``; pass an already-run ``trial`` to skip the
        reproduction — scenario runs are the expensive unit here),
        then greedily deletes clauses while at least one of the
        originally violated invariants keeps failing.  The result is
        locally minimal: deleting any single remaining clause makes
        the failure disappear.  A shrink all the way to the *empty*
        plan means the failure is fault-independent (the deployment
        misses the configured floors even without faults) — reported
        as such rather than fingering an arbitrary clause.
        """
        original = self.plan_for_seed(seed)
        trials = 0
        if trial is None or trial.plan != original:
            trial = self.run_trial(seed, plan=original)
            trials += 1
        if trial.ok:
            raise ValueError(f"seed {seed} does not fail; "
                             "nothing to shrink")
        target = set(trial.invariants.failed_invariants())
        current = original
        progress = True
        while progress and len(current) > 0:
            progress = False
            for index in range(len(current)):
                candidate = current.without(index)
                attempt = self.run_trial(seed, plan=candidate)
                trials += 1
                if target & set(attempt.invariants.failed_invariants()):
                    current = candidate
                    progress = True
                    break
        return ShrinkResult(
            seed=seed,
            original=original,
            shrunk=current,
            trials=trials,
            failed_invariants=sorted(target),
        )


def replay(seed: int, spec: ScenarioSpec | None = None,
           intensity: str = "light",
           min_recall: float = 0.9,
           min_live_recall: float = 0.4) -> Trial:
    """Re-run one explored scenario from its printed seed alone."""
    explorer = ScenarioExplorer(spec=spec, intensity=intensity,
                                min_recall=min_recall,
                                min_live_recall=min_live_recall)
    return explorer.run_trial(seed)


# FaultInjector is re-exported here for callers scripting their own
# trials next to the explorer.
__all__ = [
    "FaultInjector",
    "INTENSITIES",
    "ScenarioExplorer",
    "ShrinkResult",
    "Trial",
    "default_spec",
    "generate_plan",
    "replay",
    "spec_horizon",
]
