"""Deterministic fault injection on a :class:`SimNetwork`.

:class:`FaultInjector` executes a :class:`~repro.faultlab.plan.
FaultPlan` against a live network by occupying the two hook points the
transport exposes:

* :meth:`on_send` — consulted for every message *before* a latency is
  sampled; partitions and drop clauses answer with a drop reason and
  the message never touches the wire (the metrics record the drop
  under that reason, per kind);
* :meth:`dispatch` — owns delivery scheduling for messages that
  survived; delay clauses add jitter, duplicate clauses clone extra
  deliveries, reorder clauses hold a message until later traffic on
  the same link overtakes it.

Crash/restart clauses are scheduled on the event loop at install time.
The injector mirrors :class:`~repro.simnet.churn.ChurnProcess`'s
idempotent crash semantics: it only crashes nodes that are online and
only restarts nodes it crashed itself, so the two processes compose on
one network without fighting over bookkeeping.

Everything the injector decides comes from per-clause RNGs seeded by
``(plan.seed, clause identity)``; the network's own RNG is never
touched, so installing a plan whose clauses never fire leaves the
simulation bit-identical to a fault-free run.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.faultlab.plan import (
    CrashRestart,
    FOREVER,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    MessageReorder,
    Partition,
    clause_seed,
)
from repro.simnet.events import SimulationError
from repro.simnet.network import Message
from repro.simnet.transport import Transport

#: virtual seconds a released held message trails the overtaking one
_REORDER_EPSILON = 1e-3


class FaultInjector:
    """Applies one :class:`FaultPlan` to one :class:`Transport`.

    Fault injection lives at the transport layer: the transport calls
    :meth:`on_send` for a pre-latency drop verdict and hands delivery
    scheduling to :meth:`dispatch`, so the same fault plans apply to
    any transport implementation (the in-process network or a shard's
    local transport).

    Use as a context manager (``with FaultInjector(net, plan):``) or
    call :meth:`install` / :meth:`uninstall` explicitly.  Counters in
    :attr:`injected` (and the per-kind breakdown in
    ``transport.metrics.faults_by_kind``) record what actually fired.
    """

    def __init__(self, transport: Transport, plan: FaultPlan) -> None:
        self.transport = transport
        #: historical alias for :attr:`transport`
        self.network = transport
        self.plan = plan
        #: action -> times it fired (drop, partition, duplicate,
        #: delay, reorder, crash, restart)
        self.injected: dict[str, int] = {}
        self._installed = False
        #: per-clause deterministic randomness (see plan.clause_seed);
        #: repeated identical clauses get independent streams via
        #: their occurrence ordinal
        occurrences: dict[Any, int] = {}
        self._rngs: dict[int, random.Random] = {}
        for index, clause in enumerate(plan.faults):
            ordinal = occurrences.get(clause, 0)
            occurrences[clause] = ordinal + 1
            self._rngs[index] = random.Random(
                clause_seed(plan.seed, clause, ordinal))
        self._partitions: list[Partition] = [
            c for c in plan.faults if isinstance(c, Partition)
        ]
        self._drops: list[tuple[int, MessageDrop]] = []
        self._duplicates: list[tuple[int, MessageDuplicate]] = []
        self._delays: list[tuple[int, MessageDelay]] = []
        self._reorders: list[tuple[int, MessageReorder]] = []
        for index, clause in enumerate(plan.faults):
            if isinstance(clause, MessageDrop):
                self._drops.append((index, clause))
            elif isinstance(clause, MessageDuplicate):
                self._duplicates.append((index, clause))
            elif isinstance(clause, MessageDelay):
                self._delays.append((index, clause))
            elif isinstance(clause, MessageReorder):
                self._reorders.append((index, clause))
        #: (src, dst) -> held (message, planned delay, flush handle)
        self._held: dict[tuple[str, str], list] = {}
        #: nodes this injector crashed and still owes a restart
        self._down: set[str] = set()
        #: virtual time of install; all clause windows are *relative*
        #: to it, so the same plan means the same thing no matter how
        #: much virtual time deployment building consumed
        self._epoch = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def install(self) -> "FaultInjector":
        """Attach to the transport and schedule crash/restart events."""
        if self.transport.fault_injector is not None:
            raise SimulationError("another fault injector is installed")
        self.transport.install_fault_injector(self)
        self._installed = True
        self._epoch = self.transport.loop.now
        for clause in self.plan.faults:
            if isinstance(clause, CrashRestart):
                self.transport.loop.schedule(
                    clause.at, self._crash, clause)
                if clause.restart_at != FOREVER:
                    self.transport.loop.schedule(
                        clause.restart_at, self._restart, clause.node)
        return self

    def uninstall(self) -> None:
        """Detach; flush held messages and restart crashed nodes.

        Uninstalling *heals everything* the plan broke: pending
        reordered messages are released (in held order) and every node
        the injector still holds down comes back online — a plan can
        therefore never leak faults past its own run.
        """
        if not self._installed:
            return
        self._installed = False
        self.transport.uninstall_fault_injector(self)
        for link in sorted(self._held):
            for message, delay, flush_handle in self._held[link]:
                flush_handle.cancel()
                self.transport.loop.schedule(delay, self.transport._deliver,
                                           message)
        self._held.clear()
        for node_id in sorted(self._down):
            self._restart(node_id)

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------

    def _crash(self, clause: CrashRestart) -> None:
        if not self._installed:
            return
        node_id = clause.node
        if node_id not in self.transport:
            return
        if not self.transport.is_online(node_id):
            return  # someone else (e.g. churn) beat us to it
        self.transport.set_online(node_id, False)
        self._down.add(node_id)
        self._record("crash", "node")

    def _restart(self, node_id: str) -> None:
        if node_id not in self._down:
            return  # not ours, or already restarted
        self._down.discard(node_id)
        if node_id not in self.transport:
            return
        if self.transport.is_online(node_id):
            return  # externally recovered meanwhile
        self.transport.set_online(node_id, True)
        self._record("restart", "node")

    def currently_down(self) -> set[str]:
        """Nodes this injector holds offline right now."""
        return set(self._down)

    # ------------------------------------------------------------------
    # Transport hooks (called by SimNetwork.send)
    # ------------------------------------------------------------------

    def on_send(self, message: Message) -> str | None:
        """Drop verdict for one message: a reason string, or ``None``.

        Partitions are consulted first (they are absolute, no
        probability), then drop clauses in plan order.
        """
        now = self.transport.loop.now - self._epoch
        for cut in self._partitions:
            if cut.blocks(message, now):
                self._record("partition", message.kind)
                return "partition"
        for index, clause in self._drops:
            if clause.matches(message, now):
                if self._rngs[index].random() < clause.probability:
                    self._record("drop", message.kind)
                    return "fault"
        return None

    def dispatch(self, message: Message, delay: float,
                 deliver: Callable[[Message], None]) -> None:
        """Schedule delivery, applying delay/duplicate/reorder clauses.

        ``delay`` is the latency the network already sampled for the
        message; faults only ever *add* to it, never consume network
        randomness.
        """
        now = self.transport.loop.now - self._epoch
        loop = self.transport.loop
        for index, clause in self._delays:
            if clause.matches(message, now):
                rng = self._rngs[index]
                if rng.random() < clause.probability:
                    delay += rng.uniform(clause.jitter_min,
                                         clause.jitter_max)
                    self._record("delay", message.kind, message)
        # Duplicates fire before any reorder hold, so stacking the two
        # clause kinds behaves as advertised: the copies travel
        # normally even when the original is held back.
        for index, clause in self._duplicates:
            if clause.matches(message, now):
                rng = self._rngs[index]
                if rng.random() < clause.probability:
                    for _copy in range(clause.copies):
                        self._record("duplicate", message.kind, message)
                        loop.schedule(delay + rng.uniform(0.0, clause.spread),
                                      deliver, self._clone(message))
        link = (message.src, message.dst)
        for index, clause in self._reorders:
            if clause.matches(message, now):
                if self._rngs[index].random() < clause.probability:
                    self._record("reorder", message.kind, message)
                    self._hold(link, message, delay, clause.hold_max)
                    return
        loop.schedule(delay, deliver, message)
        self._release_held(link, after_delay=delay)

    # ------------------------------------------------------------------
    # Reordering internals
    # ------------------------------------------------------------------

    def _hold(self, link: tuple[str, str], message: Message,
              delay: float, hold_max: float) -> None:
        entry: list = [message, delay, None]
        entry[2] = self.transport.loop.schedule(
            hold_max, self._flush, link, id(message))
        self._held.setdefault(link, []).append(tuple(entry))

    def _release_held(self, link: tuple[str, str],
                      after_delay: float) -> None:
        """Deliver held messages just behind the overtaking one."""
        held = self._held.pop(link, None)
        if not held:
            return
        for offset, (message, _delay, flush_handle) in enumerate(held, 1):
            flush_handle.cancel()
            self.transport.loop.schedule(
                after_delay + offset * _REORDER_EPSILON,
                self.transport._deliver, message)

    def _flush(self, link: tuple[str, str], message_id: int) -> None:
        """Timeout release: the link stayed quiet past ``hold_max``."""
        held = self._held.get(link)
        if not held:
            return
        kept = []
        for entry in held:
            message, delay, _flush_handle = entry
            if id(message) == message_id:
                self.transport.loop.schedule(delay, self.transport._deliver,
                                           message)
            else:
                kept.append(entry)
        if kept:
            self._held[link] = kept
        else:
            self._held.pop(link, None)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _record(self, action: str, kind: str,
                message: Message | None = None) -> None:
        self.injected[action] = self.injected.get(action, 0) + 1
        self.transport.metrics.record_fault(action, kind)
        if message is not None and message.trace is not None:
            tracer = self.transport.tracer
            if tracer is not None:
                # Annotate the trace with *why* a hop stalled or
                # vanished: the event parents under the message's
                # current context (the sender span for pre-send drops,
                # the hop span for post-send delay/duplicate/reorder).
                tracer.event(f"fault:{action}", peer=message.src,
                             time=self.transport.loop.now,
                             context=message.trace, kind=kind)

    def _clone(self, message: Message) -> Message:
        """A duplicate delivery: same content, independent payload dict
        (handlers that copy-and-mutate payloads must not alias)."""
        copy = Message(
            kind=message.kind,
            src=message.src,
            dst=message.dst,
            payload=dict(message.payload),
            hops=message.hops,
            sent_at=message.sent_at,
            op_tag=message.op_tag,
        )
        # The clone stays on the original's causal chain: its delivery
        # re-activates the same hop span, so duplicated replies still
        # attribute their downstream sends to the right trace.
        copy.trace = message.trace
        return copy


class InstalledPlan:
    """One :class:`FaultPlan` live on one deployment, however sharded.

    Aggregates the per-transport :class:`FaultInjector` instances a
    plan installation produced (one for a single-loop transport, one
    per shard for a :class:`~repro.simnet.shard.ShardedTransport`) so
    scenario harnesses can stay transport-agnostic: uninstall heals
    everything everywhere, and :attr:`injected` reports the
    deployment-wide totals.
    """

    def __init__(self, injectors: list[FaultInjector]) -> None:
        self.injectors = injectors

    @property
    def injected(self) -> dict[str, int]:
        """Fired-fault counts by action, summed over all injectors."""
        totals: dict[str, int] = {}
        for injector in self.injectors:
            for action, count in injector.injected.items():
                totals[action] = totals.get(action, 0) + count
        return totals

    def currently_down(self) -> set[str]:
        """Nodes any injector holds offline right now."""
        down: set[str] = set()
        for injector in self.injectors:
            down |= injector.currently_down()
        return down

    def uninstall(self) -> None:
        """Detach every injector (flushes holds, restarts crashes)."""
        for injector in self.injectors:
            injector.uninstall()

    def __enter__(self) -> "InstalledPlan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()


def install_plan(transport: Any, plan: FaultPlan) -> InstalledPlan:
    """Install ``plan`` on any transport and return the installation.

    A :class:`~repro.simnet.shard.ShardedTransport` installs one
    injector per shard (its ``install_fault_plan``); any single-loop
    :class:`Transport` gets one injector directly.  Either way the
    caller holds an :class:`InstalledPlan` with uniform uninstall and
    accounting.
    """
    installer = getattr(transport, "install_fault_plan", None)
    if installer is not None:
        return installer(plan)
    return InstalledPlan([FaultInjector(transport, plan).install()])
