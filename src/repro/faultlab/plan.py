"""Declarative fault schedules: what to break, where, and when.

A :class:`FaultPlan` is an immutable, fully explicit description of
every fault a simulation run will suffer — the FoundationDB-style
premise that a failure is only worth finding if it can be replayed
bit-for-bit from its description.  A plan is a tuple of *clauses*,
each one small enough to print, diff and delete:

* :class:`MessageDrop` / :class:`MessageDuplicate` /
  :class:`MessageDelay` / :class:`MessageReorder` — per-message link
  faults matched by message kind, endpoints and a time window, fired
  with a clause-local seeded probability;
* :class:`Partition` — a symmetric or asymmetric cut between two node
  groups with a *scheduled heal* (messages crossing the cut inside
  the window vanish, exactly like a WAN partition);
* :class:`CrashRestart` — take one node offline at a scheduled time
  and bring it back later (composable with
  :class:`~repro.simnet.churn.ChurnProcess`, which never re-fails a
  node somebody else took down).

Determinism contract
--------------------
Every probabilistic clause draws from its **own** RNG, seeded from
``(plan.seed, clause identity)`` — see :func:`clause_seed`.  Removing
one clause therefore cannot reshuffle the decisions of the others,
which is what makes greedy schedule shrinking
(:mod:`repro.faultlab.explorer`) converge to minimal reproducers.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, replace

from repro.simnet.network import Message

#: sentinel horizon: "never heals inside any finite run"
FOREVER = math.inf


@dataclass(frozen=True)
class LinkFault:
    """Base matcher for per-message faults.

    ``kinds`` / ``src`` / ``dst`` restrict the matched messages
    (``None`` matches everything); ``start``/``until`` bound the
    active window in virtual seconds *relative to injector install*
    (i.e. to the start of the faulted run, however much virtual time
    deployment building consumed); ``probability`` is the
    per-matching-message firing chance drawn from the clause's own
    RNG.
    """

    kinds: tuple[str, ...] | None = None
    src: tuple[str, ...] | None = None
    dst: tuple[str, ...] | None = None
    start: float = 0.0
    until: float = FOREVER
    probability: float = 1.0

    def matches(self, message: Message, now: float) -> bool:
        """Whether ``message`` sent at ``now`` falls under this clause."""
        if not (self.start <= now < self.until):
            return False
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if self.src is not None and message.src not in self.src:
            return False
        if self.dst is not None and message.dst not in self.dst:
            return False
        return True

    def _window(self) -> str:
        until = "forever" if self.until == FOREVER else f"{self.until:g}s"
        return f"[{self.start:g}s..{until})"

    def _scope(self) -> str:
        parts = []
        if self.kinds is not None:
            parts.append("kind " + "|".join(self.kinds))
        if self.src is not None:
            parts.append("src " + "|".join(self.src))
        if self.dst is not None:
            parts.append("dst " + "|".join(self.dst))
        return ", ".join(parts) if parts else "all messages"


@dataclass(frozen=True)
class MessageDrop(LinkFault):
    """Silently drop matching messages (lossy link)."""

    action = "drop"

    def describe(self) -> str:
        return (f"drop p={self.probability:g} {self._scope()} "
                f"{self._window()}")


@dataclass(frozen=True)
class MessageDuplicate(LinkFault):
    """Deliver ``copies`` extra copies of matching messages.

    Copies arrive ``spread`` seconds (uniform, clause RNG) after the
    original — the at-least-once delivery a retrying transport shows.
    """

    copies: int = 1
    spread: float = 5.0

    action = "duplicate"

    def describe(self) -> str:
        return (f"duplicate x{self.copies} p={self.probability:g} "
                f"{self._scope()} {self._window()}")


@dataclass(frozen=True)
class MessageDelay(LinkFault):
    """Add uniform extra latency in ``[jitter_min, jitter_max)``."""

    jitter_min: float = 1.0
    jitter_max: float = 10.0

    action = "delay"

    def describe(self) -> str:
        return (f"delay +[{self.jitter_min:g}s..{self.jitter_max:g}s) "
                f"p={self.probability:g} {self._scope()} {self._window()}")


@dataclass(frozen=True)
class MessageReorder(LinkFault):
    """Hold a message back so later traffic on its link overtakes it.

    The held message is released right after the *next* message sent
    on the same ``(src, dst)`` link is delivered — a genuine
    pairwise reordering, not just jitter — or after ``hold_max``
    seconds if the link stays quiet.
    """

    hold_max: float = 20.0

    action = "reorder"

    def describe(self) -> str:
        return (f"reorder (hold<= {self.hold_max:g}s) "
                f"p={self.probability:g} {self._scope()} {self._window()}")


@dataclass(frozen=True)
class Partition:
    """A network cut between two node groups with a scheduled heal.

    Messages from ``side_a`` to ``side_b`` sent in ``[start,
    heal_at)`` are dropped (and the reverse direction too when
    ``symmetric``).  Nodes in neither group are unaffected.  Both
    endpoints must be partitioned for a message to die — traffic
    inside one side always flows.
    """

    side_a: tuple[str, ...]
    side_b: tuple[str, ...]
    start: float = 0.0
    heal_at: float = FOREVER
    symmetric: bool = True

    action = "partition"

    def blocks(self, message: Message, now: float) -> bool:
        """Whether this cut kills ``message`` at time ``now``."""
        if not (self.start <= now < self.heal_at):
            return False
        if message.src in self.side_a and message.dst in self.side_b:
            return True
        return (self.symmetric
                and message.src in self.side_b
                and message.dst in self.side_a)

    def describe(self) -> str:
        arrow = "<-x->" if self.symmetric else "-x->"
        heal = "never heals" if self.heal_at == FOREVER \
            else f"heals {self.heal_at:g}s"
        return (f"partition {len(self.side_a)} {arrow} "
                f"{len(self.side_b)} peers [{self.start:g}s.., {heal}]")


@dataclass(frozen=True)
class CrashRestart:
    """Crash one node at ``at`` and restart it at ``restart_at``.

    ``restart_at=FOREVER`` leaves the node down for the whole run;
    the injector still restores it on uninstall, so no plan can leak a
    permanently dead node past its own simulation.
    """

    node: str
    at: float
    restart_at: float = FOREVER

    action = "crash"

    def describe(self) -> str:
        back = "for good" if self.restart_at == FOREVER \
            else f"back {self.restart_at:g}s"
        return f"crash {self.node} at {self.at:g}s ({back})"


#: all clause types a plan may carry (order = display order)
CLAUSE_TYPES = (MessageDrop, MessageDuplicate, MessageDelay,
                MessageReorder, Partition, CrashRestart)


def clause_seed(plan_seed: int, clause, ordinal: int = 0) -> int:
    """Deterministic per-clause RNG seed from the clause's identity.

    Seeding from ``repr`` (stable for frozen dataclasses of strings,
    ints and floats) instead of the clause's *position* means deleting
    a sibling clause never changes this clause's decisions — the
    property schedule shrinking relies on.  ``ordinal`` distinguishes
    repeated *identical* clauses in one plan (the n-th copy gets an
    independent stream, so stacking the same fault twice compounds
    instead of firing in lockstep); it is 0 for the first occurrence,
    keeping unique-clause plans byte-stable.
    """
    identity = repr(clause) if ordinal == 0 else f"{ordinal}:{clause!r}"
    return plan_seed ^ zlib.crc32(identity.encode("utf-8"))


@dataclass(frozen=True)
class FaultPlan:
    """One immutable fault schedule.

    ``seed`` feeds every probabilistic clause (via
    :func:`clause_seed`); ``faults`` is the clause tuple.  The empty
    plan is a strict no-op: installing it changes nothing observable.
    """

    seed: int = 0
    faults: tuple = ()

    def __len__(self) -> int:
        return len(self.faults)

    def without(self, index: int) -> "FaultPlan":
        """A copy with the ``index``-th clause removed (for shrinking)."""
        kept = self.faults[:index] + self.faults[index + 1:]
        return replace(self, faults=kept)

    def describe(self) -> list[str]:
        """Human-readable schedule, one line per clause."""
        if not self.faults:
            return ["(no faults)"]
        return [f"[{i}] {clause.describe()}"
                for i, clause in enumerate(self.faults)]


__all__ = [
    "CLAUSE_TYPES",
    "CrashRestart",
    "FOREVER",
    "FaultPlan",
    "LinkFault",
    "MessageDelay",
    "MessageDrop",
    "MessageDuplicate",
    "MessageReorder",
    "Partition",
    "clause_seed",
]
