"""Deterministic fault lab: injectable faults, invariants, exploration.

The resilience results of the churn scenarios (PR 2) and the adaptive
optimizer (PR 4) were only ever exercised under latency and clean
offline drops.  This package opens the full hostile-network axis in
the FoundationDB simulation-testing style, on top of the deterministic
event loop the repo already has:

:mod:`repro.faultlab.plan`
    Immutable, printable fault schedules: seeded message drops,
    duplicates, delay jitter and reordering, symmetric/asymmetric
    partitions with scheduled heals, and crash-restarts.

:mod:`repro.faultlab.injector`
    Executes a plan against a :class:`~repro.simnet.network.
    SimNetwork` through two hook points in the transport; with no
    injector installed every simulation stays bit-identical to before
    the fault lab existed.

:mod:`repro.faultlab.invariants`
    Ground-truth checkers: routing-table/trie coverage, replica store
    agreement, synopsis-registry CRDT convergence, engine plan-cache
    coherence, and recall lower bounds (both under faults and after
    heal + anti-entropy).

:mod:`repro.faultlab.explorer`
    Randomized scenario exploration where every trial — deployment,
    corpus, fault schedule, verdict — derives from one integer seed,
    plus greedy shrinking of failing schedules to minimal
    reproducers.  Exposed on the command line as ``python -m repro
    chaos`` (``run`` / ``explore`` / ``replay --shrink``).
"""

from repro.faultlab.explorer import (
    ScenarioExplorer,
    ShrinkResult,
    Trial,
    default_spec,
    generate_plan,
    replay,
)
from repro.faultlab.injector import FaultInjector
from repro.faultlab.invariants import (
    INVARIANTS,
    InvariantReport,
    LabContext,
    Violation,
    run_invariants,
)
from repro.faultlab.plan import (
    CrashRestart,
    FOREVER,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    MessageReorder,
    Partition,
)

__all__ = [
    "CrashRestart",
    "FOREVER",
    "FaultInjector",
    "FaultPlan",
    "INVARIANTS",
    "InvariantReport",
    "LabContext",
    "MessageDelay",
    "MessageDrop",
    "MessageDuplicate",
    "MessageReorder",
    "Partition",
    "ScenarioExplorer",
    "ShrinkResult",
    "Trial",
    "Violation",
    "default_spec",
    "generate_plan",
    "replay",
    "run_invariants",
]
