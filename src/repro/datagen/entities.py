"""Protein entities: the shared real-world objects behind the records.

An entity carries one canonical value per concept; every schema that
covers the entity renders those same values under its own attribute
names.  Shared accessions across schemas are what the candidate-pair
selector keys on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.concepts import (
    KEYWORD_POOL,
    MOLECULE_TYPES,
    ORGANISM_POOL,
    PROTEIN_NAME_POOL,
    TAXONOMY_BY_GENUS,
)

_AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"


@dataclass(frozen=True)
class ProteinEntity:
    """One protein with canonical values for every concept."""

    accession: str
    values: tuple[tuple[str, str], ...]  # (concept, value), sorted

    def value(self, concept: str) -> str:
        """Canonical value of one concept (KeyError if absent)."""
        for c, v in self.values:
            if c == concept:
                return v
        raise KeyError(concept)

    def as_dict(self) -> dict[str, str]:
        """Concept -> value mapping."""
        return dict(self.values)


def _weighted_organism(rng: random.Random) -> str:
    roll = rng.random() * sum(w for _o, w in ORGANISM_POOL)
    acc = 0.0
    for organism, weight in ORGANISM_POOL:
        acc += weight
        if roll <= acc:
            return organism
    return ORGANISM_POOL[-1][0]


def _make_sequence(rng: random.Random, length: int) -> str:
    return "".join(rng.choice(_AMINO_ACIDS) for _ in range(length))


def generate_entity(index: int, rng: random.Random) -> ProteinEntity:
    """One entity with plausible, internally consistent values."""
    accession = f"P{10000 + index:05d}"
    organism = _weighted_organism(rng)
    genus = organism.split()[0]
    length = rng.randint(80, 1200)
    protein = rng.choice(PROTEIN_NAME_POOL)
    gene = (protein.split()[0][:3] + chr(ord("A") + rng.randrange(4))).lower()
    keywords = "; ".join(sorted(rng.sample(
        KEYWORD_POOL, k=rng.randint(1, 3)
    )))
    values = {
        "accession": accession,
        "organism": organism,
        # Sequences are long; store a short prefix as the stored value
        # (enough for identity, cheap on memory at 17k-triple scale).
        "sequence": _make_sequence(rng, 24),
        "seq_length": str(length),
        "description": f"{protein} ({organism})",
        "gene_name": gene,
        "protein_name": protein,
        "taxonomy": TAXONOMY_BY_GENUS.get(genus, "Unclassified"),
        "keywords": keywords,
        "created_date": (
            f"{rng.randint(1988, 2006)}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}"
        ),
        "molecule_type": rng.choice(MOLECULE_TYPES),
        "database_ref": f"PDB:{rng.randint(1000, 9999)}",
        "function": f"Catalyzes {protein.lower()} activity",
        "ec_number": f"{rng.randint(1, 6)}.{rng.randint(1, 20)}."
                     f"{rng.randint(1, 30)}.{rng.randint(1, 99)}",
        "host": _weighted_organism(rng),
        "strain": f"{genus[:2].upper()}-{rng.randint(1, 500)}",
    }
    return ProteinEntity(
        accession=accession,
        values=tuple(sorted(values.items())),
    )


def generate_entities(count: int,
                      rng: random.Random | None = None) -> list[ProteinEntity]:
    """``count`` entities with distinct accessions."""
    rng = rng if rng is not None else random.Random(0)
    return [generate_entity(i, rng) for i in range(count)]
