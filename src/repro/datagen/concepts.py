"""The concept vocabulary behind the synthetic bioinformatic schemas.

Every schema attribute *realizes* one canonical concept; different
schemas pick different synonyms (mimicking EMBL's two-letter line
codes, SwissProt's field names, and assorted in-house conventions).
The synonym pools double as the matcher's adversary: some synonyms of
different concepts are lexically closer than synonyms of the same
concept (``Length`` vs ``LocusName``), which is what makes E9
non-trivial.
"""

from __future__ import annotations

#: concept -> synonym pool (attribute-name candidates)
CONCEPT_SYNONYMS: dict[str, list[str]] = {
    "accession": [
        "Accession", "AccessionNumber", "AC", "EntryAccession",
        "PrimaryAccession", "accession_id", "AccNo",
    ],
    "organism": [
        "Organism", "Species", "OS", "SourceOrganism", "SystematicName",
        "OrganismName", "organism_species",
    ],
    "sequence": [
        "Sequence", "SQ", "SeqData", "ResidueSequence", "sequence_string",
        "SeqString",
    ],
    "seq_length": [
        "SeqLength", "Length", "SQLen", "ResidueCount", "sequence_length",
        "LengthBP",
    ],
    "description": [
        "Description", "DE", "Definition", "EntryDescription", "Title",
        "entry_title",
    ],
    "gene_name": [
        "GeneName", "GN", "Gene", "LocusName", "gene_symbol", "GeneSymbol",
    ],
    "protein_name": [
        "ProteinName", "RecName", "Protein", "product_name", "ProductName",
    ],
    "taxonomy": [
        "Taxonomy", "OC", "Lineage", "TaxonomicLineage", "tax_lineage",
    ],
    "keywords": [
        "Keywords", "KW", "Tags", "keyword_list", "KeywordList",
    ],
    "created_date": [
        "CreatedDate", "DT", "EntryDate", "date_created", "FirstPublic",
    ],
    "molecule_type": [
        "MoleculeType", "MolType", "MT", "molecule_class", "Moltype",
    ],
    "database_ref": [
        "DatabaseRef", "DR", "CrossRef", "xref_list", "CrossReference",
    ],
    "function": [
        "Function", "FunctionComment", "functional_role", "CCFunction",
    ],
    "ec_number": [
        "ECNumber", "EC", "EnzymeCode", "enzyme_class", "ECLine",
    ],
    "host": [
        "Host", "HostOrganism", "NaturalHost", "host_species",
    ],
    "strain": [
        "Strain", "StrainName", "IsolateStrain", "strain_id",
    ],
}

#: concepts present in every generated schema — accession gives shared
#: references, organism powers the demonstration's flagship queries.
CORE_CONCEPTS: tuple[str, ...] = ("accession", "organism")

#: the remaining concepts, sampled per schema
OPTIONAL_CONCEPTS: tuple[str, ...] = tuple(
    c for c in CONCEPT_SYNONYMS if c not in CORE_CONCEPTS
)

#: organism names, weighted toward the paper's Aspergillus examples
ORGANISM_POOL: list[tuple[str, float]] = [
    ("Aspergillus niger", 0.08),
    ("Aspergillus awamori", 0.05),
    ("Aspergillus oryzae", 0.05),
    ("Aspergillus fumigatus", 0.05),
    ("Aspergillus nidulans", 0.04),
    ("Saccharomyces cerevisiae", 0.12),
    ("Escherichia coli", 0.12),
    ("Homo sapiens", 0.1),
    ("Mus musculus", 0.08),
    ("Drosophila melanogaster", 0.06),
    ("Arabidopsis thaliana", 0.06),
    ("Caenorhabditis elegans", 0.05),
    ("Danio rerio", 0.04),
    ("Rattus norvegicus", 0.04),
    ("Bacillus subtilis", 0.06),
]

#: lineage by genus (coarse, enough for taxonomy values)
TAXONOMY_BY_GENUS: dict[str, str] = {
    "Aspergillus": "Eukaryota; Fungi; Ascomycota; Eurotiomycetes; Aspergillus",
    "Saccharomyces": "Eukaryota; Fungi; Ascomycota; Saccharomycetes",
    "Escherichia": "Bacteria; Proteobacteria; Gammaproteobacteria",
    "Homo": "Eukaryota; Metazoa; Chordata; Mammalia; Primates",
    "Mus": "Eukaryota; Metazoa; Chordata; Mammalia; Rodentia",
    "Drosophila": "Eukaryota; Metazoa; Arthropoda; Insecta; Diptera",
    "Arabidopsis": "Eukaryota; Viridiplantae; Streptophyta; Brassicales",
    "Caenorhabditis": "Eukaryota; Metazoa; Nematoda; Rhabditida",
    "Danio": "Eukaryota; Metazoa; Chordata; Actinopterygii",
    "Rattus": "Eukaryota; Metazoa; Chordata; Mammalia; Rodentia",
    "Bacillus": "Bacteria; Firmicutes; Bacilli; Bacillales",
}

PROTEIN_NAME_POOL: list[str] = [
    "Glucoamylase", "Alpha-amylase", "Cellulase", "Catalase",
    "Superoxide dismutase", "Cytochrome c", "Hemoglobin subunit alpha",
    "Ubiquitin", "Actin", "Tubulin alpha chain", "Heat shock protein 70",
    "DNA polymerase III", "RNA polymerase II", "ATP synthase subunit beta",
    "Lysozyme", "Trypsin", "Pepsin A", "Amyloglucosidase",
    "Pectin lyase", "Xylanase",
]

KEYWORD_POOL: list[str] = [
    "Hydrolase", "Oxidoreductase", "Transferase", "Glycoprotein",
    "Signal", "Secreted", "Membrane", "Zymogen", "Metal-binding",
    "Direct protein sequencing", "3D-structure", "Polymorphism",
]

MOLECULE_TYPES: list[str] = ["protein", "mRNA", "genomic DNA", "cDNA"]
