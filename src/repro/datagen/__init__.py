"""Synthetic bioinformatic data (substitute for the EBI/SRS export).

The original demonstration exported protein/nucleotide data from the
European Bioinformatics Institute and used "50 distinct schemas, all
related to protein and nucleotide sequences".  That repository snapshot
is not redistributable, so this package generates an equivalent
corpus with the three properties the demonstration actually relies on:

1. **Lexically related schemas** — attribute names are drawn from
   per-concept synonym pools (``Organism`` / ``Species`` / ``OS`` /
   ``SystematicName``...), so the lexicographic matcher has realistic
   signal and realistic ambiguity.
2. **Shared references** — schemas describe overlapping sets of
   protein entities identified by accession numbers, so candidate
   schema pairs can be discovered through "shared references to the
   same protein sequence".
3. **Comparable value sets** — the same entity carries the same
   canonical value for a concept in every schema that covers it, so
   set-distance measures between predicate extensions are meaningful.

Ground truth (which attribute realizes which concept in which schema)
is retained in the generated :class:`~repro.datagen.generator.BioDataset`,
enabling precision/recall evaluation of the automatic matcher (E9).
"""

from repro.datagen.concepts import CONCEPT_SYNONYMS, CORE_CONCEPTS
from repro.datagen.entities import ProteinEntity, generate_entities
from repro.datagen.generator import BioDataset, BioDatasetGenerator
from repro.datagen.workload import QueryWorkloadGenerator

__all__ = [
    "CONCEPT_SYNONYMS",
    "CORE_CONCEPTS",
    "ProteinEntity",
    "generate_entities",
    "BioDataset",
    "BioDatasetGenerator",
    "QueryWorkloadGenerator",
]
