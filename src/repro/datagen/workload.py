"""Triple-pattern query workloads over a generated corpus.

Generates the kind of queries the demonstration issues: constraint
searches on a predicate with an exact or ``%substring%`` object value
(the flagship ``%Aspergillus%`` example), and subject lookups.  Every
query is guaranteed to have at least one matching triple *somewhere*
in the corpus — the interesting question (and what E4 measures) is
whether reformulation can reach it.
"""

from __future__ import annotations

import random

from repro.datagen.generator import BioDataset
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.terms import Literal, URI, Variable


class QueryWorkloadGenerator:
    """Draws random satisfiable triple-pattern queries from a corpus."""

    def __init__(self, dataset: BioDataset, seed: int = 0,
                 like_fraction: float = 0.3,
                 subject_fraction: float = 0.15) -> None:
        if not 0 <= like_fraction + subject_fraction <= 1:
            raise ValueError("query-type fractions must sum to <= 1")
        self.dataset = dataset
        self.rng = random.Random(seed)
        self.like_fraction = like_fraction
        self.subject_fraction = subject_fraction

    def _random_triple(self):
        schema_name = self.rng.choice(
            [s.name for s in self.dataset.schemas]
        )
        triples = self.dataset.triples_by_schema[schema_name]
        return self.rng.choice(triples)

    def next_query(self) -> ConjunctiveQuery:
        """One random satisfiable query."""
        triple = self._random_triple()
        x = Variable("x")
        roll = self.rng.random()
        if roll < self.subject_fraction:
            # Subject lookup: what is the value of this attribute for
            # this specific entry?
            pattern = TriplePattern(triple.subject, triple.predicate, x)
        elif roll < self.subject_fraction + self.like_fraction:
            # Substring constraint on the object (the %Aspergillus%
            # shape): carve a needle out of the stored value.
            value = triple.object.value
            if len(value) > 4:
                start = self.rng.randrange(0, max(1, len(value) - 4))
                needle = value[start:start + 4]
            else:
                needle = value
            pattern = TriplePattern(x, triple.predicate,
                                    Literal(f"%{needle}%"))
        else:
            # Exact object constraint.
            pattern = TriplePattern(x, triple.predicate, triple.object)
        return ConjunctiveQuery([pattern], [x])

    def queries(self, count: int) -> list[ConjunctiveQuery]:
        """A batch of ``count`` random queries."""
        return [self.next_query() for _ in range(count)]

    def concept_query(self, schema_name: str, concept: str,
                      needle: str) -> ConjunctiveQuery:
        """A ``%needle%`` query against the attribute realizing
        ``concept`` in ``schema_name`` (raises if the schema lacks it).

        This is the workload for recall experiments: the same semantic
        query posed in one schema's vocabulary, with relevant answers
        scattered across every schema realizing the concept.
        """
        attribute = self.dataset.concept_attribute(schema_name, concept)
        if attribute is None:
            raise ValueError(f"{schema_name} has no {concept!r} attribute")
        schema = self.dataset.schema(schema_name)
        x = Variable("x")
        pattern = TriplePattern(x, schema.predicate(attribute),
                                Literal(f"%{needle}%"))
        return ConjunctiveQuery([pattern], [x])
