"""The dataset generator: schemas, records and triples with ground truth.

:class:`BioDatasetGenerator` produces a :class:`BioDataset` that plays
the role of the EBI export in the original demonstration.  Scale knobs
default to the demonstration's shape (50 schemas) with entity counts
tuned so the standard configuration lands near the paper's 17 000
triples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datagen.concepts import (
    CONCEPT_SYNONYMS,
    CORE_CONCEPTS,
    OPTIONAL_CONCEPTS,
)
from repro.datagen.entities import ProteinEntity, generate_entities
from repro.mapping.model import (
    MappingKind,
    PredicateCorrespondence,
    SchemaMapping,
)
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema


@dataclass
class BioDataset:
    """A generated corpus plus the ground truth behind it."""

    domain: str
    schemas: list[Schema]
    #: schema name -> {attribute name -> concept}
    attribute_concepts: dict[str, dict[str, str]]
    entities: list[ProteinEntity]
    #: schema name -> the entities it covers
    coverage: dict[str, list[ProteinEntity]]
    #: all data triples, grouped per schema
    triples_by_schema: dict[str, list[Triple]] = field(default_factory=dict)

    @property
    def triples(self) -> list[Triple]:
        """All triples of the corpus."""
        return [t for ts in self.triples_by_schema.values() for t in ts]

    def schema(self, name: str) -> Schema:
        """Look up a schema by name."""
        for schema in self.schemas:
            if schema.name == name:
                return schema
        raise KeyError(name)

    def concept_attribute(self, schema_name: str, concept: str) -> str | None:
        """The attribute realizing ``concept`` in a schema, if any."""
        for attribute, c in self.attribute_concepts[schema_name].items():
            if c == concept:
                return attribute
        return None

    def ground_truth_pairs(self, schema_a: str,
                           schema_b: str) -> list[tuple[str, str]]:
        """Attribute pairs of ``schema_a`` x ``schema_b`` realizing the
        same concept — the reference answer for matcher evaluation."""
        concepts_b = {
            concept: attribute
            for attribute, concept in self.attribute_concepts[schema_b].items()
        }
        pairs: list[tuple[str, str]] = []
        for attribute, concept in sorted(
            self.attribute_concepts[schema_a].items()
        ):
            other = concepts_b.get(concept)
            if other is not None:
                pairs.append((attribute, other))
        return pairs

    def ground_truth_mapping(self, schema_a: str, schema_b: str,
                             mapping_id: str | None = None,
                             provenance: str = "user") -> SchemaMapping:
        """A correct mapping between two schemas, from ground truth."""
        pairs = self.ground_truth_pairs(schema_a, schema_b)
        if not pairs:
            raise ValueError(f"{schema_a} and {schema_b} share no concept")
        sa = self.schema(schema_a)
        sb = self.schema(schema_b)
        return SchemaMapping(
            mapping_id if mapping_id is not None
            else f"gt:{schema_a}->{schema_b}",
            schema_a,
            schema_b,
            [PredicateCorrespondence(sa.predicate(a), sb.predicate(b))
             for a, b in pairs],
            provenance=provenance,
        )

    def corrupted_mapping(self, schema_a: str, schema_b: str,
                          rng: random.Random,
                          mapping_id: str | None = None) -> SchemaMapping:
        """A deliberately *wrong* mapping: concepts are shuffled.

        Used by E5 to test that the Bayesian cycle analysis detects and
        deprecates erroneous automatic mappings.  Every correspondence
        relates attributes of *different* concepts.
        """
        pairs = self.ground_truth_pairs(schema_a, schema_b)
        if len(pairs) < 2:
            raise ValueError("need >= 2 shared concepts to corrupt")
        lefts = [a for a, _b in pairs]
        rights = [b for _a, b in pairs]
        # Derange the right-hand side so no pair is correct.
        deranged = rights[1:] + rights[:1]
        rng.shuffle(lefts)
        sa = self.schema(schema_a)
        sb = self.schema(schema_b)
        return SchemaMapping(
            mapping_id if mapping_id is not None
            else f"bad:{schema_a}->{schema_b}",
            schema_a,
            schema_b,
            [PredicateCorrespondence(sa.predicate(a), sb.predicate(b),
                                     kind=MappingKind.EQUIVALENCE)
             for a, b in zip(lefts, deranged)],
            provenance="auto",
            confidence=0.7,
        )


class BioDatasetGenerator:
    """Generates :class:`BioDataset` corpora.

    Parameters
    ----------
    num_schemas:
        Number of distinct schemas (the demo uses 50).
    num_entities:
        Size of the shared protein universe.
    entities_per_schema:
        How many entities each schema covers (sampled without
        replacement from the universe, so coverage overlaps).
    concepts_per_schema:
        ``(min, max)`` number of *optional* concepts per schema, on top
        of the core concepts (accession, organism).
    seed:
        Master seed; everything derives from it.
    """

    def __init__(
        self,
        num_schemas: int = 50,
        num_entities: int = 300,
        entities_per_schema: int = 40,
        concepts_per_schema: tuple[int, int] = (4, 8),
        domain: str = "protein-sequences",
        seed: int = 0,
    ) -> None:
        if num_schemas < 1:
            raise ValueError("num_schemas must be positive")
        if entities_per_schema > num_entities:
            raise ValueError("entities_per_schema exceeds universe size")
        self.num_schemas = num_schemas
        self.num_entities = num_entities
        self.entities_per_schema = entities_per_schema
        self.concepts_per_schema = concepts_per_schema
        self.domain = domain
        self.seed = seed

    # -- naming ---------------------------------------------------------

    _SOURCE_NAMES = [
        "EMBL", "EMP", "SwissProt", "TrEMBL", "PIR", "GenBankP", "DDBJp",
        "PRF", "PDBSeq", "UniRef", "IPI", "RefSeqP", "Ensembl", "VEGA",
        "TAIR", "SGD", "FlyBase", "WormPep", "ZFIN", "MGI",
    ]

    def _schema_name(self, index: int) -> str:
        base = self._SOURCE_NAMES[index % len(self._SOURCE_NAMES)]
        round_no = index // len(self._SOURCE_NAMES)
        return base if round_no == 0 else f"{base}{round_no + 1}"

    # -- generation --------------------------------------------------------

    def generate(self) -> BioDataset:
        """Build the full corpus."""
        rng = random.Random(self.seed)
        entities = generate_entities(self.num_entities,
                                     random.Random(rng.random()))
        schemas: list[Schema] = []
        attribute_concepts: dict[str, dict[str, str]] = {}
        for index in range(self.num_schemas):
            name = self._schema_name(index)
            schema, concept_map = self._generate_schema(name, rng)
            schemas.append(schema)
            attribute_concepts[name] = concept_map
        coverage: dict[str, list[ProteinEntity]] = {}
        triples_by_schema: dict[str, list[Triple]] = {}
        for schema in schemas:
            covered = rng.sample(entities, self.entities_per_schema)
            coverage[schema.name] = covered
            triples_by_schema[schema.name] = self._record_triples(
                schema, attribute_concepts[schema.name], covered
            )
        return BioDataset(
            domain=self.domain,
            schemas=schemas,
            attribute_concepts=attribute_concepts,
            entities=entities,
            coverage=coverage,
            triples_by_schema=triples_by_schema,
        )

    def _generate_schema(self, name: str,
                         rng: random.Random) -> tuple[Schema, dict[str, str]]:
        lo, hi = self.concepts_per_schema
        optional = rng.sample(OPTIONAL_CONCEPTS, rng.randint(lo, hi))
        concepts = list(CORE_CONCEPTS) + optional
        concept_map: dict[str, str] = {}
        attributes: list[str] = []
        for concept in concepts:
            pool = CONCEPT_SYNONYMS[concept]
            attribute = rng.choice(pool)
            # Avoid duplicate attribute names within one schema (two
            # concepts may share a synonym spelling in principle).
            while attribute in concept_map:
                attribute = rng.choice(pool)
            concept_map[attribute] = concept
            attributes.append(attribute)
        return Schema(name, attributes, domain=self.domain), concept_map

    def _record_triples(self, schema: Schema, concept_map: dict[str, str],
                        covered: list[ProteinEntity]) -> list[Triple]:
        triples: list[Triple] = []
        for entity in covered:
            subject = URI(f"{schema.name}:{entity.accession}")
            for attribute in schema.attributes:
                concept = concept_map[attribute]
                triples.append(Triple(
                    subject,
                    schema.predicate(attribute),
                    Literal(entity.value(concept)),
                ))
        return triples
