"""The transport boundary between peers (actors) and the network.

Peers are addressable actors: they send ``(dst, kind, payload)``
envelopes through a :class:`Transport` and receive deliveries via the
handler registry on :class:`~repro.simnet.network.Node` — they never
touch other peer objects or the event loop of another peer directly.
This boundary is what lets the same peer code run over two transports
with identical protocol semantics:

:class:`~repro.simnet.network.SimNetwork` (alias ``InProcessTransport``)
    The single event-loop transport — today's behavior, bit-identical
    to the pre-refactor simulator (pinned by
    ``tests/test_transport_golden.py``).

:class:`~repro.simnet.shard.ShardedTransport`
    Partitions the P-Grid trie key space across N shards, each with
    its own logical clock, synchronized through a conservative
    lookahead window (see ``simnet/shard.py``).

Fault injection is a transport-layer concern: the two hook points that
:class:`~repro.faultlab.injector.FaultInjector` uses — a send-time drop
verdict (``on_send``) and ownership of delivery scheduling
(``dispatch``) — are defined here, so the same fault plans apply to any
transport.  One :class:`~repro.faultlab.plan.FaultPlan` installs as a
single injector on the single-loop transport or as per-shard injectors
on the sharded one (:meth:`ShardedTransport.install_fault_plan`), and
rng-free clauses (partitions) account identically on both.

The mediation layer rides the same boundary: per-operation attribution
scopes (``operation`` / ``op:<ref>`` tags) stick to messages and follow
causal chains across shards, so a GridVine ``SearchFor`` or an engine
batch submitted through either transport reports the *exact* same
per-query message count — the invariant the sharded-mediation tests pin
bit-for-bit (``tests/test_sharded_mediation.py``).  Tracing uses the
same discipline: span recorders install per transport (per shard on the
sharded engine) and export merged, deterministically ordered records.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.simnet.events import SimulationError
from repro.simnet.metrics import NetworkMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.events import EventLoop
    from repro.simnet.network import Message, Node


class Transport:
    """Base class for message transports connecting :class:`Node` actors.

    Concrete transports implement :meth:`send` (latency sampling and
    delivery scheduling) and own an event :attr:`loop`; the base class
    provides the pieces every transport shares:

    - the node registry (:meth:`attach` / :meth:`detach` / :meth:`node`
      / :meth:`is_online` / :meth:`set_online`),
    - per-operation attribution scopes (:meth:`operation`), which ride
      on the messages themselves so attribution follows causal chains,
    - :attr:`metrics` accounting,
    - the fault-injection hook points
      (:meth:`install_fault_injector` / :meth:`uninstall_fault_injector`).
    """

    #: active fault injector, if any (see
    #: :class:`repro.faultlab.injector.FaultInjector`).  ``None`` keeps
    #: :meth:`send` on the exact historical code path — with no
    #: injector installed every simulation stays bit-identical.
    fault_injector: Any | None

    #: active span recorder, if any (see :class:`repro.obs.tracer.
    #: Tracer`).  Same contract as the fault injector: ``None`` keeps
    #: every send/deliver on the exact historical code path, so a
    #: tracing-disabled run is bit-identical to the pre-tracing
    #: simulator.
    tracer: Any | None

    def __init__(self) -> None:
        self.metrics = NetworkMetrics()
        self._nodes: dict[str, "Node"] = {}
        #: stack of active attribution scopes (see :meth:`operation`)
        self._op_stack: list[str] = []
        self.fault_injector = None
        self.tracer = None

    # -- clock ---------------------------------------------------------

    #: The event loop carrying this transport's deliveries.  A *plain
    #: attribute* set by concrete transports in ``__init__`` — it is
    #: read on every message hop and every timer, so a property frame
    #: here would be pure per-message overhead.
    loop: "EventLoop"

    @property
    def now(self) -> float:
        """Current virtual time of this transport's clock."""
        return self.loop.now

    # -- per-operation attribution -------------------------------------

    def current_operation(self) -> str | None:
        """The attribution tag of the innermost active scope, if any."""
        return self._op_stack[-1] if self._op_stack else None

    @contextmanager
    def operation(self, op_tag: str) -> Iterator[None]:
        """Attribute messages sent inside this scope to ``op_tag``.

        The tag sticks to the messages themselves, so the attribution
        follows the *causal chain*: handling a tagged delivery re-opens
        the scope, and any forwards, replies or replica pushes sent
        from the handler inherit the tag.  Concurrent background
        traffic (maintenance ticks, churn) runs outside any scope and
        stays unattributed — this is what makes per-query message
        counts exact under churn (see
        :meth:`~repro.simnet.metrics.NetworkMetrics.begin_operation`).
        """
        self._op_stack.append(op_tag)
        try:
            yield
        finally:
            self._op_stack.pop()

    # -- membership ----------------------------------------------------

    def attach(self, node: "Node") -> None:
        """Register a node under its ``node_id``."""
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id!r}")
        node.network = self
        self._nodes[node.node_id] = node

    def detach(self, node_id: str) -> None:
        """Remove a node permanently (e.g. simulated departure)."""
        node = self._nodes.pop(node_id, None)
        if node is not None:
            node.network = None

    def node(self, node_id: str) -> "Node":
        """Look up an attached node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"unknown node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node_ids(self) -> list[str]:
        """Ids of all attached nodes (online or not)."""
        return list(self._nodes)

    def is_online(self, node_id: str) -> bool:
        """Whether the node exists and is currently online.

        Transports may answer from *local knowledge*: a sharded
        transport answers exactly for peers it owns and from a
        barrier-refreshed liveness map for remote peers (stale by at
        most one synchronization window).
        """
        node = self._nodes.get(node_id)
        return node is not None and node.online

    def set_online(self, node_id: str, online: bool) -> None:
        """Toggle a node's availability (simulated crash / recovery)."""
        self.node(node_id).online = online

    # -- fault-injection hook points -----------------------------------

    def install_fault_injector(self, injector: Any) -> None:
        """Route subsequent sends through ``injector``.

        The injector contract has two hooks: ``on_send(message)``
        returns a drop-reason string to drop the message before latency
        sampling (or ``None`` to let it pass), and
        ``dispatch(message, delay, deliver)`` takes ownership of
        delivery scheduling (jitter, duplication, reordering).
        """
        if self.fault_injector is not None and self.fault_injector is not injector:
            raise SimulationError("a fault injector is already installed")
        self.fault_injector = injector

    def uninstall_fault_injector(self, injector: Any) -> None:
        """Detach ``injector`` (idempotent; unknown injectors ignored)."""
        if self.fault_injector is injector:
            self.fault_injector = None

    # -- tracing hook points -------------------------------------------

    def install_tracer(self, tracer: Any) -> Any:
        """Route subsequent sends/deliveries through ``tracer``.

        The tracer contract mirrors the injector's: the transport
        stamps outgoing envelopes with the active trace context,
        records a hop span per message that passes the drop checks
        (``message_sent``), records drop events (``message_dropped``)
        and re-activates a delivered envelope's context around its
        handler — exactly the causal discipline of ``op_tag`` scopes.
        Returns ``tracer`` for chaining.
        """
        if self.tracer is not None and self.tracer is not tracer:
            raise SimulationError("a tracer is already installed")
        self.tracer = tracer
        return tracer

    def uninstall_tracer(self, tracer: Any) -> None:
        """Detach ``tracer`` (idempotent; unknown tracers ignored)."""
        if self.tracer is tracer:
            self.tracer = None

    # -- sending -------------------------------------------------------

    def send(self, message: "Message") -> None:
        """Sample a latency and schedule delivery of ``message``."""
        raise NotImplementedError


def __getattr__(name: str) -> Any:
    # ``InProcessTransport`` is defined in network.py (it *is*
    # SimNetwork); re-export it here lazily to avoid a circular import.
    if name == "InProcessTransport":
        from repro.simnet.network import InProcessTransport
        return InProcessTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
