"""Event loop and futures for the discrete-event simulation.

A minimal, deterministic scheduler: events are ``(time, seq, handle)``
entries in a binary heap, where the slot-only :class:`EventHandle`
carries the callback and its arguments.  The ``seq`` tiebreaker makes
same-time events fire in scheduling order, which keeps whole
simulations reproducible bit-for-bit under a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised for scheduling misuse or when a simulation cannot progress."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is *lazy*: the heap entry stays queued and is skipped
    when popped.  The owning loop keeps a live-event counter so
    callers (e.g. the sharded transport's window stepper) can tell
    "queue still holds work" from "queue holds only cancelled
    tombstones" without draining it.

    The handle also *is* the event: callback and arguments live in
    slots here (no per-event dict, no separate heap payload), so a
    heap entry is just ``(time, seq, handle)``.
    """

    __slots__ = ("time", "seq", "cancelled", "_loop", "_fired",
                 "_callback", "_args")

    def __init__(self, time: float, seq: int,
                 loop: "EventLoop | None" = None,
                 callback: "Callable | None" = None,
                 args: tuple = ()) -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._loop = loop
        self._fired = False
        self._callback = callback
        self._args = args

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            if self._loop is not None and not self._fired:
                self._loop._live -= 1


class CancelToken:
    """Cooperative cancellation shared by one streaming computation.

    The token generalizes :class:`EventHandle`'s ``cancel()`` /
    ``cancelled`` protocol to whole *operations*: anything started on
    behalf of a cancellable computation (pattern fetches, retry
    timers, reformulation fan-out) keeps a reference to the token,
    checks :attr:`cancelled` before issuing new work, and may register
    an :meth:`on_cancel` callback to tear down in-flight state (for
    scheduled events that usually means calling
    :meth:`EventHandle.cancel` via :meth:`link`).

    Cancellation is cooperative and idempotent: messages already on
    the wire still arrive, but no *new* work is started once the token
    fires — which is exactly what limit pushdown needs to stop a
    distributed query the moment it has enough answers.

    >>> token = CancelToken()
    >>> fired = []
    >>> token.on_cancel(lambda: fired.append("a"))
    >>> token.cancel(); token.cancel()  # idempotent
    >>> (token.cancelled, fired)
    (True, ['a'])
    """

    __slots__ = ("cancelled", "_callbacks")

    def __init__(self) -> None:
        self.cancelled = False
        self._callbacks: list[Callable[[], None]] = []

    def cancel(self) -> None:
        """Fire the token (idempotent); runs callbacks synchronously."""
        if self.cancelled:
            return
        self.cancelled = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()

    def on_cancel(self, callback: Callable[[], None]) -> None:
        """Run ``callback()`` when cancelled (immediately if already)."""
        if self.cancelled:
            callback()
        else:
            self._callbacks.append(callback)

    def link(self, handle: EventHandle) -> None:
        """Cancel a scheduled event when the token fires."""
        self.on_cancel(handle.cancel)


class Future:
    """A one-shot result container resolved by a later event.

    Unlike asyncio futures there is no event-loop affinity or thread
    safety — the simulation is single-threaded by construction.
    """

    __slots__ = ("_done", "_result", "_exception", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[[Future], None]] = []

    @property
    def done(self) -> bool:
        """Whether a result or exception has been set."""
        return self._done

    def set_result(self, result: Any) -> None:
        """Resolve the future; fires callbacks synchronously."""
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._result = result
        self._fire_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        """Resolve the future with a failure."""
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        self._fire_callbacks()

    def result(self) -> Any:
        """The resolved value (raises the stored exception on failure)."""
        if not self._done:
            raise SimulationError("future not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Call ``callback(self)`` on resolution (immediately if done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


def gather(futures: list[Future]) -> Future:
    """A future resolving to the list of results of ``futures``.

    Resolves once every input is done; results keep input order.  Used
    e.g. by triple insertion, which fans one mediation-layer update out
    into three overlay updates.  An empty input resolves immediately.
    """
    combined: Future = Future()
    remaining = len(futures)
    if remaining == 0:
        combined.set_result([])
        return combined
    gatherer = _Gather(combined, remaining)
    for i, fut in enumerate(futures):
        fut.add_done_callback(gatherer._callback(i))
    return gatherer.combined


class _Gather:
    """Shared state of one :func:`gather` call (slot class: one
    instance per gather, and triple insertion gathers constantly)."""

    __slots__ = ("combined", "left", "results")

    def __init__(self, combined: Future, remaining: int) -> None:
        self.combined = combined
        self.left = remaining
        self.results: list = [None] * remaining

    def _callback(self, index: int):
        def _on_done(fut: Future) -> None:
            self.results[index] = fut.result()
            self.left -= 1
            if self.left == 0:
                self.combined.set_result(self.results)
        return _on_done


class EventLoop:
    """Deterministic discrete-event scheduler.

    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(2.0, fired.append, "b")
    >>> _ = loop.schedule(1.0, fired.append, "a")
    >>> loop.run_until_idle()
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = itertools.count()
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._events_processed = 0
        self._live = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (for diagnostics)."""
        return self._events_processed

    @property
    def live_events(self) -> int:
        """Queued events that are not cancelled (pending real work)."""
        return self._live

    def next_event_time(self) -> float | None:
        """Virtual time of the earliest queued entry (``None`` if empty).

        May point at a cancelled tombstone; use :attr:`live_events` to
        decide whether stepping further can do real work at all.
        """
        return self._queue[0][0] if self._queue else None

    def next_live_event_time(self) -> float | None:
        """Virtual time of the earliest *non-cancelled* queued event.

        Cancelled tombstones at the head of the heap are discarded on
        the way (they could never fire anything), so repeated calls
        are amortized O(1).  This is what lets the sharded transport's
        window stepper jump over timeout tails that resolved early.
        """
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        handle = EventHandle(time, next(self._seq), self, callback, args)
        heapq.heappush(self._queue, (time, handle.seq, handle))
        self._live += 1
        return handle

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self._now), callback, *args)

    def schedule_batch(
        self, items: "list[tuple[float, Callable, tuple]]",
    ) -> list[EventHandle]:
        """Schedule many ``(delay, callback, args)`` entries at once.

        Sequence numbers follow list order, so the firing order is
        identical to an equivalent sequence of :meth:`schedule` calls;
        when the queue is empty the entries are bulk-heapified (O(n)
        instead of n pushes) — the maintenance sweep's start-up storm
        is the intended caller.
        """
        now = self._now
        seq = self._seq
        handles: list[EventHandle] = []
        entries: list[tuple[float, int, EventHandle]] = []
        for delay, callback, args in items:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past (delay={delay})")
            time = now + delay
            handle = EventHandle(time, next(seq), self, callback, args)
            handles.append(handle)
            entries.append((time, handle.seq, handle))
        queue = self._queue
        if queue:
            for entry in entries:
                heapq.heappush(queue, entry)
        else:
            queue.extend(entries)
            heapq.heapify(queue)
        self._live += len(entries)
        return handles

    def _pop_and_fire(self) -> None:
        time, _seq, handle = heapq.heappop(self._queue)
        if handle.cancelled:
            return
        handle._fired = True
        self._live -= 1
        self._now = time
        self._events_processed += 1
        handle._callback(*handle._args)

    def run_until_idle(self, max_events: int | None = None) -> None:
        """Fire events until the queue drains (or ``max_events`` fire)."""
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        while queue:
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"run_until_idle exceeded {max_events} events"
                )
            fired += 1
            time, _seq, handle = pop(queue)
            if handle.cancelled:
                continue
            handle._fired = True
            self._live -= 1
            self._now = time
            self._events_processed += 1
            handle._callback(*handle._args)

    def run_until(self, time: float) -> None:
        """Fire all events scheduled strictly up to virtual time ``time``."""
        queue = self._queue
        pop = heapq.heappop
        while queue and queue[0][0] <= time:
            event_time, _seq, handle = pop(queue)
            if handle.cancelled:
                continue
            handle._fired = True
            self._live -= 1
            self._now = event_time
            self._events_processed += 1
            handle._callback(*handle._args)
        self._now = max(self._now, time)

    def run_until_complete(self, future: Future, max_events: int = 10_000_000) -> Any:
        """Drive the loop until ``future`` resolves; return its result.

        Raises :class:`SimulationError` if the queue drains without the
        future resolving — that indicates a lost message or a protocol
        bug, and failing loudly beats hanging.
        """
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        # Direct slot access: the ``done`` property would cost one
        # Python frame per fired event in the hottest loop.
        while not future._done:
            if not queue:
                raise SimulationError(
                    "event queue drained but future is unresolved"
                )
            if fired >= max_events:
                raise SimulationError(f"exceeded {max_events} events")
            fired += 1
            time, _seq, handle = pop(queue)
            if handle.cancelled:
                continue
            handle._fired = True
            self._live -= 1
            self._now = time
            self._events_processed += 1
            handle._callback(*handle._args)
        return future.result()
