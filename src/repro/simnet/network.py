"""Simulated message-passing network connecting logical nodes.

:class:`SimNetwork` is the only channel through which peers may talk to
each other; sending a message samples a latency from the configured
model and schedules delivery on the event loop.  Offline destinations
silently drop messages (senders are expected to use timeouts or replica
retries, exactly as over a real WAN).

:class:`SimNetwork` is the in-process implementation of the
:class:`~repro.simnet.transport.Transport` boundary — the name
:data:`InProcessTransport` is the canonical alias in transport-facing
code.  Peers receive deliveries through the handler registry on
:class:`Node`: each message kind maps to one registered handler, which
is what makes peers addressable actors rather than objects calling into
each other.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simnet.events import EventLoop, SimulationError
from repro.simnet.latency import ConstantLatency, LatencyModel
from repro.simnet.transport import Transport


@dataclass
class Message:
    """One network message (the envelope of the actor boundary).

    ``kind`` tags the protocol step (``"route"``, ``"reply"``, ...);
    ``hops`` counts forwarding steps for the hop-count benchmarks; the
    free-form ``payload`` dict carries protocol state.  Payloads must
    stay plain data (picklable) — a sharded transport ships them across
    process boundaries.
    """

    kind: str
    src: str
    dst: str
    payload: dict[str, Any] = field(default_factory=dict)
    hops: int = 0
    sent_at: float = 0.0
    #: attribution tag of the logical operation this message belongs
    #: to; filled from the network's active operation scope when left
    #: ``None`` and inherited by every message sent while handling the
    #: delivery (forwards, replies, replica fan-out)
    op_tag: str | None = None


class Node:
    """Base class for anything attached to a :class:`Transport`.

    A node is an *actor*: it reaches the rest of the system only
    through :meth:`send` envelopes, and receives deliveries through
    handlers registered per message kind with :meth:`register_handler`.
    Subclasses either register handlers (the normal protocol style) or
    override :meth:`on_message` wholesale.  The node gets a back-ref to
    the transport when attached, which keeps construction order
    flexible.
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.network: Transport | None = None
        self.online = True
        #: message kind -> bound handler (see :meth:`register_handler`)
        self._handlers: dict[str, Callable[[Message], None]] = {}

    @property
    def loop(self) -> EventLoop:
        """The event loop of the attached transport."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached")
        return self.network.loop

    def send(self, dst: str, kind: str, payload: dict | None = None,
             hops: int = 0) -> None:
        """Send a message through the attached transport."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached")
        self.network.send(Message(
            kind=kind,
            src=self.node_id,
            dst=dst,
            payload=payload or {},
            hops=hops,
        ))

    # -- delivery ------------------------------------------------------

    def register_handler(self, kind: str,
                         handler: Callable[[Message], None]) -> None:
        """Route deliveries of ``kind`` to ``handler`` (last wins)."""
        self._handlers[kind] = handler

    def handled_kinds(self) -> frozenset[str]:
        """The message kinds this node has handlers for."""
        return frozenset(self._handlers)

    def on_message(self, message: Message) -> None:
        """Dispatch a delivered message to its registered handler."""
        handler = self._handlers.get(message.kind)
        if handler is None:
            self.unhandled_message(message)
        else:
            handler(message)

    def unhandled_message(self, message: Message) -> None:
        """Called for deliveries with no registered handler."""
        raise ValueError(f"unknown message kind {message.kind!r}")


class SimNetwork(Transport):
    """The simulated Internet layer (single shared event loop).

    Parameters
    ----------
    loop:
        Event loop carrying deliveries (a fresh one is created when
        omitted).
    latency:
        Per-message delay model; defaults to a 50 ms constant.
    rng:
        Randomness source for latency sampling (seeded for
        reproducibility).
    """

    def __init__(
        self,
        loop: EventLoop | None = None,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__()
        self._loop = loop if loop is not None else EventLoop()
        self.latency = latency if latency is not None else ConstantLatency()
        self.rng = rng if rng is not None else random.Random(0)

    @property
    def loop(self) -> EventLoop:
        return self._loop

    # -- transport -----------------------------------------------------

    def send(self, message: Message) -> None:
        """Sample a latency and schedule delivery of ``message``.

        Messages to unknown or offline destinations are dropped; the
        drop is recorded so protocols under test can be audited for
        relying on silent success.
        """
        message.sent_at = self._loop.now
        if message.op_tag is None:
            message.op_tag = self.current_operation()
        dst_node = self._nodes.get(message.dst)
        if dst_node is None or not dst_node.online:
            self.metrics.record_drop(message.kind, reason="offline")
            return
        injector = self.fault_injector
        if injector is not None:
            drop_reason = injector.on_send(message)
            if drop_reason is not None:
                self.metrics.record_drop(message.kind, reason=drop_reason)
                return
        delay = self.latency.sample(message.src, message.dst, self.rng)
        values = message.payload.get("values")
        values_count = len(values) if isinstance(values, (list, set)) else 0
        self.metrics.record_send(message.kind, delay, values_count,
                                 op_tag=message.op_tag)
        if injector is not None:
            # The injector owns scheduling for faulted links: it may
            # add jitter, clone duplicates or hold the message back to
            # reorder it behind later traffic.  Unmatched messages are
            # scheduled exactly as below.
            injector.dispatch(message, delay, self._deliver)
        else:
            self._loop.schedule(delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None or not node.online:
            # Destination went offline while the message was in flight.
            self.metrics.record_drop(message.kind, reason="in_flight")
            return
        if message.op_tag is not None:
            # Re-open the scope so messages sent by the handler inherit
            # the delivered message's attribution.
            with self.operation(message.op_tag):
                node.on_message(message)
        else:
            node.on_message(message)


#: The canonical transport-facing name for :class:`SimNetwork`: the
#: single-event-loop transport, bit-identical to the pre-refactor
#: simulator (see ``tests/test_transport_golden.py``).
InProcessTransport = SimNetwork
