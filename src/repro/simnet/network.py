"""Simulated message-passing network connecting logical nodes.

:class:`SimNetwork` is the only channel through which peers may talk to
each other; sending a message samples a latency from the configured
model and schedules delivery on the event loop.  Offline destinations
silently drop messages (senders are expected to use timeouts or replica
retries, exactly as over a real WAN).
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.simnet.events import EventLoop, SimulationError
from repro.simnet.latency import ConstantLatency, LatencyModel
from repro.simnet.metrics import NetworkMetrics


@dataclass
class Message:
    """One network message.

    ``kind`` tags the protocol step (``"route"``, ``"reply"``, ...);
    ``hops`` counts forwarding steps for the hop-count benchmarks; the
    free-form ``payload`` dict carries protocol state.
    """

    kind: str
    src: str
    dst: str
    payload: dict[str, Any] = field(default_factory=dict)
    hops: int = 0
    sent_at: float = 0.0
    #: attribution tag of the logical operation this message belongs
    #: to; filled from the network's active operation scope when left
    #: ``None`` and inherited by every message sent while handling the
    #: delivery (forwards, replies, replica fan-out)
    op_tag: str | None = None


class Node:
    """Base class for anything attached to a :class:`SimNetwork`.

    Subclasses override :meth:`on_message`.  The node gets back-refs to
    the network and loop when attached, which keeps construction order
    flexible.
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.network: "SimNetwork | None" = None
        self.online = True

    @property
    def loop(self) -> EventLoop:
        """The event loop of the attached network."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached")
        return self.network.loop

    def send(self, dst: str, kind: str, payload: dict | None = None,
             hops: int = 0) -> None:
        """Send a message through the attached network."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached")
        self.network.send(Message(
            kind=kind,
            src=self.node_id,
            dst=dst,
            payload=payload or {},
            hops=hops,
        ))

    def on_message(self, message: Message) -> None:
        """Handle a delivered message (override in subclasses)."""
        raise NotImplementedError


class SimNetwork:
    """The simulated Internet layer.

    Parameters
    ----------
    loop:
        Event loop carrying deliveries (a fresh one is created when
        omitted).
    latency:
        Per-message delay model; defaults to a 50 ms constant.
    rng:
        Randomness source for latency sampling (seeded for
        reproducibility).
    """

    def __init__(
        self,
        loop: EventLoop | None = None,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.loop = loop if loop is not None else EventLoop()
        self.latency = latency if latency is not None else ConstantLatency()
        self.rng = rng if rng is not None else random.Random(0)
        self.metrics = NetworkMetrics()
        self._nodes: dict[str, Node] = {}
        #: stack of active attribution scopes (see :meth:`operation`)
        self._op_stack: list[str] = []
        #: active fault injector, if any (see
        #: :class:`repro.faultlab.injector.FaultInjector`).  ``None``
        #: keeps :meth:`send` on the exact historical code path — with
        #: no injector installed every simulation stays bit-identical.
        self.fault_injector: Any | None = None

    # -- per-operation attribution -------------------------------------

    def current_operation(self) -> str | None:
        """The attribution tag of the innermost active scope, if any."""
        return self._op_stack[-1] if self._op_stack else None

    @contextmanager
    def operation(self, op_tag: str) -> Iterator[None]:
        """Attribute messages sent inside this scope to ``op_tag``.

        The tag sticks to the messages themselves, so the attribution
        follows the *causal chain*: handling a tagged delivery re-opens
        the scope, and any forwards, replies or replica pushes sent
        from the handler inherit the tag.  Concurrent background
        traffic (maintenance ticks, churn) runs outside any scope and
        stays unattributed — this is what makes per-query message
        counts exact under churn (see
        :meth:`~repro.simnet.metrics.NetworkMetrics.begin_operation`).
        """
        self._op_stack.append(op_tag)
        try:
            yield
        finally:
            self._op_stack.pop()

    # -- membership ----------------------------------------------------

    def attach(self, node: Node) -> None:
        """Register a node under its ``node_id``."""
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id!r}")
        node.network = self
        self._nodes[node.node_id] = node

    def detach(self, node_id: str) -> None:
        """Remove a node permanently (e.g. simulated departure)."""
        node = self._nodes.pop(node_id, None)
        if node is not None:
            node.network = None

    def node(self, node_id: str) -> Node:
        """Look up an attached node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"unknown node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node_ids(self) -> list[str]:
        """Ids of all attached nodes (online or not)."""
        return list(self._nodes)

    def is_online(self, node_id: str) -> bool:
        """Whether the node exists and is currently online."""
        node = self._nodes.get(node_id)
        return node is not None and node.online

    def set_online(self, node_id: str, online: bool) -> None:
        """Toggle a node's availability (simulated crash / recovery)."""
        self.node(node_id).online = online

    # -- transport -----------------------------------------------------

    def send(self, message: Message) -> None:
        """Sample a latency and schedule delivery of ``message``.

        Messages to unknown or offline destinations are dropped; the
        drop is recorded so protocols under test can be audited for
        relying on silent success.
        """
        message.sent_at = self.loop.now
        if message.op_tag is None:
            message.op_tag = self.current_operation()
        dst_node = self._nodes.get(message.dst)
        if dst_node is None or not dst_node.online:
            self.metrics.record_drop(message.kind, reason="offline")
            return
        injector = self.fault_injector
        if injector is not None:
            drop_reason = injector.on_send(message)
            if drop_reason is not None:
                self.metrics.record_drop(message.kind, reason=drop_reason)
                return
        delay = self.latency.sample(message.src, message.dst, self.rng)
        values = message.payload.get("values")
        values_count = len(values) if isinstance(values, (list, set)) else 0
        self.metrics.record_send(message.kind, delay, values_count,
                                 op_tag=message.op_tag)
        if injector is not None:
            # The injector owns scheduling for faulted links: it may
            # add jitter, clone duplicates or hold the message back to
            # reorder it behind later traffic.  Unmatched messages are
            # scheduled exactly as below.
            injector.dispatch(message, delay, self._deliver)
        else:
            self.loop.schedule(delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None or not node.online:
            # Destination went offline while the message was in flight.
            self.metrics.record_drop(message.kind, reason="in_flight")
            return
        if message.op_tag is not None:
            # Re-open the scope so messages sent by the handler inherit
            # the delivered message's attribution.
            with self.operation(message.op_tag):
                node.on_message(message)
        else:
            node.on_message(message)
