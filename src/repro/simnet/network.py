"""Simulated message-passing network connecting logical nodes.

:class:`SimNetwork` is the only channel through which peers may talk to
each other; sending a message samples a latency from the configured
model and schedules delivery on the event loop.  Offline destinations
silently drop messages (senders are expected to use timeouts or replica
retries, exactly as over a real WAN).

:class:`SimNetwork` is the in-process implementation of the
:class:`~repro.simnet.transport.Transport` boundary — the name
:data:`InProcessTransport` is the canonical alias in transport-facing
code.  Peers receive deliveries through the handler registry on
:class:`Node`: each message kind maps to one registered handler, which
is what makes peers addressable actors rather than objects calling into
each other.
"""

from __future__ import annotations

import random
from heapq import heappush
from typing import Any, Callable

from repro.simnet.events import EventHandle, EventLoop, SimulationError
from repro.simnet.latency import ConstantLatency, LatencyModel
from repro.simnet.transport import Transport


class Message:
    """One network message (the envelope of the actor boundary).

    ``kind`` tags the protocol step (``"route"``, ``"reply"``, ...);
    ``hops`` counts forwarding steps for the hop-count benchmarks; the
    free-form ``payload`` dict carries protocol state.  Payloads must
    stay plain data (picklable) — a sharded transport ships them across
    process boundaries.

    A slot-only class rather than a dataclass: one Message is built per
    send, and at deployment scale the per-instance dict is measurable
    overhead (slot instances also pickle fine across shard workers).
    """

    __slots__ = ("kind", "src", "dst", "payload", "hops", "sent_at",
                 "op_tag", "trace")

    def __init__(self, kind: str, src: str, dst: str,
                 payload: dict[str, Any] | None = None, hops: int = 0,
                 sent_at: float = 0.0, op_tag: str | None = None) -> None:
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = {} if payload is None else payload
        self.hops = hops
        self.sent_at = sent_at
        #: attribution tag of the logical operation this message
        #: belongs to; filled from the network's active operation scope
        #: when left ``None`` and inherited by every message sent while
        #: handling the delivery (forwards, replies, replica fan-out)
        self.op_tag = op_tag
        #: trace context ``(trace_id, span_id)`` of the causal chain
        #: this message belongs to — a plain picklable tuple so sharded
        #: transports ship it across process boundaries unchanged.
        #: ``None`` whenever no tracer is installed or no trace is
        #: active; the transport stamps it at send time and restores it
        #: around the delivery handler (see ``repro.obs``).
        self.trace: Any = None

    def __repr__(self) -> str:
        return (f"Message(kind={self.kind!r}, src={self.src!r}, "
                f"dst={self.dst!r}, payload={self.payload!r}, "
                f"hops={self.hops}, sent_at={self.sent_at}, "
                f"op_tag={self.op_tag!r})")


class Node:
    """Base class for anything attached to a :class:`Transport`.

    A node is an *actor*: it reaches the rest of the system only
    through :meth:`send` envelopes, and receives deliveries through
    handlers registered per message kind with :meth:`register_handler`.
    Subclasses either register handlers (the normal protocol style) or
    override :meth:`on_message` wholesale.  The node gets a back-ref to
    the transport when attached, which keeps construction order
    flexible.
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.network: Transport | None = None
        self.online = True
        #: message kind -> bound handler (see :meth:`register_handler`)
        self._handlers: dict[str, Callable[[Message], None]] = {}
        #: True when this node uses the stock :meth:`on_message`
        #: dispatch, letting the transport jump straight to the handler
        #: registry on delivery (one less frame per message)
        self._fast_dispatch = type(self).on_message is Node.on_message

    @property
    def loop(self) -> EventLoop:
        """The event loop of the attached transport."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached")
        return self.network.loop

    def send(self, dst: str, kind: str, payload: dict | None = None,
             hops: int = 0) -> None:
        """Send a message through the attached transport."""
        if self.network is None:
            raise SimulationError(f"node {self.node_id} is not attached")
        self.network.send(Message(
            kind=kind,
            src=self.node_id,
            dst=dst,
            payload=payload or {},
            hops=hops,
        ))

    # -- delivery ------------------------------------------------------

    def register_handler(self, kind: str,
                         handler: Callable[[Message], None]) -> None:
        """Route deliveries of ``kind`` to ``handler`` (last wins)."""
        self._handlers[kind] = handler

    def handled_kinds(self) -> frozenset[str]:
        """The message kinds this node has handlers for."""
        return frozenset(self._handlers)

    def on_message(self, message: Message) -> None:
        """Dispatch a delivered message to its registered handler."""
        handler = self._handlers.get(message.kind)
        if handler is None:
            self.unhandled_message(message)
        else:
            handler(message)

    def unhandled_message(self, message: Message) -> None:
        """Called for deliveries with no registered handler."""
        raise ValueError(f"unknown message kind {message.kind!r}")


class SimNetwork(Transport):
    """The simulated Internet layer (single shared event loop).

    Parameters
    ----------
    loop:
        Event loop carrying deliveries (a fresh one is created when
        omitted).
    latency:
        Per-message delay model; defaults to a 50 ms constant.
    rng:
        Randomness source for latency sampling (seeded for
        reproducibility).
    """

    def __init__(
        self,
        loop: EventLoop | None = None,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__()
        # ``loop`` doubles as the public accessor (see Transport.loop);
        # ``_loop`` is kept as an alias for existing internal callers.
        self.loop = self._loop = loop if loop is not None else EventLoop()
        self.latency = latency if latency is not None else ConstantLatency()
        self.rng = rng if rng is not None else random.Random(0)

    # -- transport -----------------------------------------------------

    def send(self, message: Message) -> None:
        """Sample a latency and schedule delivery of ``message``.

        Messages to unknown or offline destinations are dropped; the
        drop is recorded so protocols under test can be audited for
        relying on silent success.
        """
        loop = self._loop
        message.sent_at = loop._now
        if message.op_tag is None:
            op_stack = self._op_stack
            if op_stack:
                message.op_tag = op_stack[-1]
        tracer = self.tracer
        if tracer is not None and message.trace is None:
            # Stamp the active trace context, mirroring the op_tag
            # inheritance above.  With no tracer installed this whole
            # block is one attribute load and a None check — the
            # pay-for-what-you-use contract the golden tests pin.
            trace_stack = tracer._stack
            if trace_stack:
                message.trace = trace_stack[-1]
        dst_node = self._nodes.get(message.dst)
        if dst_node is None or not dst_node.online:
            self.metrics.record_drop(message.kind, reason="offline")
            if tracer is not None and message.trace is not None:
                tracer.message_dropped(message, loop._now, "offline")
            return
        injector = self.fault_injector
        if injector is not None:
            drop_reason = injector.on_send(message)
            if drop_reason is not None:
                self.metrics.record_drop(message.kind, reason=drop_reason)
                if tracer is not None and message.trace is not None:
                    tracer.message_dropped(message, loop._now,
                                           drop_reason)
                return
        latency = self.latency
        if type(latency) is ConstantLatency:
            # The default model needs no sampling call (and consumes no
            # randomness) — skip the frame on the per-message path.
            delay = latency.delay
        else:
            delay = latency.sample(message.src, message.dst, self.rng)
        # Inlined ``self.metrics.record_send(...)``: one method call per
        # message is measurable at deployment-build volume.
        kind = message.kind
        metrics = self.metrics
        metrics.messages_sent += 1
        metrics.total_latency += delay
        values = message.payload.get("values")
        if values is not None and isinstance(values, (list, set)):
            metrics.values_shipped += len(values)
        by_kind = metrics.messages_by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        op_tag = message.op_tag
        if op_tag is not None and op_tag in metrics.operations:
            metrics.operations[op_tag] += 1
        if tracer is not None and message.trace is not None:
            # Same gate as the op_tag counter above: a hop span exists
            # exactly for the messages the metrics layer counts, which
            # is what makes per-trace message coverage an exact match
            # against ``operation_messages``.
            tracer.message_sent(message, loop._now, delay)
        if injector is not None:
            # The injector owns scheduling for faulted links: it may
            # add jitter, clone duplicates or hold the message back to
            # reorder it behind later traffic.  Unmatched messages are
            # scheduled exactly as below.
            injector.dispatch(message, delay, self._deliver)
        else:
            # Inlined ``loop.schedule(delay, self._deliver, message)``
            # — same heap entry and seq numbering, minus one frame on
            # the per-message path (delay is a sampled latency, never
            # negative, so the guard is also redundant here).
            time = loop._now + delay
            handle = EventHandle(time, next(loop._seq), loop,
                                 self._deliver, (message,))
            heappush(loop._queue, (time, handle.seq, handle))
            loop._live += 1

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None or not node.online:
            # Destination went offline while the message was in flight.
            self.metrics.record_drop(message.kind, reason="in_flight")
            tracer = self.tracer
            if tracer is not None and message.trace is not None:
                tracer.message_dropped(message, self._loop._now,
                                       "in_flight")
            return
        if node._fast_dispatch:
            # Stock dispatch: jump straight to the registered handler
            # (``on_message`` would do exactly this lookup, one frame
            # deeper — and this is the hottest call site in the system).
            handler = node._handlers.get(message.kind)
            if handler is None:
                handler = node.unhandled_message
        else:
            handler = node.on_message
        if message.trace is not None:
            # Traced delivery: re-open the trace context (and the
            # op_tag scope) around the handler.  Untraced messages —
            # the only kind that exists with tracing off — skip to the
            # exact historical dispatch below.
            self._deliver_traced(message, handler)
            return
        op_tag = message.op_tag
        if op_tag is not None:
            # Re-open the scope so messages sent by the handler inherit
            # the delivered message's attribution (inlined
            # ``self.operation(...)``: one scope open/close per
            # delivery makes the contextmanager generator measurable).
            op_stack = self._op_stack
            op_stack.append(op_tag)
            try:
                handler(message)
            finally:
                op_stack.pop()
        else:
            handler(message)

    def _deliver_traced(self, message: Message, handler) -> None:
        """Deliver with the envelope's trace context re-activated.

        Messages the handler sends parent under this message's hop
        span — the asynchronous leg of causal propagation (the
        synchronous leg is the tracer's activation stack).
        """
        tracer = self.tracer
        trace_stack = tracer._stack if tracer is not None else None
        if trace_stack is not None:
            trace_stack.append(message.trace)
        op_tag = message.op_tag
        try:
            if op_tag is not None:
                op_stack = self._op_stack
                op_stack.append(op_tag)
                try:
                    handler(message)
                finally:
                    op_stack.pop()
            else:
                handler(message)
        finally:
            if trace_stack is not None:
                trace_stack.pop()


#: The canonical transport-facing name for :class:`SimNetwork`: the
#: single-event-loop transport, bit-identical to the pre-refactor
#: simulator (see ``tests/test_transport_golden.py``).
InProcessTransport = SimNetwork
