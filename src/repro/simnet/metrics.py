"""Counters and traces collected by the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NetworkMetrics:
    """Aggregate statistics over all messages sent through a network.

    ``messages_by_kind`` groups counts by the message's ``kind`` tag so
    benchmarks can separate routing traffic from maintenance traffic.
    """

    messages_sent: int = 0
    messages_dropped: int = 0
    total_latency: float = 0.0
    #: result values carried by reply messages — a proxy for data
    #: volume on the wire (bound vs parallel joins trade messages for
    #: shipped tuples; see bench E12)
    values_shipped: int = 0
    messages_by_kind: dict[str, int] = field(default_factory=dict)
    #: drop counts by *cause*: ``"offline"`` (destination was already
    #: offline at send time — the silent drops churn produces),
    #: ``"in_flight"`` (destination crashed while the message was on
    #: the wire), or a fault-injection reason such as ``"fault"`` /
    #: ``"partition"`` (see :mod:`repro.faultlab`)
    drops_by_reason: dict[str, int] = field(default_factory=dict)
    #: injected-fault counts keyed ``"<action>:<kind>"`` (actions:
    #: ``drop``, ``partition``, ``duplicate``, ``delay``, ``reorder``,
    #: ``crash``, ``restart`` — the latter two use kind ``"node"``)
    faults_by_kind: dict[str, int] = field(default_factory=dict)
    #: message counts for *tracked* operations only (see
    #: :meth:`begin_operation`) — exact per-operation attribution even
    #: with concurrent background traffic on the same network
    operations: dict[str, int] = field(default_factory=dict)

    def begin_operation(self, op_tag: str) -> None:
        """Start counting messages attributed to ``op_tag``.

        Only operations registered here are counted (the set of live
        tags stays bounded: callers pop the counter with
        :meth:`end_operation` when the operation resolves).
        """
        self.operations[op_tag] = 0

    def end_operation(self, op_tag: str) -> int:
        """Stop tracking ``op_tag`` and return its message count."""
        return self.operations.pop(op_tag, 0)

    def operation_messages(self, op_tag: str) -> int:
        """Current message count of a tracked operation (0 if unknown)."""
        return self.operations.get(op_tag, 0)

    def record_send(self, kind: str, latency: float,
                    values_count: int = 0,
                    op_tag: str | None = None) -> None:
        """Account for one delivered message."""
        self.messages_sent += 1
        self.total_latency += latency
        self.values_shipped += values_count
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1
        if op_tag is not None and op_tag in self.operations:
            self.operations[op_tag] += 1

    def record_drop(self, kind: str, reason: str = "offline") -> None:
        """Account for one message dropped before delivery.

        ``reason`` separates the causes: churn's silent
        offline-destination drops (``"offline"`` at send time,
        ``"in_flight"`` for crashes mid-delivery) from injected faults
        (``"fault"``, ``"partition"``) — without the breakdown the
        offline drops were indistinguishable from everything else.
        """
        self.messages_dropped += 1
        key = f"dropped:{kind}"
        self.messages_by_kind[key] = self.messages_by_kind.get(key, 0) + 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1

    def record_fault(self, action: str, kind: str) -> None:
        """Account for one injected fault on a ``kind`` message."""
        key = f"{action}:{kind}"
        self.faults_by_kind[key] = self.faults_by_kind.get(key, 0) + 1

    @property
    def faults_injected(self) -> int:
        """Total injected-fault count across all actions and kinds."""
        return sum(self.faults_by_kind.values())

    @property
    def mean_latency(self) -> float:
        """Mean per-message delivery latency in seconds (0.0 if none)."""
        if self.messages_sent == 0:
            return 0.0
        return self.total_latency / self.messages_sent

    def register_into(self, registry, name: str = "network") -> None:
        """Expose these counters as a lazily-evaluated view in a
        :class:`~repro.obs.registry.MetricsRegistry`.

        The counters themselves stay plain dataclass fields (the send
        path increments them inline); the registry snapshots them on
        demand, so registration costs nothing per message.
        """
        registry.register_view(name, self.snapshot)

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for bench reporting."""
        return {
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "mean_latency": self.mean_latency,
            "values_shipped": self.values_shipped,
            "messages_by_kind": dict(self.messages_by_kind),
            "drops_by_reason": dict(self.drops_by_reason),
            "faults_by_kind": dict(self.faults_by_kind),
        }

    def reset(self) -> None:
        """Zero all counters (e.g. after a warm-up phase).

        Tracked operation counters restart at zero but stay tracked —
        an operation spanning the reset keeps attributing its later
        messages.
        """
        self.messages_sent = 0
        self.messages_dropped = 0
        self.total_latency = 0.0
        self.values_shipped = 0
        self.messages_by_kind.clear()
        self.drops_by_reason.clear()
        self.faults_by_kind.clear()
        for op_tag in self.operations:
            self.operations[op_tag] = 0
