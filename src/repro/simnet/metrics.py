"""Counters and traces collected by the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NetworkMetrics:
    """Aggregate statistics over all messages sent through a network.

    ``messages_by_kind`` groups counts by the message's ``kind`` tag so
    benchmarks can separate routing traffic from maintenance traffic.
    """

    messages_sent: int = 0
    messages_dropped: int = 0
    total_latency: float = 0.0
    #: result values carried by reply messages — a proxy for data
    #: volume on the wire (bound vs parallel joins trade messages for
    #: shipped tuples; see bench E12)
    values_shipped: int = 0
    messages_by_kind: dict[str, int] = field(default_factory=dict)

    def record_send(self, kind: str, latency: float,
                    values_count: int = 0) -> None:
        """Account for one delivered message."""
        self.messages_sent += 1
        self.total_latency += latency
        self.values_shipped += values_count
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def record_drop(self, kind: str) -> None:
        """Account for one message dropped (offline destination)."""
        self.messages_dropped += 1
        key = f"dropped:{kind}"
        self.messages_by_kind[key] = self.messages_by_kind.get(key, 0) + 1

    @property
    def mean_latency(self) -> float:
        """Mean per-message delivery latency in seconds (0.0 if none)."""
        if self.messages_sent == 0:
            return 0.0
        return self.total_latency / self.messages_sent

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for bench reporting."""
        return {
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "mean_latency": self.mean_latency,
            "values_shipped": self.values_shipped,
            "messages_by_kind": dict(self.messages_by_kind),
        }

    def reset(self) -> None:
        """Zero all counters (e.g. after a warm-up phase)."""
        self.messages_sent = 0
        self.messages_dropped = 0
        self.total_latency = 0.0
        self.values_shipped = 0
        self.messages_by_kind.clear()
