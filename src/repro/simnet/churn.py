"""Churn process: random peer failures and recoveries over time.

P-Grid's Retrieve/Update "provide probabilistic guarantees for data
consistency and are efficient even in highly unreliable, dynamic
environments" (§2.1).  The churn process lets benchmarks exercise this:
it toggles nodes offline for exponentially distributed outages at an
exponentially distributed rate.
"""

from __future__ import annotations

import random

from repro.simnet.network import SimNetwork


class ChurnProcess:
    """Drives crash/recover events on a :class:`SimNetwork`.

    Parameters
    ----------
    network:
        The network whose nodes will churn.
    mean_uptime:
        Mean seconds a node stays online before failing.
    mean_downtime:
        Mean seconds a node stays offline before recovering.
    rng:
        Randomness source.
    protected:
        Node ids never taken offline (e.g. the measurement client).
    """

    def __init__(
        self,
        network: SimNetwork,
        mean_uptime: float = 300.0,
        mean_downtime: float = 30.0,
        rng: random.Random | None = None,
        protected: set[str] | None = None,
    ) -> None:
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ValueError("mean uptime/downtime must be positive")
        self.network = network
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.rng = rng if rng is not None else random.Random(0)
        self.protected = protected or set()
        self.failures = 0
        self.recoveries = 0
        self._running = False

    def start(self) -> None:
        """Schedule the first failure for every unprotected node."""
        self._running = True
        for node_id in self.network.node_ids():
            if node_id not in self.protected:
                self._schedule_failure(node_id)

    def stop(self) -> None:
        """Stop generating new churn events (in-flight ones still fire)."""
        self._running = False

    def _schedule_failure(self, node_id: str) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_uptime)
        self.network.loop.schedule(delay, self._fail, node_id)

    def _fail(self, node_id: str) -> None:
        if not self._running or node_id not in self.network:
            return
        self.network.set_online(node_id, False)
        self.failures += 1
        delay = self.rng.expovariate(1.0 / self.mean_downtime)
        self.network.loop.schedule(delay, self._recover, node_id)

    def _recover(self, node_id: str) -> None:
        if node_id not in self.network:
            return
        self.network.set_online(node_id, True)
        self.recoveries += 1
        if self._running:
            self._schedule_failure(node_id)
