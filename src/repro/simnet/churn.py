"""Churn process: random peer failures and recoveries over time.

P-Grid's Retrieve/Update "provide probabilistic guarantees for data
consistency and are efficient even in highly unreliable, dynamic
environments" (§2.1).  The churn process lets benchmarks exercise this:
it toggles nodes offline for exponentially distributed outages at an
exponentially distributed rate.

Lifecycle semantics
-------------------
``start`` / ``stop`` may be cycled freely.  Every ``start`` opens a new
*epoch*; failure events scheduled in earlier epochs are stale and never
fire, so a restart cannot double-schedule a node's failure chain.
Pending *recoveries* survive a stop (a node taken offline is always
brought back), and a recovery that fires while the process is running
re-enters the node into the failure schedule exactly once.  ``_fail``
and ``_recover`` are idempotent: a node already offline is never
re-failed (no inflated ``failures`` count), a node already online is
never re-recovered.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.simnet.events import SimulationError
from repro.simnet.network import SimNetwork


def exponential_schedule(
    node_ids: Iterable[str],
    mean_uptime: float,
    mean_downtime: float,
    duration: float,
    seed: int = 0,
) -> list[tuple[float, str, bool]]:
    """Precompute an exponential up/down toggle trace for every node.

    :class:`ChurnProcess` draws outage times *online* from the shared
    event loop's schedule order, which ties the trace to one engine's
    interleaving.  Scale-out comparisons need the opposite: the same
    churn trace replayed against different transports (in-process vs
    sharded, any shard count), so each node's alternating
    up/down periods are drawn here from a private per-node stream
    ``Random(f"{seed}/churn/{node_id}")`` — the trace depends only on
    the seed and node ids, never on the engine.

    Returns ``(time, node_id, online)`` toggles sorted by time (ties
    broken by node id), all within ``(0, duration)``; every node ends
    scheduled to come back online (no stranded outage past the end).
    """
    if mean_uptime <= 0 or mean_downtime <= 0:
        raise ValueError("mean uptime/downtime must be positive")
    toggles: list[tuple[float, str, bool]] = []
    for node_id in sorted(node_ids):
        rng = random.Random(f"{seed}/churn/{node_id}")
        t = rng.expovariate(1.0 / mean_uptime)
        while t < duration:
            toggles.append((t, node_id, False))
            t += rng.expovariate(1.0 / mean_downtime)
            if t >= duration:
                # Never strand a node offline at the end of the trace.
                toggles.append((min(t, duration - 1e-9), node_id, True))
                break
            toggles.append((t, node_id, True))
            t += rng.expovariate(1.0 / mean_uptime)
    toggles.sort(key=lambda item: (item[0], item[1]))
    return toggles


class ChurnProcess:
    """Drives crash/recover events on a :class:`SimNetwork`.

    Parameters
    ----------
    network:
        The network whose nodes will churn.
    mean_uptime:
        Mean seconds a node stays online before failing.
    mean_downtime:
        Mean seconds a node stays offline before recovering.
    rng:
        Randomness source.
    protected:
        Node ids never taken offline (e.g. the measurement client).
    """

    def __init__(
        self,
        network: SimNetwork,
        mean_uptime: float = 300.0,
        mean_downtime: float = 30.0,
        rng: random.Random | None = None,
        protected: set[str] | None = None,
    ) -> None:
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ValueError("mean uptime/downtime must be positive")
        self.network = network
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.rng = rng if rng is not None else random.Random(0)
        self.protected = protected or set()
        self.failures = 0
        self.recoveries = 0
        #: failed nodes we could not recover (departed the network or
        #: were toggled back online externally while down)
        self.orphaned = 0
        self._running = False
        #: bumped on every start(); scheduled failures carry the epoch
        #: they were created in and refuse to fire once it is stale
        self._epoch = 0
        #: nodes this process took offline and owes a recovery
        self._down: set[str] = set()

    def currently_down(self) -> set[str]:
        """Nodes this process has taken offline and not yet recovered."""
        return set(self._down)

    def assert_consistent(self) -> None:
        """Raise unless the bookkeeping matches the network state.

        Invariants: every failure is paired with a recovery, is still
        pending one, or was orphaned by an external membership /
        liveness change — ``failures == recoveries +
        len(currently_down()) + orphaned`` — and every node we hold
        down is actually offline.
        """
        if self.failures != (self.recoveries + len(self._down)
                             + self.orphaned):
            raise SimulationError(
                f"churn bookkeeping skew: {self.failures} failures != "
                f"{self.recoveries} recoveries + {len(self._down)} down "
                f"+ {self.orphaned} orphaned"
            )
        for node_id in self._down:
            if node_id in self.network and self.network.is_online(node_id):
                raise SimulationError(
                    f"node {node_id!r} is online but marked down by churn"
                )

    def start(self) -> None:
        """(Re)start churn: schedule a failure for every unprotected
        node that is currently online.

        Nodes still offline from a previous run are *not* re-failed;
        their pending recovery re-enrols them when it fires.
        """
        self._running = True
        self._epoch += 1
        for node_id in self.network.node_ids():
            if node_id in self.protected:
                continue
            if not self.network.is_online(node_id):
                continue
            self._schedule_failure(node_id)

    def stop(self) -> None:
        """Stop generating new failures.

        Scheduled failures die quietly (their epoch check fails on a
        later restart, and ``_running`` blocks them meanwhile); pending
        recoveries still fire so no node is stranded offline.
        """
        self._running = False

    def _schedule_failure(self, node_id: str) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_uptime)
        self.network.loop.schedule(delay, self._fail, node_id, self._epoch)

    def _fail(self, node_id: str, epoch: int) -> None:
        if epoch != self._epoch or not self._running:
            return  # stale event from before a stop()/start() cycle
        if node_id not in self.network:
            return
        if not self.network.is_online(node_id):
            # Already offline (taken down externally, or a duplicate
            # event): failing an offline node is a no-op, never a
            # second counted failure.
            return
        self.network.set_online(node_id, False)
        self._down.add(node_id)
        self.failures += 1
        delay = self.rng.expovariate(1.0 / self.mean_downtime)
        self.network.loop.schedule(delay, self._recover, node_id)

    def _recover(self, node_id: str) -> None:
        if node_id not in self._down:
            return  # not ours (or already recovered): idempotent
        self._down.discard(node_id)
        if node_id not in self.network:
            self.orphaned += 1
            return  # departed while offline
        if self.network.is_online(node_id):
            self.orphaned += 1
            return  # externally recovered meanwhile
        self.network.set_online(node_id, True)
        self.recoveries += 1
        if self._running:
            # Re-enrol under the *current* epoch: exactly one failure
            # chain per node, even across stop()/start() cycles.
            self._schedule_failure(node_id)
