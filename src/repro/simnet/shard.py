"""Sharded transport: conservative parallel simulation of the overlay.

The in-process transport drives every peer from one event loop, which
caps experiments at a few hundred peers.  This module partitions the
P-Grid trie key space across N *shards*, each owning a contiguous run
of trie leaves and simulating its peers on a private event loop (its
logical clock), and synchronizes the shards with a classic conservative
lookahead scheme:

Window rule
    Let ``W`` be the minimum cross-shard latency (the *lookahead*,
    :meth:`~repro.simnet.latency.LatencyModel.min_delay`).  All shards
    repeatedly run their local loops over the same window
    ``(T, T + W]``.  A message sent at ``t > T`` arrives no earlier
    than ``t + W > T + W``, so nothing sent inside a window can affect
    another shard *within* that window — shards are causally
    independent between barriers and may run in parallel.

Deterministic cross-shard ordering
    At each barrier, shards exchange their outboxes.  Every envelope
    carries ``(deliver_time, src_shard, src_seq)`` and the receiving
    shard enqueues arrivals sorted by exactly that triple; local events
    keep their ``(time, seq)`` heap order.  The merged order of the two
    logical clocks is therefore a pure function of the seed — worker
    scheduling (process interleaving, pipe timing) cannot perturb it,
    which is what lets faultlab's seed-replay and shrinking discipline
    survive at scale.

Liveness under churn
    The *owning* shard applies churn toggles as exact-time local
    events, so the authoritative delivery-time online check (drops with
    reason ``"in_flight"``) behaves exactly like the in-process
    transport.  Remote shards learn toggles from a liveness map
    refreshed at the start of the window containing the toggle —
    send-time online checks against remote peers may be stale by up to
    one window, mirroring how a real WAN's failure detectors lag the
    failures themselves.

Worker modes
    ``mode="inline"`` runs every shard in this process (deterministic,
    zero dependencies — the default, and what tests use).
    ``mode="process"`` forks one worker per shard and drives them over
    pipes; the per-window algorithm is byte-for-byte the same, so both
    modes produce identical observables, but windows execute
    concurrently on multi-core hosts.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simnet.events import EventLoop, SimulationError
from repro.simnet.latency import ConstantLatency, LatencyModel
from repro.simnet.network import Message, Node
from repro.simnet.transport import Transport

#: message kinds whose payload "values" list is counted as shipped
_VALUES = "values"


def partition_paths(assignment: dict[str, Any], num_shards: int
                    ) -> dict[str, int]:
    """Assign each node to a shard by contiguous trie key-space slices.

    Leaves (distinct paths) are sorted in trie (DFS / lexicographic)
    order and dealt to shards in contiguous runs of roughly equal peer
    count, so each shard owns an interval of the key space — replica
    groups never straddle shards, and prefix-local traffic (replication
    pushes, deep routing hops) stays intra-shard.

    ``assignment`` maps node id to a path (any object with ``.bits``).
    Returns node id -> shard index.
    """
    if num_shards <= 0:
        raise SimulationError("num_shards must be positive")
    members: dict[str, list[str]] = {}
    for node_id, path in assignment.items():
        members.setdefault(path.bits, []).append(node_id)
    leaves = sorted(members)
    total = len(assignment)
    owner: dict[str, int] = {}
    shard, filled = 0, 0
    for leaf in leaves:
        for node_id in members[leaf]:
            owner[node_id] = shard
        filled += len(members[leaf])
        # advance once this shard reached its proportional share
        while shard < num_shards - 1 and filled * num_shards >= total * (shard + 1):
            shard += 1
    return owner


class ShardTransport(Transport):
    """The transport one shard's peers are attached to.

    Local deliveries replicate :class:`SimNetwork` semantics (send-time
    offline drop, latency sample, delivery-time ``in_flight`` drop).
    Remote destinations are looked up in the shared ownership map; the
    envelope is sampled for latency at the *sender* and parked in the
    outbox for the next barrier exchange.

    The send path is deliberately leaner than the in-process
    transport's: per-shard metrics keep plain counters (merged at
    collection time) and constant-latency models skip sampling
    entirely.  Per-operation attribution follows the same causal
    discipline as :class:`SimNetwork` — an open ``operation()`` scope
    stamps outgoing envelopes and a delivered tagged envelope re-opens
    its scope around the handler — but counting is unconditional per
    stamped tag (no ``begin_operation`` registry), because the tag must
    keep counting on whichever shard the causal chain lands on.  Bulk
    workloads that never open a scope pay only a ``None`` check per
    message.
    """

    def __init__(
        self,
        shard_id: int,
        owner_of: dict[str, int],
        latency: LatencyModel,
        rng: random.Random,
        clamp_delay: float = 0.0,
    ) -> None:
        super().__init__()
        self.shard_id = shard_id
        # ``loop`` doubles as the public accessor (see Transport.loop);
        # ``_loop`` is kept as an alias for existing internal callers.
        self.loop = self._loop = EventLoop()
        self._owner_of = owner_of
        self.latency = latency
        self.rng = rng
        #: cross-shard delays are raised to at least this (the WAN
        #: propagation floor backing the lookahead window) when the
        #: latency model has no positive lower bound of its own
        self._clamp_delay = clamp_delay
        self._const_delay = (
            latency.delay if isinstance(latency, ConstantLatency) else None)
        #: barrier-refreshed knowledge of remote peers' liveness
        self._liveness: dict[str, bool] = {}
        self._outbox: list[tuple[float, int, Message]] = []
        self._out_seq = itertools.count()

    def is_online(self, node_id: str) -> bool:
        node = self._nodes.get(node_id)
        if node is not None:
            return node.online  # authoritative for owned peers
        if node_id in self._owner_of:
            return self._liveness.get(node_id, True)  # window-stale
        return False

    def set_online(self, node_id: str, online: bool) -> None:
        # Only the owning shard may toggle a peer; the controller
        # routes toggles accordingly.
        self.node(node_id).online = online

    def send(self, message: Message) -> None:
        loop = self._loop
        message.sent_at = loop.now
        op_tag = message.op_tag
        if op_tag is None:
            # Same stamping rule as SimNetwork.send: the innermost
            # active attribution scope rides the envelope, so causal
            # chains keep their tag across shard boundaries.
            op_stack = self._op_stack
            if op_stack:
                message.op_tag = op_tag = op_stack[-1]
        tracer = self.tracer
        if tracer is not None and message.trace is None:
            trace_stack = tracer._stack
            if trace_stack:
                message.trace = trace_stack[-1]
        injector = self.fault_injector
        if injector is not None:
            drop_reason = injector.on_send(message)
            if drop_reason is not None:
                self.metrics.record_drop(message.kind, reason=drop_reason)
                if tracer is not None and message.trace is not None:
                    tracer.message_dropped(message, loop.now, drop_reason)
                return
        dst_node = self._nodes.get(message.dst)
        metrics = self.metrics
        if dst_node is not None:
            # -- local delivery (same semantics as SimNetwork.send) ----
            if not dst_node.online:
                metrics.record_drop(message.kind, reason="offline")
                if tracer is not None and message.trace is not None:
                    tracer.message_dropped(message, loop.now, "offline")
                return
            delay = (self._const_delay if self._const_delay is not None
                     else self.latency.sample(message.src, message.dst,
                                              self.rng))
            metrics.messages_sent += 1
            metrics.total_latency += delay
            if op_tag is not None:
                operations = metrics.operations
                operations[op_tag] = operations.get(op_tag, 0) + 1
            if tracer is not None and message.trace is not None:
                tracer.message_sent(message, loop.now, delay)
            if injector is not None:
                injector.dispatch(message, delay, self._deliver)
            else:
                loop.schedule(delay, self._deliver, message)
            return
        # -- cross-shard envelope --------------------------------------
        if message.dst not in self._owner_of:
            metrics.record_drop(message.kind, reason="offline")
            if tracer is not None and message.trace is not None:
                tracer.message_dropped(message, loop.now, "offline")
            return
        if not self._liveness.get(message.dst, True):
            metrics.record_drop(message.kind, reason="offline")
            if tracer is not None and message.trace is not None:
                tracer.message_dropped(message, loop.now, "offline")
            return
        delay = (self._const_delay if self._const_delay is not None
                 else self.latency.sample(message.src, message.dst, self.rng))
        if delay < self._clamp_delay:
            delay = self._clamp_delay
        metrics.messages_sent += 1
        metrics.total_latency += delay
        if op_tag is not None:
            # Counted once, at the sender — the receiving shard only
            # schedules the delivery, exactly like the local branch.
            operations = metrics.operations
            operations[op_tag] = operations.get(op_tag, 0) + 1
        if tracer is not None and message.trace is not None:
            # Recorded at the sender with the sampled (clamped) delay,
            # so the hop span is complete before the envelope crosses
            # the shard boundary — the receiving shard never amends it.
            tracer.message_sent(message, loop.now, delay)
        self._outbox.append((loop.now + delay, next(self._out_seq), message))

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None or not node.online:
            self.metrics.record_drop(message.kind, reason="in_flight")
            tracer = self.tracer
            if tracer is not None and message.trace is not None:
                tracer.message_dropped(message, self._loop.now,
                                       "in_flight")
            return
        op_tag = message.op_tag
        if message.trace is not None:
            tracer = self.tracer
            if tracer is not None:
                # Cross-shard stitching: the context tuple rode the
                # envelope, so re-activating it here parents the
                # handler's sends under the sender-recorded hop span
                # even when that span lives in another shard's buffer.
                trace_stack = tracer._stack
                trace_stack.append(message.trace)
                if op_tag is not None:
                    op_stack = self._op_stack
                    op_stack.append(op_tag)
                    try:
                        node.on_message(message)
                    finally:
                        op_stack.pop()
                        trace_stack.pop()
                    return
                try:
                    node.on_message(message)
                finally:
                    trace_stack.pop()
                return
        if op_tag is not None:
            # Re-open the attribution scope around the handler, so
            # forwards, replies and replica pushes inherit the tag —
            # the same causal rule as SimNetwork._deliver.
            op_stack = self._op_stack
            op_stack.append(op_tag)
            try:
                node.on_message(message)
            finally:
                op_stack.pop()
            return
        node.on_message(message)

    # Exact-time churn callbacks (pre-scheduled by the controller).

    def _toggle_local(self, node_id: str, online: bool) -> None:
        node = self._nodes.get(node_id)
        if node is not None:
            node.online = online

    def _toggle_liveness(self, node_id: str, online: bool) -> None:
        self._liveness[node_id] = online


def summarize_op_result(result: Any) -> tuple:
    """Default completion summary: a plain, picklable tuple.

    Works for :class:`repro.pgrid.peer.OpResult`; sharded harnesses
    reduce completions to plain data at the barrier so process workers
    never ship peer objects.
    """
    return (result.success, result.hops, round(result.latency, 9),
            result.attempts,
            None if result.values is None else len(result.values))


class Shard:
    """One shard: a :class:`ShardTransport`, its peers, and window state."""

    def __init__(self, shard_id: int, transport: ShardTransport) -> None:
        self.shard_id = shard_id
        self.transport = transport
        self._completions: list[tuple[int, Any]] = []

    # Every window executes these steps in this exact order (the
    # process worker mirrors it verbatim — determinism depends on it).

    def begin_window(
        self,
        liveness: dict[str, bool],
        toggles: list[tuple[float, str, bool]],
        ops: list[tuple[int, str, str, tuple, Callable | None, bool]],
        arrivals: list[tuple[float, int, int, Message]],
    ) -> None:
        transport = self.transport
        loop = transport.loop
        if liveness:
            transport._liveness.update(liveness)
        for at, node_id, online in toggles:
            loop.schedule_at(at, self._apply_toggle, node_id, online)
        for ref, node_id, method, args, summarize, attribute in ops:
            self._issue(ref, node_id, method, args,
                        summarize or summarize_op_result, attribute)
        for deliver_time, _src_shard, _src_seq, message in arrivals:
            loop.schedule_at(deliver_time, transport._deliver, message)

    def run_window(self, horizon: float) -> None:
        self.transport.loop.run_until(horizon)

    def collect(self) -> tuple[list, list, int, float | None]:
        """(outbox, completions, live count, next live event time).

        The trailing pair is the shard's logical-clock status the
        controller needs for quiescence detection and window jumps —
        reported at every barrier so worker processes and inline
        shards feed the jump logic identically.
        """
        transport = self.transport
        outbox, transport._outbox = transport._outbox, []
        completions, self._completions = self._completions, []
        loop = transport.loop
        return outbox, completions, loop.live_events, \
            loop.next_live_event_time()

    # -- helpers -------------------------------------------------------

    def _apply_toggle(self, node_id: str, online: bool) -> None:
        node = self.transport._nodes.get(node_id)
        if node is not None:
            node.online = online

    def _issue(self, ref: int, node_id: str, method: str, args: tuple,
               summarize: Callable, attribute: bool = False) -> None:
        peer = self.transport.node(node_id)
        transport = self.transport
        tracer = transport.tracer
        if attribute:
            # Attributed submission: the synchronous kickoff runs
            # inside an ``op:<ref>`` scope; every asynchronous
            # continuation inherits the tag through the messages
            # themselves (including across shard boundaries), so the
            # merged per-shard ``operations`` counters give an exact
            # per-op message count — the sharded twin of
            # ``GridVineNetwork.search_for``'s attribution.  The tag
            # matches the traced submission's trace id below.
            transport._op_stack.append(f"op:{ref}")
        try:
            if tracer is None:
                future = getattr(peer, method)(*args)
                future.add_done_callback(
                    lambda f: self._completions.append(
                        (ref, summarize(f.result()))))
                return
            # Traced submission: the op ref comes from the controller's
            # global submit order, so the trace id — and the root
            # span's per-peer sequence — is invariant to how peers are
            # sharded.
            loop = transport.loop
            root = tracer.start_trace(f"op:{ref}", f"op:{method}",
                                      peer=node_id, start=loop.now)
            context = tracer.context_of(root)
            tracer._stack.append(context)
            try:
                future = getattr(peer, method)(*args)
            finally:
                tracer._stack.pop()

            def _done(f: Any) -> None:
                result = f.result()
                status = "ok" if getattr(result, "success", True) \
                    else "failed"
                tracer.finish(root, loop.now, status)
                self._completions.append((ref, summarize(result)))

            future.add_done_callback(_done)
        finally:
            if attribute:
                transport._op_stack.pop()

    def stats(self) -> dict:
        """Final per-shard report (metrics + footprint + spans)."""
        import resource

        report = {
            "shard": self.shard_id,
            "peers": len(self.transport._nodes),
            "metrics": self.transport.metrics.snapshot(),
            # Per-op attribution counters (not part of the generic
            # metrics snapshot): every tag this shard's traffic carried.
            "operations": dict(self.transport.metrics.operations),
            "events_processed": self.transport.loop.events_processed,
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        }
        injector = self.transport.fault_injector
        if injector is not None:
            report["faults_injected"] = dict(injector.injected)
        tracer = self.transport.tracer
        if tracer is not None:
            # Span records are plain dicts, so process-mode workers
            # ship them over the stats pipe unchanged; the controller
            # merges per-shard buffers deterministically.
            report["spans"] = tracer.records
            report["spans_dropped"] = tracer.dropped
        return report


def _shard_worker(shard: Shard, conn: Any) -> None:
    """Process-mode worker loop: mirror of the inline window steps."""
    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "window":
                _, horizon, liveness, toggles, ops, arrivals = command
                shard.begin_window(liveness, toggles, ops, arrivals)
                shard.run_window(horizon)
                conn.send(shard.collect())
            elif op == "stats":
                conn.send(shard.stats())
            elif op == "stop":
                conn.send(shard.stats())
                return
    except (EOFError, KeyboardInterrupt):  # parent went away
        return


@dataclass
class _WindowInput:
    """Per-shard inputs accumulated between barriers."""

    liveness: dict[str, bool] = field(default_factory=dict)
    toggles: list[tuple[float, str, bool]] = field(default_factory=list)
    ops: list[tuple[int, str, str, tuple, Callable | None, bool]] = field(
        default_factory=list)
    arrivals: list[tuple[float, int, int, Message]] = field(
        default_factory=list)

    def take(self) -> tuple[dict, list, list, list]:
        out = (self.liveness, self.toggles, self.ops,
               sorted(self.arrivals, key=lambda a: (a[0], a[1], a[2])))
        self.liveness, self.toggles, self.ops, self.arrivals = {}, [], [], []
        return out

    def empty(self) -> bool:
        return not (self.liveness or self.toggles or self.ops
                    or self.arrivals)


class ShardedTransport:
    """Controller of N shards stepping the conservative window protocol.

    Build the deployment (attach peers with :meth:`add_peer`), then
    drive virtual time with :meth:`run_until` /
    :meth:`run_until_quiescent`; submit operations against peers with
    :meth:`submit` and read their summaries from :attr:`completed`.
    For ``mode="process"``, call :meth:`start` after building and
    :meth:`stop` when done (inline mode needs neither).
    """

    def __init__(
        self,
        num_shards: int,
        latency: LatencyModel | None = None,
        seed: int = 0,
        window: float | None = None,
        mode: str = "inline",
    ) -> None:
        if num_shards <= 0:
            raise SimulationError("num_shards must be positive")
        if mode not in ("inline", "process"):
            raise SimulationError(f"unknown worker mode {mode!r}")
        self.latency = latency if latency is not None else ConstantLatency()
        lookahead = getattr(self.latency, "min_delay", lambda: 0.0)()
        if window is None:
            if lookahead <= 0.0:
                raise SimulationError(
                    "latency model has no positive min_delay(); pass an "
                    "explicit window (cross-shard delays are clamped to it)")
            window = lookahead
        clamp = window if window > lookahead else 0.0
        self.window = window
        self.mode = mode
        self.seed = seed
        self._owner_of: dict[str, int] = {}
        self.shards = [
            Shard(i, ShardTransport(
                i, self._owner_of, self.latency,
                random.Random(f"{seed}/shard-{i}"), clamp_delay=clamp))
            for i in range(num_shards)
        ]
        self._inputs = [_WindowInput() for _ in range(num_shards)]
        #: pending churn toggles, (time, seq, node_id, online), kept
        #: sorted with consumption cursors (cheaper than a heap for
        #: the bulk pre-registered schedules churn produces).  The
        #: event cursor dispatches exact-time toggles to owner shards
        #: up to each window's horizon; the liveness cursor trails it,
        #: publishing remote liveness only up to the window *start* —
        #: senders know the liveness state as of the last barrier,
        #: never the future.
        self._toggles: list[tuple[float, int, str, bool]] = []
        self._toggle_event_cursor = 0
        self._toggle_liveness_cursor = 0
        self._toggles_sorted = True
        self._toggle_seq = itertools.count()
        self._live = [0] * num_shards
        #: per-shard next live event time as of the last barrier
        self._next_live: list[float | None] = [None] * num_shards
        self._now = 0.0
        self._refs = itertools.count()
        #: op ref -> completion summary
        self.completed: dict[int, Any] = {}
        self._conns: list[Any] = []
        self._procs: list[Any] = []
        self._started = False
        self._final_stats: list[dict] | None = None

    # -- deployment ----------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def add_peer(self, peer: Node, shard_id: int) -> None:
        """Attach ``peer`` to a shard and record ownership."""
        if self._started:
            raise SimulationError("cannot add peers after start()")
        if peer.node_id in self._owner_of:
            raise SimulationError(f"duplicate node id {peer.node_id!r}")
        self._owner_of[peer.node_id] = shard_id
        self.shards[shard_id].transport.attach(peer)

    def owner_of(self, node_id: str) -> int:
        return self._owner_of[node_id]

    def install_tracer(self, seed: int | None = None,
                       capacity: int = 200_000) -> None:
        """Install one :class:`~repro.obs.tracer.Tracer` per shard.

        Every shard's tracer shares the same trace seed, so span ids
        depend only on ``(seed, peer, per-peer sequence)`` — identical
        across shard counts and worker modes.  Must run before
        :meth:`start` in process mode (tracers fork with the shards).
        """
        from repro.obs.tracer import Tracer

        if self._started and self.mode == "process":
            raise SimulationError(
                "install_tracer must run before start() in process mode")
        trace_seed = self.seed if seed is None else seed
        for shard in self.shards:
            shard.transport.install_tracer(
                Tracer(seed=trace_seed, capacity=capacity))

    def trace_records(self) -> list[dict]:
        """Merged, deterministically ordered span/event records.

        Inline mode reads the live per-shard tracers; process mode
        reads the buffers shipped back by :meth:`stop` (call it
        first).  The merge order is a pure function of the records, so
        inline and forked runs export byte-identical JSONL.
        """
        from repro.obs.tracer import merge_records

        if self._final_stats is not None:
            buffers = [entry.get("spans", [])
                       for entry in self._final_stats]
        elif self.mode == "process" and self._conns:
            raise SimulationError(
                "process-mode trace records are collected by stop()")
        else:
            buffers = [shard.transport.tracer.records
                       for shard in self.shards
                       if shard.transport.tracer is not None]
        return merge_records(buffers)

    def install_fault_plan(self, plan: Any) -> Any:
        """Install one :class:`~repro.faultlab.injector.FaultInjector`
        per shard, all driven by the same :class:`FaultPlan`.

        Per-clause RNG streams are seeded by ``(plan.seed, clause,
        ordinal)`` on every shard, and each shard consumes its streams
        in its own deterministic event order — so a faulted sharded run
        replays bit-identically from its seed, inline or forked.  Must
        run before :meth:`start` in process mode (injectors fork with
        the shards, and their epoch is the common barrier time 0).

        Semantics across the shard boundary: partitions and drop
        clauses are send-side and apply to *all* traffic (including
        cross-shard envelopes); delay/duplicate/reorder clauses own
        delivery scheduling and therefore apply to intra-shard
        deliveries only (cross-shard envelopes are latency-stamped at
        the sender and exchanged at the barrier).  Crash/restart
        clauses fire on the owning shard exactly; remote shards keep
        sending until the owner drops the deliveries as ``in_flight``
        — the same one-window staleness as barrier-start liveness.

        Returns an :class:`~repro.faultlab.injector.InstalledPlan`
        aggregating the per-shard injectors.
        """
        from repro.faultlab.injector import FaultInjector, InstalledPlan

        if self._started and self.mode == "process":
            raise SimulationError(
                "install_fault_plan must run before start() in "
                "process mode")
        return InstalledPlan([
            FaultInjector(shard.transport, plan).install()
            for shard in self.shards
        ])

    # -- process workers -----------------------------------------------

    def start(self) -> None:
        """Fork one worker per shard (``mode="process"`` only)."""
        if self.mode != "process" or self._started:
            self._started = True
            return
        # Snapshot each shard's clock status at the fork point; every
        # later barrier refreshes it from the workers' reports.
        for shard in self.shards:
            loop = shard.transport.loop
            self._live[shard.shard_id] = loop.live_events
            self._next_live[shard.shard_id] = loop.next_live_event_time()
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        for shard in self.shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_shard_worker,
                               args=(shard, child_conn), daemon=True)
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._started = True

    def stop(self) -> list[dict]:
        """Collect final per-shard stats; join process workers."""
        if self._final_stats is not None:
            return self._final_stats
        if self.mode == "process" and self._conns:
            for conn in self._conns:
                conn.send(("stop",))
            self._final_stats = [conn.recv() for conn in self._conns]
            for conn in self._conns:
                conn.close()
            for proc in self._procs:
                proc.join(timeout=30)
            self._conns, self._procs = [], []
        else:
            self._final_stats = [shard.stats() for shard in self.shards]
        return self._final_stats

    # -- external inputs -----------------------------------------------

    def submit(self, node_id: str, method: str, *args: Any,
               summarize: Callable | None = None,
               attribute: bool = False) -> int:
        """Queue ``peer.<method>(*args)`` for the owner's next window.

        The call is issued at the window boundary (all logical clocks
        agree there); the future's result, reduced by ``summarize``
        (default :func:`summarize_op_result`), lands in
        :attr:`completed` under the returned ref.  In process mode the
        args and the summary must be picklable, and ``summarize`` must
        be a module-level function.

        ``attribute=True`` opens an ``op:<ref>`` attribution scope
        around the submission: every message the operation causes —
        on any shard — is counted under that tag in the merged
        :meth:`metrics_snapshot` ``operations`` dict.  Bulk workloads
        leave it off and pay nothing.
        """
        ref = next(self._refs)
        shard_id = self._owner_of[node_id]
        self._inputs[shard_id].ops.append(
            (ref, node_id, method, args, summarize, attribute))
        return ref

    def set_online_at(self, time: float, node_id: str, online: bool) -> None:
        """Schedule a churn toggle at virtual ``time`` (exact at the
        owner, liveness-map visible to other shards at the first
        barrier at or after it)."""
        if node_id not in self._owner_of:
            raise SimulationError(f"unknown node {node_id!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot toggle in the past ({time} < {self._now})")
        entry = (time, next(self._toggle_seq), node_id, online)
        if self._toggles_sorted and self._toggles and \
                entry < self._toggles[-1]:
            self._toggles_sorted = False
        self._toggles.append(entry)

    # -- the window protocol -------------------------------------------

    def _sort_toggle_tail(self) -> None:
        if not self._toggles_sorted:
            # Late submissions landed out of order; re-sort the tail
            # (guaranteed > everything already dispatched, since
            # past-time toggles are rejected at submission).
            cursor = self._toggle_event_cursor
            self._toggles[cursor:] = sorted(self._toggles[cursor:])
            self._toggles_sorted = True

    def _dispatch_toggles(self, horizon: float) -> None:
        toggles = self._toggles
        total = len(toggles)
        if self._toggle_liveness_cursor >= total:
            return
        self._sort_toggle_tail()
        inputs, owner_of = self._inputs, self._owner_of
        # Remote liveness: publish the state as of the window *start*.
        cursor = self._toggle_liveness_cursor
        while cursor < total and toggles[cursor][0] <= self._now:
            _at, _seq, node_id, online = toggles[cursor]
            cursor += 1
            owner = owner_of[node_id]
            for shard_id, inp in enumerate(inputs):
                if shard_id != owner:
                    inp.liveness[node_id] = online
        self._toggle_liveness_cursor = cursor
        # Exact-time toggle events at the owning shard, up to horizon.
        cursor = self._toggle_event_cursor
        while cursor < total and toggles[cursor][0] <= horizon:
            at, _seq, node_id, online = toggles[cursor]
            cursor += 1
            inputs[owner_of[node_id]].toggles.append((at, node_id, online))
        self._toggle_event_cursor = cursor
        if self._toggle_liveness_cursor >= total and cursor >= total:
            self._toggles.clear()
            self._toggle_event_cursor = 0
            self._toggle_liveness_cursor = 0

    def _step(self, horizon: float) -> None:
        self._dispatch_toggles(horizon)
        if self.mode == "process" and self._started and self._conns:
            for shard_id, conn in enumerate(self._conns):
                liveness, toggles, ops, arrivals = self._inputs[shard_id].take()
                conn.send(("window", horizon, liveness, toggles, ops,
                           arrivals))
            results = [conn.recv() for conn in self._conns]
        else:
            results = []
            for shard in self.shards:
                liveness, toggles, ops, arrivals = \
                    self._inputs[shard.shard_id].take()
                shard.begin_window(liveness, toggles, ops, arrivals)
                shard.run_window(horizon)
                results.append(shard.collect())
        self._now = horizon
        owner_of = self._owner_of
        for src_shard, (outbox, completions, live, next_live) in \
                enumerate(results):
            self._live[src_shard] = live
            self._next_live[src_shard] = next_live
            for ref, summary in completions:
                self.completed[ref] = summary
            for deliver_time, src_seq, message in outbox:
                self._inputs[owner_of[message.dst]].arrivals.append(
                    (deliver_time, src_shard, src_seq, message))

    def _next_horizon(self) -> float:
        """End of the next window, skipping ahead over dead time.

        The default step is ``now + window``.  Two jumps shorten long
        quiet stretches:

        *Event jump* — when every shard's earliest queued event and
        every pending arrival lies beyond the base window, the window
        may end exactly at the earliest such time: events fire no
        earlier than it, so anything they send still arrives strictly
        after it.

        *Quiet jump* — when no shard holds a *live* event and no
        arrivals are pending, nothing in the system can send a message
        at all: only churn toggles remain, and toggles just flip
        ``online`` flags.  The horizon becomes unbounded
        (``inf``) and the caller clamps it to its own target time —
        one window replaces ``O(idle / window)`` barrier spins, with
        every toggle inside it still fired at its exact virtual time
        by the owning shard's loop.

        Pending op submissions pin the horizon to the base window:
        they issue at the window's start and may send immediately.
        """
        base = self._now + self.window
        earliest = float("inf")
        quiet = True
        if self._started and self.mode == "process":
            # Use the workers' barrier reports — byte-identical inputs
            # to what the inline path reads from its local loops.
            status = zip(self._live, self._next_live)
        else:
            status = (
                (loop.live_events, loop.next_live_event_time())
                for loop in
                (shard.transport.loop for shard in self.shards))
        for live, next_time in status:
            if live:
                quiet = False
                if next_time is not None and next_time < earliest:
                    earliest = next_time
        for inp in self._inputs:
            if inp.ops:
                return base
            if inp.arrivals:
                quiet = False
                for deliver_time, _s, _q, _m in inp.arrivals:
                    if deliver_time < earliest:
                        earliest = deliver_time
            if inp.liveness or inp.toggles:
                quiet = False
        if quiet:
            # Pending churn toggles do not constrain the horizon: the
            # owner fires them at their exact times inside whatever
            # window contains them, and nothing that could *send* is
            # pending, so remote liveness staleness is unobservable.
            return float("inf")
        if earliest <= base or earliest == float("inf"):
            return base
        return earliest

    def run_until(self, t_end: float) -> None:
        """Step windows until virtual time reaches ``t_end``."""
        self.start()
        while self._now < t_end:
            self._step(min(t_end, self._next_horizon()))

    def busy(self) -> bool:
        """Whether any live event, arrival, op or toggle is pending."""
        return (any(self._live)
                or any(not inp.empty() for inp in self._inputs)
                or self._toggle_event_cursor < len(self._toggles))

    def run_until_quiescent(self, max_time: float = float("inf"),
                            max_windows: int = 10_000_000) -> None:
        """Step windows until no shard holds live work.

        Pending ops drain fully — worst case their timeout/retry chains
        fire and resolve the futures — so this terminates for any
        protocol that cannot schedule unboundedly far ahead.
        """
        self.start()
        if self.mode != "process":
            # live counters are only refreshed by a step; seed them
            self._live = [shard.transport.loop.live_events
                          for shard in self.shards]
        windows = 0
        while self.busy():
            if self._now >= max_time:
                return
            if windows >= max_windows:
                raise SimulationError(
                    f"run_until_quiescent exceeded {max_windows} windows")
            horizon = min(max_time, self._next_horizon())
            if horizon == float("inf"):
                # Quiet jump with no external bound: only toggles are
                # left, so one window covering them all drains the run.
                # busy() implies the toggle tail is non-empty here (the
                # other busy sources all bound _next_horizon), but an
                # empty tail must not crash an empty-workload run — fall
                # back to one plain window.
                tail = self._toggles[self._toggle_event_cursor:]
                horizon = (max(t for t, _s, _n, _o in tail) if tail
                           else self._now + self.window)
            self._step(horizon)
            windows += 1

    # -- reporting -----------------------------------------------------

    def shard_stats(self) -> list[dict]:
        """Live per-shard stats reports, safe to call mid-run.

        Inline mode reads the shard objects directly.  Process mode
        fetches fresh reports over the workers' ``stats`` pipes — the
        parent-side shard objects stopped advancing at the fork, so
        reading them would silently report the pre-fork zeros.  After
        :meth:`stop`, the final collected reports are returned.
        """
        if self._final_stats is not None:
            return self._final_stats
        if self.mode == "process" and self._started:
            if not self._conns:
                raise SimulationError(
                    "process workers are gone without final stats; "
                    "call stop() to collect them")
            for conn in self._conns:
                conn.send(("stats",))
            return [conn.recv() for conn in self._conns]
        return [shard.stats() for shard in self.shards]

    def metrics_snapshot(self) -> dict:
        """Merged per-shard metrics (live mid-run, final after stop())."""
        merged: dict[str, Any] = {
            "messages_sent": 0, "messages_dropped": 0,
            "events_processed": 0, "drops_by_reason": {},
            "faults_by_kind": {}, "operations": {},
            "per_shard_peak_rss_kb": [],
        }
        for entry in self.shard_stats():
            snap = entry["metrics"]
            merged["messages_sent"] += snap["messages_sent"]
            merged["messages_dropped"] += snap["messages_dropped"]
            merged["events_processed"] += entry["events_processed"]
            for reason, count in snap["drops_by_reason"].items():
                merged["drops_by_reason"][reason] = (
                    merged["drops_by_reason"].get(reason, 0) + count)
            for kind, count in snap["faults_by_kind"].items():
                merged["faults_by_kind"][kind] = (
                    merged["faults_by_kind"].get(kind, 0) + count)
            for op_tag, count in entry.get("operations", {}).items():
                # A cross-shard operation's tag appears on every shard
                # its causal chain touched; the per-op total is the sum.
                merged["operations"][op_tag] = (
                    merged["operations"].get(op_tag, 0) + count)
            merged["per_shard_peak_rss_kb"].append(entry["peak_rss_kb"])
        return merged
