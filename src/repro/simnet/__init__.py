"""Discrete-event network simulator (the paper's *Internet layer*).

The original demonstration ran on several hundred physical machines;
this package substitutes a deterministic discrete-event simulation.
Every peer is a logical :class:`~repro.simnet.network.Node` attached to
a :class:`~repro.simnet.network.SimNetwork`; message deliveries are
events whose delays are drawn from a pluggable latency model.

Design notes
------------
* **Virtual time.**  The clock only advances when events fire; all
  latencies reported by benchmarks are simulated seconds.
* **Determinism.**  All randomness flows from one ``random.Random``
  seed; ties in the event queue break on a monotonically increasing
  sequence number, so runs are exactly reproducible.
* **Futures.**  Multi-hop operations (e.g. a P-Grid ``Retrieve``)
  return a :class:`~repro.simnet.events.Future`; callers use
  ``loop.run_until_complete(future)`` to obtain a synchronous API on
  top of the asynchronous message exchange.
"""

from repro.simnet.events import EventLoop, Future, SimulationError
from repro.simnet.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalWANLatency,
    UniformLatency,
)
from repro.simnet.network import Message, Node, SimNetwork
from repro.simnet.metrics import NetworkMetrics

__all__ = [
    "EventLoop",
    "Future",
    "SimulationError",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalWANLatency",
    "Message",
    "Node",
    "SimNetwork",
    "NetworkMetrics",
]
