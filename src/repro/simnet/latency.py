"""Latency models for the simulated wide-area network.

The paper's §2.3 deployment measured 340 machines "scattered around the
world": 40 % of triple-pattern queries answered within one second and
75 % within five seconds.  Those anchor points imply a heavy-tailed
per-hop latency distribution (median WAN RTTs of tens to a couple of
hundred milliseconds, with a straggler tail from loaded or distant
peers).  :class:`LogNormalWANLatency` models exactly that:

* a per-*pair* base one-way delay, log-normally distributed (geographic
  spread is sticky: the same pair of machines keeps roughly the same
  RTT across messages);
* per-message jitter on top of the base delay;
* a straggler mixture: with probability ``straggler_prob`` a node is
  "slow" (overloaded PlanetLab-style host) and every message it
  receives incurs an additional heavy service delay.

Simpler models (:class:`ConstantLatency`, :class:`UniformLatency`) are
provided for unit tests and hop-count benches where the latency value
itself is irrelevant.
"""

from __future__ import annotations

import math
import random
from typing import Protocol


class LatencyModel(Protocol):
    """Samples a one-way message delay between two nodes, in seconds."""

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        """Delay for one message from ``src`` to ``dst``."""
        ...

    def min_delay(self) -> float:
        """Lower bound on any sampled delay (the *lookahead* bound).

        A conservative parallel simulation may run shards independently
        for a window of this length: no message sent inside the window
        can arrive at another shard before the window closes.  Models
        with no positive lower bound return ``0.0``, in which case the
        sharded transport needs an explicit window (and clamps
        cross-shard delays up to it — a WAN propagation floor).
        """
        ...


class ConstantLatency:
    """Every message takes exactly ``delay`` seconds."""

    def __init__(self, delay: float = 0.05) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return self.delay

    def min_delay(self) -> float:
        return self.delay


class UniformLatency:
    """Delay drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, low: float = 0.02, high: float = 0.2) -> None:
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def min_delay(self) -> float:
        return self.low


class LogNormalWANLatency:
    """Wide-area model: sticky per-pair base delay + jitter + stragglers.

    Parameters
    ----------
    median_ms:
        Median one-way base delay between a random pair of hosts.
    sigma:
        Log-normal shape parameter of the base delay (0.8 gives a
        realistic one-to-two-orders-of-magnitude WAN spread).
    jitter_ms:
        Mean of the exponential per-message jitter.
    straggler_prob:
        Probability that a given *destination* host is persistently
        slow (overloaded shared testbed machine).
    straggler_ms:
        Mean extra exponential service delay at a slow host.
    """

    def __init__(
        self,
        median_ms: float = 60.0,
        sigma: float = 0.8,
        jitter_ms: float = 10.0,
        straggler_prob: float = 0.12,
        straggler_ms: float = 2500.0,
    ) -> None:
        if median_ms <= 0 or jitter_ms < 0 or straggler_ms < 0:
            raise ValueError("latency parameters must be positive")
        if not 0 <= straggler_prob <= 1:
            raise ValueError("straggler_prob must be a probability")
        self.median_ms = median_ms
        self.sigma = sigma
        self.jitter_ms = jitter_ms
        self.straggler_prob = straggler_prob
        self.straggler_ms = straggler_ms
        self._pair_base: dict[tuple[str, str], float] = {}
        self._slow_hosts: dict[str, bool] = {}

    def _base_delay(self, src: str, dst: str, rng: random.Random) -> float:
        """Sticky log-normal base delay for an unordered host pair."""
        pair = (src, dst) if src <= dst else (dst, src)
        base = self._pair_base.get(pair)
        if base is None:
            mu = math.log(self.median_ms / 1000.0)
            base = rng.lognormvariate(mu, self.sigma)
            self._pair_base[pair] = base
        return base

    def _is_slow(self, host: str, rng: random.Random) -> bool:
        slow = self._slow_hosts.get(host)
        if slow is None:
            slow = rng.random() < self.straggler_prob
            self._slow_hosts[host] = slow
        return slow

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        delay = self._base_delay(src, dst, rng)
        if self.jitter_ms:
            delay += rng.expovariate(1000.0 / self.jitter_ms)
        if self._is_slow(dst, rng):
            delay += rng.expovariate(1000.0 / self.straggler_ms)
        return delay

    def min_delay(self) -> float:
        # The log-normal base has no positive lower bound.
        return 0.0
