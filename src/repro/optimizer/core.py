"""The query optimizer: statistics in, execution decisions out.

:class:`QueryOptimizer` lives on every
:class:`~repro.mediation.peer.GridVinePeer` and reads the peer's
synopsis registry (filled by piggybacked gossip, see
:mod:`repro.stats.gossip`) plus the peer's own fresh digest.  It is
consulted on two paths:

* ``strategy="auto"`` queries — :meth:`choose_strategy` picks the
  execution strategy, join mode and scan order, and the resulting
  :class:`PlanDecision` rides on the pipeline context so the plan
  builders (:mod:`repro.exec.plans`) apply it;
* engines running with ``optimize=True`` — reformulation plans are
  pruned by expected yield and per-reformulation scan order is
  cost-based (:mod:`repro.engine`).

Static strategies never consult the optimizer, and with no statistics
propagated yet every method returns its explicit fallback
(``None`` / ``fallback=True``), reproducing the historical
``selectivity_rank`` behaviour bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.optimizer.cost import CostModel
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.stats.estimator import CardinalityEstimator

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.mediation.peer import GridVinePeer
    from repro.reformulation.planner import Reformulation


@dataclass
class PlanDecision:
    """One query's optimizer verdict, recorded on its outcome.

    ``strategy`` is what actually executed (for ``auto`` queries the
    per-query pick); ``estimated_rows`` / ``estimated_messages`` are
    the model's predictions, to be compared against the outcome's
    measured ``result_count`` / ``messages``.
    """

    #: what the caller asked for (``"auto"`` / ``"engine"``)
    requested: str
    #: the strategy the optimizer resolved to
    strategy: str
    #: per-query join-mode override (``None`` = peer default)
    join_mode: str | None = None
    #: True when no statistics had propagated and the static
    #: heuristics ran unchanged
    fallback: bool = False
    #: digests that contributed to the estimates
    known_peers: int = 0
    #: cost-based scan order (pattern strings, most selective first)
    pattern_order: tuple[str, ...] = ()
    #: reformulations dropped for zero expected yield (filled in
    #: during execution)
    reformulations_pruned: int = 0
    estimated_rows: float | None = None
    estimated_messages: float | None = None
    #: one-line human-readable rationale
    reason: str = ""
    #: candidate-strategy cost estimates (message units), for reports
    candidate_costs: dict = field(default_factory=dict)


class QueryOptimizer:
    """Cost-based decisions over one peer's statistics registry."""

    def __init__(self, peer: "GridVinePeer",
                 cost_model: CostModel | None = None) -> None:
        self.peer = peer
        self.cost = cost_model if cost_model is not None else CostModel()
        #: reformulations with ``confidence * estimated_rows`` at or
        #: below this are pruned (0.0 = only provably-empty fan-out)
        self.min_expected_yield = 0.0
        self._estimator = CardinalityEstimator(peer.synopses)

    # ------------------------------------------------------------------
    # Statistics access
    # ------------------------------------------------------------------

    @property
    def estimator(self) -> CardinalityEstimator:
        """The network-wide estimator, own digest folded in fresh."""
        own = self.peer.synopsis_digest()
        self._estimator.extra = [own] if own is not None else []
        return self._estimator

    def has_statistics(self, query: ConjunctiveQuery) -> bool:
        """Whether propagated statistics can inform this query.

        Requires at least one *other* peer's digest (the registry
        never holds the peer's own) and an estimate for at least one
        of the query's patterns — otherwise the static heuristics are
        strictly better informed.
        """
        if len(self.peer.synopses) == 0:
            return False
        estimator = self.estimator
        return any(estimator.pattern_cardinality(p) is not None
                   for p in query.patterns)

    # ------------------------------------------------------------------
    # Join order and mode
    # ------------------------------------------------------------------

    def scan_order(self, query: ConjunctiveQuery
                   ) -> list[TriplePattern] | None:
        """Patterns ordered by estimated cardinality (ascending).

        ``None`` when no statistics have propagated — callers fall
        back to the static ``selectivity_rank`` order.  Patterns the
        statistics cannot estimate sort last (static rank as
        tie-break), so partially covered queries still benefit; under
        full key-space coverage an absent predicate estimates as an
        empty extent and sorts first.
        """
        from repro.exec.operators import selectivity_rank

        if not self.has_statistics(query):
            return None
        estimator = self.estimator
        ranked = []
        for pattern in query.patterns:
            cardinality = estimator.pattern_cardinality(pattern)
            ranked.append((
                cardinality if cardinality is not None else float("inf"),
                selectivity_rank(pattern),
                pattern,
            ))
        ranked.sort(key=lambda item: item[:2])
        return [pattern for _card, _rank, pattern in ranked]

    def join_plan(self, query: ConjunctiveQuery
                  ) -> tuple[list[TriplePattern], str] | None:
        """Cost-based (scan order, join mode) for a conjunctive query.

        Compares the parallel mode (one fetch per pattern, whole
        extents shipped, one round trip) against the bound mode
        (sequential substituting fetches, far less volume, one round
        trip per step) on the cost model.  ``None`` without
        statistics.
        """
        order = self.scan_order(query)
        if order is None:
            return None
        if len(query.patterns) < 2:
            return order, "parallel"
        estimator = self.estimator
        route = self.cost.route_messages(len(self.peer.path))
        cards = [estimator.pattern_cardinality(p) for p in order]
        known = [c for c in cards if c is not None]
        default = max(known) if known else 1.0
        cards = [c if c is not None else default for c in cards]
        parallel_cost = self.cost.combine(
            messages=len(order) * route,
            round_trips=1.0,
            rows_shipped=sum(cards),
        )
        cap = self.peer.bound_join_fanout_cap
        bound_messages = route
        bound_rows = cards[0]
        running = max(1.0, cards[0])
        for cardinality in cards[1:]:
            variants = min(running, float(cap))
            bound_messages += max(1.0, variants) * route
            # A substituted variant returns its share of the extent.
            share = cardinality / max(1.0, running)
            bound_rows += min(cardinality, variants * max(1.0, share))
            running = max(1.0, min(running, cardinality))
        bound_cost = self.cost.combine(
            messages=bound_messages,
            round_trips=float(len(order)),
            rows_shipped=bound_rows,
        )
        mode = ("bound"
                if bound_cost < self.cost.switch_margin * parallel_cost
                else "parallel")
        return order, mode

    # ------------------------------------------------------------------
    # Reformulation pruning
    # ------------------------------------------------------------------

    def expected_yield(self, query: ConjunctiveQuery,
                       confidence: float = 1.0) -> float | None:
        """``confidence × estimated result rows`` of one reformulation.

        ``None`` when the statistics cannot estimate the query at all
        (callers must keep it — pruning on ignorance loses results).
        """
        rows = self.estimator.query_cardinality(query)
        if rows is None:
            return None
        return confidence * rows

    def keep_reformulation(self, query: ConjunctiveQuery,
                           confidence: float = 1.0) -> bool:
        """Prune predicate for live reformulation fan-out."""
        expected = self.expected_yield(query, confidence)
        return expected is None or expected > self.min_expected_yield

    def reformulation_yield(self, reformulation: "Reformulation"
                            ) -> float | None:
        """Expected yield of a planned reformulation (path-weakest
        confidence × estimated target cardinality)."""
        return self.expected_yield(reformulation.query,
                                   reformulation.min_confidence)

    # ------------------------------------------------------------------
    # Strategy choice (strategy="auto")
    # ------------------------------------------------------------------

    def _mapping_reach(self, schemas: set[str], max_hops: int
                       ) -> tuple[int, int, list[str]]:
        """BFS over *known* mapping edges from the query's schemas.

        Returns ``(edges_explored, useful_targets, reached_schemas)``:
        each BFS-tree edge is one reformulation forward (back edges
        into visited schemas are never forwarded by the recursive
        protocol and reproduce known queries on the iterative path, so
        they cost nothing); a target is *useful* when its schema holds
        any data at all (schema-level cardinality — optimistic on
        purpose: the per-predicate check happens at live pruning
        time).  Without full key-space coverage every target counts
        as useful: the data might live on a peer whose digest has not
        gossiped in.
        """
        estimator = self.estimator
        authoritative = estimator.full_coverage()
        reached = set(schemas)
        frontier = sorted(schemas)
        edges = 0
        useful = 0
        for _hop in range(max_hops):
            next_frontier: list[str] = []
            for schema in frontier:
                for target, _confidence in estimator.mapping_edges(schema):
                    if target in reached:
                        continue
                    edges += 1
                    reached.add(target)
                    next_frontier.append(target)
                    if (not authoritative
                            or estimator.schema_cardinality(target) > 0):
                        useful += 1
            if not next_frontier:
                break
            frontier = next_frontier
        return edges, useful, sorted(reached)

    def choose_strategy(self, query: ConjunctiveQuery,
                        max_hops: int) -> PlanDecision:
        """Resolve one ``strategy="auto"`` query.

        ``local`` when no known mapping edge leaves the query's
        schemas (or none leads to data), ``iterative``/``recursive``
        by modelled message cost otherwise; ``iterative`` with
        ``fallback=True`` when no statistics have propagated.
        Skipping reformulation entirely (``local``) additionally
        requires the digests to cover the whole key space — with
        partial coverage a mapping could live on a peer whose digest
        has not arrived, so the choice stays conservative.
        """
        from repro.mapping.unfolding import query_schemas

        if not self.has_statistics(query):
            return PlanDecision(
                requested="auto", strategy="iterative", fallback=True,
                reason="no statistics propagated yet; static iterative",
            )
        estimator = self.estimator
        route = self.cost.route_messages(len(self.peer.path))
        n_patterns = len(query.patterns)
        schemas = query_schemas(query)
        edges, useful, reached = self._mapping_reach(schemas, max_hops)
        local_messages = n_patterns * route
        estimated_rows = estimator.query_cardinality(query)
        order = self.scan_order(query) or list(query.patterns)
        join = self.join_plan(query)
        join_mode = join[1] if join is not None else None
        decision = PlanDecision(
            requested="auto", strategy="local",
            join_mode=join_mode,
            known_peers=estimator.known_peers(),
            pattern_order=tuple(str(p) for p in order),
            estimated_rows=estimated_rows,
        )
        if edges == 0 or useful == 0:
            if estimator.full_coverage():
                decision.estimated_messages = local_messages
                decision.reason = (
                    "no known mapping edges leave the query's schemas"
                    if edges == 0 else
                    "all reachable mapping targets hold no data"
                )
                decision.candidate_costs = {"local": local_messages}
                return decision
            # Partial coverage: an unseen peer could hold the mapping
            # that makes reformulation worthwhile — never skip it on
            # incomplete evidence.
            decision.strategy = "iterative"
            decision.estimated_messages = (
                local_messages + len(schemas) * route)
            decision.reason = ("partial synopsis coverage; "
                               "conservative iterative")
            decision.candidate_costs = {"local": local_messages}
            return decision
        # Iterative (with live pruning): the origin fetches the schema
        # spaces of the original query and of every *useful* target —
        # zero-yield translations are pruned before their schema space
        # or patterns are ever fetched — and executes the original
        # plus each useful reformulation itself, all at full-depth
        # origin routing.
        depth = len(self.peer.path)
        iterative_messages = (
            (1 + useful) * n_patterns * route
            + (len(schemas) + useful) * route
        )
        # Recursive: one handler per explored edge plus the root.
        # Pruning is impossible (intermediate peers decide blindly),
        # so dead edges cost like live ones — but each handler enjoys
        # key locality (see CostModel) and replies directly.
        recursive_messages = (
            (1 + edges)
            * self.cost.recursive_handler_messages(n_patterns, depth)
        )
        decision.candidate_costs = {
            "local": local_messages,
            "iterative": iterative_messages,
            "recursive": recursive_messages,
        }
        if recursive_messages < iterative_messages:
            decision.strategy = "recursive"
            decision.estimated_messages = recursive_messages
            decision.reason = (
                f"{useful} useful reformulation(s) over {edges} "
                "edge(s); delegation exploits schema-key locality")
        else:
            decision.strategy = "iterative"
            decision.estimated_messages = iterative_messages
            decision.reason = (
                f"{useful} useful of {edges} edge(s); origin-side "
                "reformulation prunes the dead fan-out")
        return decision
