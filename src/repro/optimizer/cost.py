"""The optimizer's cost model: messages, round trips, shipped rows.

The simulated overlay gives every cost component a concrete unit:

* a routed operation costs roughly ``depth/2`` greedy forwarding hops
  (each one message) plus the direct reply — :meth:`CostModel.
  route_messages`;
* sequential protocol steps (bound-join rounds, BFS waves) each pay a
  full round-trip latency, which the model weighs against messages
  via ``latency_weight``;
* shipped rows model the ``values_shipped`` metric (parallel joins
  fetch whole extents; bound joins substitute first and ship less),
  weighed via ``volume_weight``.

The weights are deliberately coarse — the optimizer only needs cost
*ordering* to be right, and every estimate it ranks is itself
approximate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Relative weights of the cost components.

    The recursive-strategy constants encode a measured property of the
    deployment: the overlay hashes keys order-preservingly, so a
    predicate key ``Hash("S#attr")`` is prefix-close to its schema key
    ``Hash("S")`` — a schema peer executing a delegated reformulation
    resolves its patterns (nearly) locally, while the iterative origin
    pays full-depth routing for every schema-space *and* pattern
    fetch.
    """

    #: cost of one network message
    message_weight: float = 1.0
    #: cost of one sequential round trip (latency paid in full) — used
    #: by the join-mode choice, where bound joins trade round trips
    #: for shipped volume
    latency_weight: float = 3.0
    #: cost of one result row on the wire
    volume_weight: float = 0.02
    #: factor a challenger plan must undercut the default by before
    #: the optimizer switches join modes (estimates are noisy;
    #: switching on a coin flip would thrash)
    switch_margin: float = 0.8
    #: messages per recursive forward between schema peers (schema
    #: keys cluster under the order-preserving hash: short hops)
    refo_forward_cost: float = 1.0
    #: fraction of a full routed fetch a schema peer pays to execute a
    #: received reformulation (predicate keys are prefix-close to the
    #: executing schema peer's own key space)
    refo_exec_locality: float = 0.25
    #: fixed per-handler messages of the recursive protocol (one
    #: report reply + one direct results message)
    refo_handler_overhead: float = 2.0

    def route_messages(self, depth: int) -> float:
        """Expected messages of one origin-routed overlay operation.

        Greedy prefix routing resolves half the trie depth on average,
        plus one delivery at the responsible peer and one direct
        reply.
        """
        return max(1.0, depth / 2.0) + 2.0

    def recursive_handler_messages(self, patterns: int,
                                   depth: int) -> float:
        """Messages one recursive-protocol handler costs."""
        return (self.refo_forward_cost
                + patterns * self.route_messages(depth)
                * self.refo_exec_locality
                + self.refo_handler_overhead)

    def combine(self, messages: float, round_trips: float,
                rows_shipped: float) -> float:
        """Total cost of one candidate plan."""
        return (self.message_weight * messages
                + self.latency_weight * round_trips
                + self.volume_weight * rows_shipped)
