"""Cost-based adaptive query optimization.

The optimizer turns the statistics of :mod:`repro.stats` into
execution decisions:

* **join order** — pattern scans and :class:`~repro.exec.operators.
  BoundJoin` steps run most-selective-first by *estimated cardinality*
  instead of the static constant-shape heuristic;
* **join mode** — parallel vs bound conjunctive joins picked per query
  from a message+latency+volume cost model;
* **reformulation pruning** — mapping-path fan-out whose expected
  yield (mapping confidence × target cardinality) is zero is never
  fetched;
* **strategy choice** — ``strategy="auto"`` selects ``local``,
  ``iterative`` or ``recursive`` per query.

Every decision is recorded on the
:class:`~repro.mediation.query.QueryOutcome` as a
:class:`~repro.optimizer.core.PlanDecision` (estimated vs. actual rows
and messages included), and everything degrades gracefully: with no
statistics propagated yet, the optimizer reports ``fallback=True`` and
execution is bit-identical to the static paths.
"""

from repro.optimizer.core import PlanDecision, QueryOptimizer
from repro.optimizer.cost import CostModel

__all__ = ["CostModel", "PlanDecision", "QueryOptimizer"]
