"""Network-wide cardinality estimation over a synopsis registry.

Each triple is published under three keys and replicated, so a naive
sum over per-peer counts would overcount by the index fan-out times
the replication factor.  The estimator instead aggregates with
**max**: the peer responsible for ``Hash(predicate)`` stores *every*
triple of that predicate under the predicate key, so the per-peer
maximum is a tight estimate of the predicate's true extent (off only
by the few same-predicate triples that land on the owner through
subject/object keys).  The same argument covers distinct counts and
the top-k object sketch.

Absence of evidence is handled explicitly: digests carry the
digesting peer's trie path, and only when the known paths **cover the
whole key space** (every key has a known responsible peer) does a
predicate missing from every digest count as evidence of emptiness
(``0.0``).  With partial coverage the missing digest might simply not
have gossiped in yet, so the estimate is ``None`` — and callers must
treat ``None`` as "no statistics" and fall back to static heuristics
rather than prune results away on ignorance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rdf.patterns import TriplePattern
from repro.rdf.terms import Literal, is_ground
from repro.rdf.triples import Position
from repro.stats.synopsis import PeerSynopsis, SynopsisRegistry, predicate_of

#: how many sketch values survive cross-peer aggregation
_AGGREGATE_TOP_K = 8

#: selectivity assumed for a ``%needle%`` literal against the
#: residual (non-sketched) extent of a predicate
_LIKE_RESIDUAL_SELECTIVITY = 0.5


def _paths_cover_key_space(paths: set[str]) -> bool:
    """Whether a set of trie prefixes covers every possible key.

    A peer with path ``p`` is responsible for all keys extending
    ``p``, so the space is covered when every binary string has some
    known path as a prefix.

    >>> _paths_cover_key_space({"0", "10", "11"})
    True
    >>> _paths_cover_key_space({"0", "10"})
    False
    """
    if not paths:
        return False

    def covered(bits: str) -> bool:
        if any(bits.startswith(p) for p in paths):
            return True  # a known peer owns this whole subtree
        if not any(p.startswith(bits) for p in paths):
            return False  # no known peer anywhere below
        return covered(bits + "0") and covered(bits + "1")

    return covered("")


@dataclass
class PredicateEstimate:
    """Aggregated view of one predicate across all known peers."""

    predicate: str
    triples: int = 0
    distinct_subjects: int = 0
    distinct_objects: int = 0
    #: object value -> max observed multiplicity
    top_objects: dict[str, int] = field(default_factory=dict)

    @property
    def top_mass(self) -> int:
        return sum(self.top_objects.values())


class CardinalityEstimator:
    """Pattern/query cardinality estimates from known peer digests.

    ``extra`` digests (typically the estimating peer's own fresh
    synopsis) are folded in without mutating the shared registry.
    The aggregate is cached and rebuilt only when the registry
    changed.
    """

    def __init__(self, registry: SynopsisRegistry,
                 extra: list[PeerSynopsis] | None = None) -> None:
        self.registry = registry
        self.extra = extra or []
        self._cache_key: tuple | None = None
        self._predicates: dict[str, PredicateEstimate] = {}
        #: (source, target) -> max confidence over active known edges
        self._edges: dict[tuple[str, str], float] = {}
        self._full_coverage = False

    # -- aggregation ---------------------------------------------------

    def _refresh(self) -> None:
        key = (self.registry.updates,
               tuple((d.peer_id, d.version) for d in self.extra))
        if key == self._cache_key:
            return
        self._cache_key = key
        predicates: dict[str, PredicateEstimate] = {}
        edges: dict[tuple[str, str], float] = {}
        for synopsis in self.registry.digests() + self.extra:
            for digest in synopsis.predicates:
                agg = predicates.get(digest.predicate)
                if agg is None:
                    agg = PredicateEstimate(digest.predicate)
                    predicates[digest.predicate] = agg
                agg.triples = max(agg.triples, digest.triples)
                agg.distinct_subjects = max(agg.distinct_subjects,
                                            digest.distinct_subjects)
                agg.distinct_objects = max(agg.distinct_objects,
                                           digest.distinct_objects)
                for value, count in digest.top_objects:
                    agg.top_objects[value] = max(
                        agg.top_objects.get(value, 0), count)
            for edge in synopsis.mappings:
                pair = (edge.source, edge.target)
                edges[pair] = max(edges.get(pair, 0.0), edge.confidence)
        for agg in predicates.values():
            ranked = sorted(agg.top_objects.items(),
                            key=lambda item: (-item[1], item[0]))
            agg.top_objects = dict(ranked[:_AGGREGATE_TOP_K])
        self._predicates = predicates
        self._edges = edges
        paths = {s.path for s in self.registry.digests() + self.extra
                 if s.path}
        self._full_coverage = _paths_cover_key_space(paths)

    # -- introspection -------------------------------------------------

    def full_coverage(self) -> bool:
        """Whether the known digests' paths cover the whole key space.

        Only then is "no digest mentions predicate X" evidence that X
        is empty — the responsible peer is among the digests and did
        not report it.  With partial coverage, absence may just be
        gossip that has not arrived, and estimates stay ``None``.
        """
        self._refresh()
        return self._full_coverage

    def known_peers(self) -> int:
        """Digests contributing to the aggregate."""
        ids = set(self.registry.peer_ids())
        ids.update(s.peer_id for s in self.extra)
        return len(ids)

    def predicate_estimate(self, predicate: str) -> PredicateEstimate | None:
        """Aggregated stats of one predicate (``None`` if unknown)."""
        self._refresh()
        return self._predicates.get(predicate)

    def predicates(self) -> list[PredicateEstimate]:
        """All aggregated predicate estimates, sorted by name."""
        self._refresh()
        return [self._predicates[p] for p in sorted(self._predicates)]

    def schema_cardinality(self, schema: str) -> float:
        """Estimated triples stored under any of a schema's predicates."""
        self._refresh()
        prefix = f"{schema}#"
        return float(sum(
            est.triples for name, est in self._predicates.items()
            if name.startswith(prefix)
        ))

    def mapping_edges(self, source: str) -> list[tuple[str, float]]:
        """Known active mapping edges out of ``source`` (target, conf)."""
        self._refresh()
        return sorted(
            (target, confidence)
            for (src, target), confidence in self._edges.items()
            if src == source
        )

    def has_mapping_knowledge(self) -> bool:
        """Whether any mapping edge is known anywhere."""
        self._refresh()
        return bool(self._edges)

    def known_edge_count(self) -> int:
        """Distinct active mapping edges known across all digests."""
        self._refresh()
        return len(self._edges)

    # -- pattern / query estimates -------------------------------------

    def pattern_cardinality(self, pattern: TriplePattern) -> float | None:
        """Estimated matching-triple count of one pattern.

        ``None`` means the statistics cannot say (predicate unknown
        and coverage incomplete — callers fall back to static
        heuristics); ``0.0`` means they positively suggest an empty
        extent, which requires :meth:`full_coverage`.
        """
        self._refresh()
        predicate = predicate_of(pattern.predicate)
        if predicate is None:
            # Variable predicate: the whole known corpus bounds it.
            total = sum(e.triples for e in self._predicates.values())
            return float(total) if self._predicates else None
        est = self._predicates.get(predicate)
        if est is None:
            return 0.0 if self._full_coverage else None
        cardinality = float(est.triples)
        subject = pattern.at(Position.SUBJECT)
        if is_ground(subject):
            cardinality /= max(1, est.distinct_subjects)
        obj = pattern.at(Position.OBJECT)
        if is_ground(obj):
            cardinality = min(cardinality,
                              self._object_estimate(est, obj))
        return cardinality

    def _object_estimate(self, est: PredicateEstimate, obj) -> float:
        """Matching triples for one constant/LIKE object constraint."""
        residual = max(0, est.triples - est.top_mass)
        residual_values = max(
            0, est.distinct_objects - len(est.top_objects))
        if isinstance(obj, Literal) and obj.is_like_pattern:
            needle = obj.value.strip("%")
            sketched = sum(count for value, count in est.top_objects.items()
                           if needle in value)
            return sketched + residual * _LIKE_RESIDUAL_SELECTIVITY
        if isinstance(obj, Literal) and obj.is_prefix_pattern:
            needle = obj.prefix_needle
            sketched = sum(count for value, count in est.top_objects.items()
                           if value.startswith(needle))
            return sketched + residual * _LIKE_RESIDUAL_SELECTIVITY
        value = obj.value
        if value in est.top_objects:
            return float(est.top_objects[value])
        if residual_values == 0:
            # Every distinct value is sketched and this one is absent.
            return 0.0
        return residual / residual_values

    def query_cardinality(self, query) -> float | None:
        """Estimated result rows of a conjunctive query.

        The join of all patterns cannot produce more rows than its
        most selective member feeds in (equi-joins on shared
        variables), so the minimum pattern estimate is the bound used.
        ``None`` when no pattern is estimable.
        """
        estimates = [self.pattern_cardinality(p) for p in query.patterns]
        known = [e for e in estimates if e is not None]
        if not known:
            return None
        return min(known)
