"""Distributed per-peer data statistics (synopses).

Every peer summarizes its local triple database into a compact
:class:`~repro.stats.synopsis.PeerSynopsis` — per-predicate triple
counts, distinct subject/object counts, a small top-k object-value
sketch, plus the active mapping edges it stores.  Digests are
versioned and merged with last-writer-wins-per-peer semantics
(commutative, idempotent, associative), so they can be disseminated by
*piggybacking* on traffic the overlay sends anyway (maintenance probes
and replica anti-entropy pushes — zero extra messages) and, under
churn, by an explicit anti-entropy pull.

The consumer is :mod:`repro.optimizer`: the registry of known digests
feeds a network-wide cardinality estimator that orders joins, prunes
reformulation fan-out and picks query strategies.
"""

from repro.stats.estimator import CardinalityEstimator
from repro.stats.gossip import StatsAntiEntropy
from repro.stats.synopsis import (
    MappingEdge,
    PeerSynopsis,
    PredicateDigest,
    StoreSynopsis,
    SynopsisRegistry,
)

__all__ = [
    "CardinalityEstimator",
    "MappingEdge",
    "PeerSynopsis",
    "PredicateDigest",
    "StatsAntiEntropy",
    "StoreSynopsis",
    "SynopsisRegistry",
]
