"""Per-peer data synopses and their merge semantics.

Two layers:

* :class:`StoreSynopsis` — the *builder* a
  :class:`~repro.storage.triplestore.TripleStore` maintains
  incrementally on every insert/delete.  It keeps exact per-predicate
  value multisets (cheap at simulation scale) so deletions are the
  precise inverse of insertions, and a monotone version counter.
* :class:`PeerSynopsis` — the frozen, compact *digest* a peer
  disseminates: per-predicate counts, distinct-value counts, a top-k
  object-value sketch, and the active mapping edges stored at the
  peer.

Digests are merged per peer with a last-writer-wins rule keyed on the
version counter (ties broken by total field order), which makes
:meth:`SynopsisRegistry.register` **commutative, idempotent and
associative** — any gossip schedule converges to the same registry.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.rdf.terms import URI
from repro.rdf.triples import Triple

#: top-k size of the object-value sketch in disseminated digests
DEFAULT_TOP_K = 4


@dataclass(frozen=True, order=True)
class PredicateDigest:
    """Summary of one predicate's extent at one peer.

    ``top_objects`` is the frequency sketch: the ``k`` most common
    object values with their multiplicities, sorted by descending
    count (value string as tie-break).
    """

    predicate: str
    triples: int
    distinct_subjects: int
    distinct_objects: int
    top_objects: tuple[tuple[str, int], ...] = ()

    @property
    def top_mass(self) -> int:
        """Triples covered by the sketch's values."""
        return sum(count for _value, count in self.top_objects)


@dataclass(frozen=True, order=True)
class MappingEdge:
    """One active schema-mapping edge stored at the digesting peer."""

    source: str
    target: str
    confidence: float


@dataclass(frozen=True, order=True)
class PeerSynopsis:
    """The versioned, frozen digest one peer disseminates.

    ``version`` increases monotonically with every local mutation
    (triple insert/delete, mapping record change), so a receiver can
    replace a stale digest for the same peer without coordination.

    ``path`` is the digesting peer's trie prefix ``pi(p)``.  It lets
    an estimator decide whether the digests it knows *cover the whole
    key space*: only then is a predicate's absence from every digest
    evidence of emptiness rather than of gossip that has not arrived
    yet.  The empty string means "path unknown" (never authoritative).
    """

    peer_id: str
    version: int
    triples: int
    predicates: tuple[PredicateDigest, ...] = ()
    mappings: tuple[MappingEdge, ...] = ()
    path: str = ""

    def predicate(self, name: str) -> PredicateDigest | None:
        """Look up one predicate's digest entry."""
        for digest in self.predicates:
            if digest.predicate == name:
                return digest
        return None


class _PredicateAccumulator:
    """Exact per-predicate counters (builder side)."""

    __slots__ = ("triples", "subjects", "objects")

    def __init__(self) -> None:
        self.triples = 0
        #: value string -> multiplicity
        self.subjects: dict[str, int] = {}
        self.objects: dict[str, int] = {}

    def add(self, subject: str, obj: str) -> None:
        self.triples += 1
        self.subjects[subject] = self.subjects.get(subject, 0) + 1
        self.objects[obj] = self.objects.get(obj, 0) + 1

    def remove(self, subject: str, obj: str) -> None:
        self.triples -= 1
        for counter, value in ((self.subjects, subject),
                               (self.objects, obj)):
            left = counter.get(value, 0) - 1
            if left > 0:
                counter[value] = left
            else:
                counter.pop(value, None)

    def digest(self, predicate: str, top_k: int) -> PredicateDigest:
        ranked = sorted(self.objects.items(),
                        key=lambda item: (-item[1], item[0]))
        return PredicateDigest(
            predicate=predicate,
            triples=self.triples,
            distinct_subjects=len(self.subjects),
            distinct_objects=len(self.objects),
            top_objects=tuple(ranked[:top_k]),
        )


class StoreSynopsis:
    """Incrementally maintained statistics of one triple store.

    :meth:`add` and :meth:`remove` are exact inverses: removing a
    previously added triple restores the prior digest bit for bit
    (the version counter still advances — versions record mutation
    *history*, not state).

    >>> from repro.rdf.terms import URI, Literal
    >>> s = StoreSynopsis()
    >>> s.add(Triple(URI("a"), URI("S#p"), Literal("x")))
    >>> s.digest(peer_id="n0").predicate("S#p").triples
    1
    """

    def __init__(self) -> None:
        #: bumped on every mutation; feeds the digest version
        self.version = 0
        self._by_predicate: dict[str, _PredicateAccumulator] = {}
        self._triples = 0

    # -- mutation ------------------------------------------------------

    def add(self, triple: Triple) -> None:
        """Account for one inserted triple."""
        self.version += 1
        self._triples += 1
        predicate = triple.predicate.value
        acc = self._by_predicate.get(predicate)
        if acc is None:
            acc = _PredicateAccumulator()
            self._by_predicate[predicate] = acc
        # Inlined ``acc.add(...)``: this runs once per stored triple
        # per replica on every deployment build.
        acc.triples += 1
        subject = triple.subject.value
        subjects = acc.subjects
        subjects[subject] = subjects.get(subject, 0) + 1
        obj = triple.object.value
        objects = acc.objects
        objects[obj] = objects.get(obj, 0) + 1

    def remove(self, triple: Triple) -> None:
        """Account for one deleted triple (inverse of :meth:`add`)."""
        self.version += 1
        self._triples -= 1
        predicate = triple.predicate.value
        acc = self._by_predicate.get(predicate)
        if acc is None:
            return
        acc.remove(triple.subject.value, triple.object.value)
        if acc.triples <= 0:
            del self._by_predicate[predicate]

    def clear(self) -> None:
        """Forget everything (store was cleared)."""
        self.version += 1
        self._triples = 0
        self._by_predicate.clear()

    # -- digesting -----------------------------------------------------

    def count(self) -> int:
        """Number of accounted triples."""
        return self._triples

    def digest(self, peer_id: str, version: int | None = None,
               mappings: Iterable[MappingEdge] = (),
               top_k: int = DEFAULT_TOP_K,
               path: str = "") -> PeerSynopsis:
        """Freeze the current state into a disseminable digest.

        ``version`` defaults to the builder's own counter; peers that
        fold additional state into the digest (mapping edges, their
        trie ``path``) pass a combined monotone version instead.
        """
        return PeerSynopsis(
            peer_id=peer_id,
            version=self.version if version is None else version,
            triples=self._triples,
            predicates=tuple(
                acc.digest(predicate, top_k)
                for predicate, acc in sorted(self._by_predicate.items())
            ),
            mappings=tuple(sorted(mappings)),
            path=path,
        )


def mapping_edges(mappings: Iterable) -> list[MappingEdge]:
    """Digest entries for the *active* mappings of a peer's registry."""
    return [
        MappingEdge(m.source_schema, m.target_schema, m.confidence)
        for m in mappings
        if m.active
    ]


def predicate_of(term) -> str | None:
    """The digest key of a pattern's predicate (``None`` if variable)."""
    return term.value if isinstance(term, URI) else None


class SynopsisRegistry:
    """What one peer knows about everyone's synopses.

    A state-based CRDT: per peer the digest with the highest
    ``(version, payload)`` order wins, so merging is commutative,
    idempotent and associative regardless of gossip schedule.
    """

    def __init__(self) -> None:
        self._by_peer: dict[str, PeerSynopsis] = {}
        #: bumped whenever a digest is accepted (estimator cache key)
        self.updates = 0

    def __len__(self) -> int:
        return len(self._by_peer)

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._by_peer

    def get(self, peer_id: str) -> PeerSynopsis | None:
        """The newest known digest of ``peer_id``, if any."""
        return self._by_peer.get(peer_id)

    def peer_ids(self) -> list[str]:
        """Known peers, sorted."""
        return sorted(self._by_peer)

    def digests(self) -> list[PeerSynopsis]:
        """All known digests in sorted peer order."""
        return [self._by_peer[p] for p in sorted(self._by_peer)]

    def register(self, digest: PeerSynopsis) -> bool:
        """Merge one digest; returns True if it replaced older state.

        >>> r = SynopsisRegistry()
        >>> r.register(PeerSynopsis("n0", version=1, triples=3))
        True
        >>> r.register(PeerSynopsis("n0", version=1, triples=3))
        False
        """
        current = self._by_peer.get(digest.peer_id)
        if current is not None:
            # Total order on (version, payload): deterministic winner
            # for any merge order, idempotent on equal digests.  The
            # version compare decides almost every gossip re-merge in
            # O(1); only a genuine version tie between distinct digest
            # objects pays for the payload comparison.
            if current.version > digest.version:
                return False
            if current.version == digest.version and (
                    current is digest or current >= digest):
                return False
        self._by_peer[digest.peer_id] = digest
        self.updates += 1
        return True

    def merge(self, digests: Iterable[PeerSynopsis]) -> int:
        """Merge many digests; returns how many were accepted."""
        return sum(1 for d in digests if self.register(d))
