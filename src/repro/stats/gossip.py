"""Synopsis dissemination: piggybacking helpers and anti-entropy pull.

The primary dissemination channel costs **zero extra messages**:
maintenance traffic the overlay exchanges anyway (reference probes,
probe acks, replica sync pushes — see
:mod:`repro.pgrid.maintenance`) carries a bounded batch of synopsis
digests in its payload.  Each peer forwards its own fresh digest plus
a deterministic round-robin slice of the digests it has collected, so
knowledge spreads epidemically across maintenance rounds.

Under churn the piggyback channel alone converges slowly (offline
peers neither probe nor get probed), so resilience scenarios add an
explicit **anti-entropy pull**: the querying origin periodically asks
random online peers for their digest batches.  Pulls do cost messages
(one ``stats_pull`` + one ``stats_push`` each) and are therefore
opt-in, scheduled by :class:`StatsAntiEntropy`.
"""

from __future__ import annotations

import random

#: digests piggybacked per maintenance message
PIGGYBACK_BUDGET = 8

#: digests returned per anti-entropy pull
PULL_BUDGET = 24


class StatsAntiEntropy:
    """Periodic synopsis pulls from one origin peer.

    Parameters
    ----------
    peers:
        All peers of the deployment (targets are drawn from here).
    origin:
        Node id that issues the pulls (typically the query origin).
    interval:
        Mean virtual seconds between pull rounds.
    fanout:
        Peers asked per round.
    rng:
        Randomness for target choice and jitter.
    """

    def __init__(self, peers: dict, origin: str,
                 interval: float = 30.0, fanout: int = 2,
                 rng: random.Random | None = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.peers = peers
        self.origin = origin
        self.interval = interval
        self.fanout = fanout
        self.rng = rng if rng is not None else random.Random(0)
        self._running = False
        #: pull messages sent (for reporting)
        self.pulls_sent = 0
        #: pull rounds issued (suffixes the per-round trace ids)
        self._rounds = 0

    def start(self) -> None:
        """Schedule the first pull round (with jitter)."""
        peer = self.peers.get(self.origin)
        if peer is None or peer.network is None:
            return
        self._running = True
        peer.loop.schedule(self.rng.uniform(0, self.interval), self._tick)

    def stop(self) -> None:
        """Stop scheduling new rounds (in-flight replies still merge)."""
        self._running = False

    def sweep(self) -> int:
        """One full anti-entropy round: pull from *every* online peer.

        The periodic ticks sample ``fanout`` random peers, which is
        cheap but converges slowly after a partition heals — digests
        authored on the far side may sit behind many hops of
        round-robin gossip.  A sweep asks everyone directly; since
        each pull reply leads with the answering peer's own fresh
        digest, one sweep (plus delivery) makes the origin's registry
        hold the newest digest of every reachable peer — the state
        the fault lab's synopsis-convergence invariant is defined
        over.  Returns the number of pulls sent.
        """
        peer = self.peers.get(self.origin)
        if peer is None or peer.network is None or not peer.online:
            return 0
        sent = 0
        root = self._begin_round(peer, "antientropy:sweep")
        try:
            for target in sorted(self.peers):
                if target == self.origin:
                    continue
                if not peer.network.is_online(target):
                    continue
                self.pulls_sent += 1
                sent += 1
                peer.send(target, "stats_pull", {"budget": PULL_BUDGET})
        finally:
            self._end_round(peer, root, sent)
        return sent

    def _tick(self) -> None:
        if not self._running:
            return
        peer = self.peers.get(self.origin)
        if peer is None or peer.network is None:
            return
        if peer.online:
            candidates = [
                node_id for node_id in sorted(self.peers)
                if node_id != self.origin
                and peer.network.is_online(node_id)
            ]
            self.rng.shuffle(candidates)
            root = self._begin_round(peer, "antientropy:pull")
            sent = 0
            try:
                for target in candidates[:self.fanout]:
                    self.pulls_sent += 1
                    sent += 1
                    peer.send(target, "stats_pull",
                              {"budget": PULL_BUDGET})
            finally:
                self._end_round(peer, root, sent)
        peer.loop.schedule(self.rng.uniform(0.5, 1.5) * self.interval,
                           self._tick)

    # -- tracing (no-ops with no tracer installed) ---------------------

    def _begin_round(self, peer, name: str):
        """Open a per-round root trace when the transport is traced.

        Anti-entropy runs outside any query, so each round gets its
        own trace — the pull messages (and the pushes they trigger)
        parent under it instead of polluting query traces.
        """
        tracer = peer.network.tracer
        if tracer is None:
            return None
        self._rounds += 1
        root = tracer.start_trace(
            f"{name}:{self.origin}:{self._rounds}", name,
            peer=self.origin, start=peer.loop.now, kind="antientropy")
        tracer._stack.append(tracer.context_of(root))
        return root

    def _end_round(self, peer, root, sent: int) -> None:
        if root is None:
            return
        tracer = peer.network.tracer
        tracer._stack.pop()
        tracer.finish(root, peer.loop.now, pulls=sent)
