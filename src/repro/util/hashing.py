"""Hash functions mapping mediation-layer values to overlay keys.

The paper indexes every triple three times, "generating separate keys
based on their subject, predicate and object values.  The binary keys
are generated using an order-preserving hash function Hash() on the
data" (§2.2).  Order preservation matters because P-Grid is a binary
*search* trie: lexicographically close values land in nearby leaves,
which enables prefix/range searches and makes load balancing a trie-
shaping concern rather than a hashing concern.

Two functions are provided:

:func:`order_preserving_hash`
    Maps a string to a fixed-width binary :class:`~repro.util.keys.Key`
    such that ``a <= b`` (as strings) implies ``Hash(a) <= Hash(b)``.

:func:`uniform_hash`
    A deterministic uniform hash (SHA-256 based) used where order does
    not matter, e.g. to mint globally unique identifiers.
"""

from __future__ import annotations

import hashlib

from repro.util.keys import Key, MemoCache

#: Default number of bits in a data key.  Each printable-ASCII
#: character consumes ~6.6 bits of an order-preserving key, so two
#: strings sharing an n-character prefix collide in their first
#: ~6.6*n key bits; 128 bits resolve ~19 characters, enough to
#: distinguish accession-style identifiers ("SwissProt:P10001") that
#: share long namespace prefixes.
DEFAULT_KEY_BITS = 128

#: Alphabet used for the positional interpretation of characters.  Any
#: character outside the alphabet is clamped to the nearest edge, which
#: keeps the mapping monotone.
_ALPHABET_LO = 0x20  # space
_ALPHABET_HI = 0x7E  # tilde
_ALPHABET_SIZE = _ALPHABET_HI - _ALPHABET_LO + 1

#: memo for :func:`order_preserving_hash` — (value, bits) -> Key.
#: Triple indexing hashes every subject/predicate/object string three
#: ways and queries re-hash the same vocabulary terms constantly; at
#: 10k-peer scale this is one of the hottest pure functions in the
#: system (named in ROADMAP's hot-path list).
HASH_CACHE = MemoCache(maxsize=1 << 16)

#: memo for :func:`prefix_interval` — (prefix, bits) -> (low, high)
PREFIX_INTERVAL_CACHE = MemoCache(maxsize=1 << 14)


def hash_cache_stats() -> dict[str, dict[str, int]]:
    """Counter snapshots for the hashing memo caches."""
    return {"order_preserving_hash": HASH_CACHE.stats(),
            "prefix_interval": PREFIX_INTERVAL_CACHE.stats()}


def clear_hash_caches() -> None:
    """Empty both memo caches (isolation hook for tests/benchmarks)."""
    HASH_CACHE.clear()
    PREFIX_INTERVAL_CACHE.clear()


def _char_fraction(ch: str) -> float:
    """Map a character to ``[0, 1)`` monotonically in its code point."""
    code = ord(ch)
    if code < _ALPHABET_LO:
        code = _ALPHABET_LO
    elif code > _ALPHABET_HI:
        code = _ALPHABET_HI
    return (code - _ALPHABET_LO) / _ALPHABET_SIZE


def order_preserving_hash(value: str, bits: int = DEFAULT_KEY_BITS) -> Key:
    """Hash a string to a ``bits``-wide key, preserving string order.

    The string is read as a base-``|alphabet|`` fraction in ``[0, 1)``
    (the standard order-preserving embedding) and the leading ``bits``
    binary digits of that fraction form the key.  Consequently::

        a <= b  (str order, over the printable-ASCII alphabet)
            implies
        order_preserving_hash(a) <= order_preserving_hash(b)

    Results are memoized (:data:`HASH_CACHE`): the mediation layer
    hashes the same subject / predicate / object strings for every
    triple key, every query pattern and every covering-prefix lookup,
    so the hot path is overwhelmingly repeat values.  :class:`Key` is
    immutable, so returning the shared cached instance is safe.

    >>> a = order_preserving_hash("EMBL#Organism")
    >>> b = order_preserving_hash("EMP#SystematicName")
    >>> (a <= b) == ("EMBL#Organism" <= "EMP#SystematicName")
    True
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    cache_key = (value, bits)
    cached = HASH_CACHE.get(cache_key)
    if cached is not None:
        return cached
    # Interpret the string as a fraction in [0, 1) with one "digit"
    # per character.  Work in exact integer arithmetic to avoid float
    # rounding breaking monotonicity for long common prefixes: compute
    # floor(fraction * 2**bits) digit by digit.
    numerator = 0
    denominator = 1
    for ch in value[: (bits // 4) + 16]:  # more chars than bits can resolve
        code = min(max(ord(ch), _ALPHABET_LO), _ALPHABET_HI) - _ALPHABET_LO
        numerator = numerator * _ALPHABET_SIZE + code
        denominator *= _ALPHABET_SIZE
        if denominator >= (1 << (bits + 8)):
            break
    scaled = (numerator << bits) // denominator if denominator else 0
    if scaled >= (1 << bits):  # defensive; cannot happen for code < size
        scaled = (1 << bits) - 1
    result = Key.from_int(scaled, bits)
    HASH_CACHE.put(cache_key, result)
    return result


def prefix_interval(value_prefix: str, bits: int = DEFAULT_KEY_BITS) -> tuple[Key, Key]:
    """The key interval holding every string starting with the prefix.

    Because the hash is order-preserving, all strings with a common
    prefix occupy one contiguous key interval: from the hash of the
    prefix itself (the smallest such string) to the hash of the prefix
    padded with the largest alphabet character.  Combined with
    :func:`repro.util.keys.covering_prefixes`, this turns prefix
    searches into a few subtree queries.

    The interval *over-approximates* by at most one key at the top:
    the supremum of the prefix's fraction range coincides, at finite
    key width, with the key of the immediately following string (e.g.
    the "Asp" interval's last key is also ``hash("Asq")``).  Range
    consumers filter results by actual value, so the stray boundary
    key costs one extra candidate, never a missed match.

    >>> low, high = prefix_interval("Asp")
    >>> low <= order_preserving_hash("Aspergillus") <= high
    True
    """
    cache_key = (value_prefix, bits)
    cached = PREFIX_INTERVAL_CACHE.get(cache_key)
    if cached is not None:
        return cached
    low = order_preserving_hash(value_prefix, bits)
    padded = value_prefix + chr(_ALPHABET_HI) * ((bits // 4) + 16)
    high = order_preserving_hash(padded, bits)
    PREFIX_INTERVAL_CACHE.put(cache_key, (low, high))
    return low, high


def uniform_hash(value: str, bits: int = DEFAULT_KEY_BITS) -> Key:
    """Hash a string to a ``bits``-wide key with uniform distribution.

    Deterministic across processes (SHA-256 based, unlike Python's
    builtin ``hash``).  Used for identifier minting and anywhere key
    order is irrelevant.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    needed_bytes = (bits + 7) // 8
    as_int = int.from_bytes(digest[:needed_bytes], "big") >> (needed_bytes * 8 - bits)
    return Key.from_int(as_int, bits)
