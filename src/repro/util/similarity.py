"""String and set similarity measures for automatic schema matching.

§4 of the paper: automatic mappings are created "using a combination of
lexicographical measures and set distance measures between the
predicates defined in both schemas".  This module supplies both
families:

*Lexicographic* (on attribute names):
    :func:`levenshtein`, :func:`normalized_levenshtein`,
    :func:`ngram_similarity`, :func:`jaro_winkler`.

*Set distances* (on the sets of instance values observed under each
attribute):
    :func:`jaccard_similarity`, :func:`overlap_coefficient`,
    :func:`dice_coefficient`.

All similarity functions return a value in ``[0, 1]`` where 1 means
identical.
"""

from __future__ import annotations

from collections.abc import Collection, Set


# ---------------------------------------------------------------------------
# Lexicographic measures
# ---------------------------------------------------------------------------

def levenshtein(a: str, b: str) -> int:
    """Edit distance (insertions, deletions, substitutions).

    Classic two-row dynamic program, O(len(a) * len(b)).

    >>> levenshtein("organism", "organisms")
    1
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) > len(b):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(
                previous[i] + 1,        # deletion
                current[i - 1] + 1,     # insertion
                previous[i - 1] + cost  # substitution
            ))
        previous = current
    return previous[-1]


def normalized_levenshtein(a: str, b: str) -> float:
    """Levenshtein similarity scaled to ``[0, 1]`` (1 = equal strings).

    >>> normalized_levenshtein("abc", "abc")
    1.0
    """
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


def _ngrams(text: str, n: int) -> list[str]:
    """Character n-grams of ``text`` with boundary padding."""
    padded = ("#" * (n - 1)) + text + ("#" * (n - 1))
    return [padded[i:i + n] for i in range(len(padded) - n + 1)]


def ngram_similarity(a: str, b: str, n: int = 2) -> float:
    """Dice coefficient over character n-grams (default bigrams).

    Robust to small rearrangements (``SeqLength`` vs ``LengthSeq``)
    where plain edit distance over-penalizes.
    """
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    grams_a = _ngrams(a.lower(), n)
    grams_b = _ngrams(b.lower(), n)
    if not grams_a or not grams_b:
        return 0.0
    from collections import Counter
    counts_a = Counter(grams_a)
    counts_b = Counter(grams_b)
    overlap = sum((counts_a & counts_b).values())
    return 2.0 * overlap / (len(grams_a) + len(grams_b))


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity, favouring shared prefixes.

    Attribute names in related bioinformatic schemas tend to share
    prefixes (``Seq``, ``Organism``...), which is exactly the bias
    Winkler's prefix bonus encodes.
    """
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    match_window = max(len(a), len(b)) // 2 - 1
    match_window = max(match_window, 0)
    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - match_window)
        hi = min(len(b), i + match_window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == ca:
                a_matched[i] = True
                b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matched):
        if not matched:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    jaro = (
        matches / len(a)
        + matches / len(b)
        + (matches - transpositions) / matches
    ) / 3.0
    # Winkler prefix bonus (common prefix up to 4 chars).
    prefix_len = 0
    for ca, cb in zip(a, b):
        if ca != cb or prefix_len == 4:
            break
        prefix_len += 1
    return jaro + prefix_len * prefix_scale * (1.0 - jaro)


# ---------------------------------------------------------------------------
# Set distances
# ---------------------------------------------------------------------------

def jaccard_similarity(a: Collection, b: Collection) -> float:
    """|A ∩ B| / |A ∪ B| (1.0 when both sets are empty).

    >>> jaccard_similarity({1, 2}, {2, 3})
    0.3333333333333333
    """
    set_a = a if isinstance(a, Set) else set(a)
    set_b = b if isinstance(b, Set) else set(b)
    if not set_a and not set_b:
        return 1.0
    union = len(set_a | set_b)
    return len(set_a & set_b) / union


def overlap_coefficient(a: Collection, b: Collection) -> float:
    """|A ∩ B| / min(|A|, |B|) — high when one set nests in the other.

    This is the measure of choice for detecting *subsumption*
    candidates: if the value set of attribute X contains the value set
    of attribute Y, the overlap coefficient is 1 while Jaccard may be
    small.
    """
    set_a = a if isinstance(a, Set) else set(a)
    set_b = b if isinstance(b, Set) else set(b)
    if not set_a or not set_b:
        return 1.0 if (not set_a and not set_b) else 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def dice_coefficient(a: Collection, b: Collection) -> float:
    """2|A ∩ B| / (|A| + |B|)."""
    set_a = a if isinstance(a, Set) else set(a)
    set_b = b if isinstance(b, Set) else set(b)
    if not set_a and not set_b:
        return 1.0
    return 2.0 * len(set_a & set_b) / (len(set_a) + len(set_b))
