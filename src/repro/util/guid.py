"""Globally unique identifiers for local resources and schemas.

Per §2.2 of the paper: "Whenever necessary, globally unique identifiers
are created for local resources and schemas by concatenating the
logical address pi(p) of the peer p posting the item with a hash of the
local identifier or schema name."
"""

from __future__ import annotations

from repro.util.hashing import uniform_hash
from repro.util.keys import Key

#: Separator between the peer path and the local-hash component.  It is
#: not a binary digit, so the two parts can be split unambiguously.
_SEPARATOR = "@"

#: Width of the local-identifier hash inside a GUID.
_LOCAL_HASH_BITS = 32


def mint_guid(peer_path: Key, local_identifier: str) -> str:
    """Create a globally unique identifier for a local item.

    The GUID is ``<pi(p)>@<hex hash of local id>``; two peers with
    different paths can never mint the same GUID, and one peer mints
    distinct GUIDs for distinct local names (up to hash collision).

    >>> mint_guid(Key("0110"), "my-schema").startswith("0110@")
    True
    """
    local_hash = uniform_hash(local_identifier, _LOCAL_HASH_BITS)
    return f"{peer_path.bits}{_SEPARATOR}{local_hash.to_int():08x}"


def split_guid(guid: str) -> tuple[Key, str]:
    """Split a GUID back into ``(peer path, local-hash hex)``.

    Raises :class:`ValueError` for malformed GUIDs.
    """
    path_bits, sep, local_hex = guid.partition(_SEPARATOR)
    if not sep:
        raise ValueError(f"not a GUID (missing {_SEPARATOR!r}): {guid!r}")
    return Key(path_bits), local_hex
