"""Shared cProfile harness for the CLI and the benchmark suite.

One entry point, :func:`profile_call`, used by both consumers:

* ``python -m repro query/batch/scenario --profile`` wraps the whole
  command and prints the hot functions afterwards;
* ``benchmarks/profile.py`` runs one E-experiment's workload under
  the profiler instead of the pytest-benchmark timer.

Both therefore produce the *same* report shape — top-N functions by
cumulative (or internal) time — so a CLI profile and a bench profile
of the same workload are directly comparable.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable

#: rows shown by default — enough to reach past the event-loop
#: machinery into the per-message handler costs
DEFAULT_TOP = 20

#: accepted ``sort`` values (pstats sort keys)
SORT_KEYS = ("cumulative", "tottime")


def profile_call(fn: Callable[[], Any], *, top: int = DEFAULT_TOP,
                 sort: str = "cumulative") -> tuple[Any, str]:
    """Run ``fn`` under cProfile; return ``(result, report_text)``.

    The report is the ``pstats`` table of the ``top`` functions by
    ``sort`` order ("cumulative" or "tottime"), with file paths
    stripped to their trailing components.
    """
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, not {sort!r}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return result, buffer.getvalue()


def print_profile(report: str) -> None:
    """Print a :func:`profile_call` report with a separating rule."""
    print("-" * 72)
    print(report.rstrip())
