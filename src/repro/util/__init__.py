"""Shared utilities: binary keys, hashing, identifiers, similarity measures.

These are the lowest-level building blocks of the reproduction.  They
are deliberately dependency-free so every other subpackage can import
them without cycles.
"""

from repro.util.keys import Key, common_prefix_length
from repro.util.hashing import order_preserving_hash, uniform_hash
from repro.util.guid import mint_guid, split_guid
from repro.util.similarity import (
    dice_coefficient,
    jaccard_similarity,
    jaro_winkler,
    levenshtein,
    ngram_similarity,
    normalized_levenshtein,
    overlap_coefficient,
)

__all__ = [
    "Key",
    "common_prefix_length",
    "order_preserving_hash",
    "uniform_hash",
    "mint_guid",
    "split_guid",
    "levenshtein",
    "normalized_levenshtein",
    "ngram_similarity",
    "dice_coefficient",
    "jaro_winkler",
    "jaccard_similarity",
    "overlap_coefficient",
]
