"""Small statistics helpers shared by benches, the connectivity code
and the query engine's execution counters.

Kept free of numpy so the core library has no hard third-party
dependency; benchmarks may still use numpy for reporting.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def empirical_cdf_at(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples ``<= threshold`` (0.0 on empty input).

    >>> empirical_cdf_at([0.5, 1.5, 4.0, 9.0], 5.0)
    0.75
    """
    if not samples:
        return 0.0
    return sum(1 for s in samples if s <= threshold) / len(samples)


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0 <= q <= 100), linear interpolation.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    """
    if not samples:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def percentile_or_none(samples: Sequence[float],
                       q: float) -> float | None:
    """:func:`percentile`, but ``None`` on empty input.

    Report paths use this so a run that measured nothing (e.g. a
    churn scenario where zero queries completed) reports ``None``
    latencies instead of crashing.

    >>> percentile_or_none([], 50) is None
    True
    >>> percentile_or_none([1.0, 3.0], 50)
    2.0
    """
    if not samples:
        return None
    return percentile(samples, q)


def ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator``, defined as 0.0 on a zero denominator.

    The safe division used for rate reporting (cache hit rates,
    pattern-dedup rates) where an empty measurement window is a valid
    "nothing happened yet" state rather than an error.

    >>> ratio(3, 4)
    0.75
    >>> ratio(0, 0)
    0.0
    """
    if denominator == 0:
        return 0.0
    return numerator / denominator


def mean(samples: Iterable[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    values = list(samples)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def histogram(samples: Iterable[int]) -> dict[int, int]:
    """Counts of each distinct integer value.

    >>> histogram([1, 1, 2]) == {1: 2, 2: 1}
    True
    """
    counts: dict[int, int] = {}
    for s in samples:
        counts[s] = counts.get(s, 0) + 1
    return counts


def joint_distribution(
    pairs: Iterable[tuple[int, int]],
) -> dict[tuple[int, int], float]:
    """Empirical joint probability of (in-degree, out-degree) pairs.

    This is the ``p_jk`` of the paper's connectivity indicator.
    """
    counts: dict[tuple[int, int], int] = {}
    total = 0
    for pair in pairs:
        counts[pair] = counts.get(pair, 0) + 1
        total += 1
    if total == 0:
        return {}
    return {pair: count / total for pair, count in counts.items()}
