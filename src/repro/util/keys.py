"""Binary key-space primitives for the P-Grid overlay.

P-Grid organizes peers in a virtual binary search trie over the key
space ``{0, 1}*``.  A :class:`Key` is an immutable binary string; peer
paths, data keys and routing prefixes are all keys.  The class wraps a
plain ``str`` of ``'0'``/``'1'`` characters, which keeps keys hashable,
ordered lexicographically (matching the trie order) and easy to debug.
"""

from __future__ import annotations

from typing import Any, Iterator


class MemoCache:
    """A bounded FIFO memo cache with hit/miss accounting.

    Used to memoize the hot-path key derivations (value → binary key
    hashing, interval → covering-prefix decomposition).  Cached values
    must be immutable (or copied by the caller on hit) — entries are
    shared between all call sites.

    Eviction is deterministic: when full, the oldest *inserted* entry
    is dropped (dict insertion order), so a seeded simulation makes the
    same eviction decisions every run.  The ``hits`` / ``misses`` /
    ``evictions`` counters let tests prove the cache actually serves
    hits without changing behavior.

    >>> cache = MemoCache(maxsize=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a"), cache.get("zzz")
    (1, None)
    >>> cache.put("c", 3)  # evicts "a" (oldest)
    >>> cache.get("a") is None, cache.stats()["evictions"]
    (True, 1)
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int = 1 << 16) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: dict[Any, Any] = {}

    def get(self, key: Any) -> Any:
        """The cached value, or ``None`` on a miss (counted)."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert, evicting the oldest entry when at capacity."""
        if len(self._data) >= self.maxsize:
            self._data.pop(next(iter(self._data)))
            self.evictions += 1
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        self._data.clear()
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot (``hits`` / ``misses`` / ``evictions`` / ``size``)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": len(self._data)}


class Key:
    """An immutable binary string in the P-Grid key space.

    >>> k = Key("0110")
    >>> k.bit(0), k.bit(3)
    ('0', '0')
    >>> k.prefix(2)
    Key('01')
    >>> Key("01").is_prefix_of(k)
    True
    """

    __slots__ = ("_bits", "_hash")

    def __init__(self, bits: str = "") -> None:
        # str.strip("01") is a C-level scan; keys are rebuilt from
        # message payloads on every routing hop, making this one of the
        # hottest constructors in the system.
        if bits.strip("01"):
            raise ValueError(f"key must be a binary string, got {bits!r}")
        self._bits = bits

    # -- constructors -------------------------------------------------

    @classmethod
    def of(cls, bits: str) -> "Key":
        """An interned key for ``bits`` (hot-path constructor).

        Message payloads carry keys as raw bit strings, and the same
        few thousand keys (one per stored term, plus peer paths) are
        rebuilt on every routing hop; interning skips both the
        validation scan and the allocation.  Keys are immutable, so
        sharing is safe.  The cache is cleared wholesale if it ever
        exceeds its bound — deterministic, and in practice the key
        vocabulary of a deployment fits comfortably.
        """
        cached = _KEY_INTERN.get(bits)
        if cached is None:
            if len(_KEY_INTERN) >= _KEY_INTERN_MAX:
                _KEY_INTERN.clear()
            cached = _KEY_INTERN[bits] = cls(bits)
        return cached

    @classmethod
    def from_int(cls, value: int, width: int) -> "Key":
        """Build a key of exactly ``width`` bits from an integer.

        >>> Key.from_int(5, 4)
        Key('0101')
        """
        if value < 0:
            raise ValueError("key value must be non-negative")
        if value >= (1 << width):
            raise ValueError(f"{value} does not fit in {width} bits")
        return cls(format(value, f"0{width}b")) if width else cls("")

    # -- basic accessors ----------------------------------------------

    @property
    def bits(self) -> str:
        """The raw ``'0'``/``'1'`` string."""
        return self._bits

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[str]:
        return iter(self._bits)

    def bit(self, i: int) -> str:
        """The ``i``-th bit as ``'0'`` or ``'1'``."""
        return self._bits[i]

    def to_int(self) -> int:
        """Integer value of the key (empty key is 0)."""
        return int(self._bits, 2) if self._bits else 0

    def as_fraction(self) -> float:
        """Map the key to ``[0, 1)`` (the canonical trie embedding).

        >>> Key("1").as_fraction()
        0.5
        """
        if not self._bits:
            return 0.0
        return self.to_int() / (1 << len(self._bits))

    # -- structure ----------------------------------------------------

    def prefix(self, length: int) -> "Key":
        """The first ``length`` bits as a new key."""
        return Key(self._bits[:length])

    def is_prefix_of(self, other: "Key") -> bool:
        """Whether this key is a (non-strict) prefix of ``other``."""
        return other._bits.startswith(self._bits)

    def append(self, bit: str) -> "Key":
        """A new key with one extra bit."""
        if bit not in ("0", "1"):
            raise ValueError(f"bit must be '0' or '1', got {bit!r}")
        return Key(self._bits + bit)

    def concat(self, other: "Key") -> "Key":
        """Concatenation of two keys."""
        return Key(self._bits + other._bits)

    def flip(self, i: int) -> "Key":
        """A new key with bit ``i`` flipped (used for routing tables)."""
        flipped = "1" if self._bits[i] == "0" else "0"
        return Key(self._bits[:i] + flipped + self._bits[i + 1:])

    def sibling_prefix(self, level: int) -> "Key":
        """The prefix of length ``level + 1`` with the last bit flipped.

        In P-Grid, the level-``i`` routing entry of a peer with path
        ``pi`` points into the subtree rooted at
        ``pi[:i] + flip(pi[i])`` — exactly this key.
        """
        if level >= len(self._bits):
            raise ValueError(f"level {level} out of range for {self!r}")
        return self.prefix(level + 1).flip(level)

    # -- dunder plumbing ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Key):
            return NotImplemented
        return self._bits == other._bits

    def __lt__(self, other: "Key") -> bool:
        return self._bits < other._bits

    def __le__(self, other: "Key") -> bool:
        return self._bits <= other._bits

    def __gt__(self, other: "Key") -> bool:
        return self._bits > other._bits

    def __ge__(self, other: "Key") -> bool:
        return self._bits >= other._bits

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash(("Key", self._bits))
            self._hash = h
            return h

    def __repr__(self) -> str:
        return f"Key({self._bits!r})"

    def __str__(self) -> str:
        return self._bits or "<root>"


#: intern table for :meth:`Key.of` (bits -> shared Key instance)
_KEY_INTERN: dict[str, Key] = {}
_KEY_INTERN_MAX = 1 << 16

#: memo for :func:`covering_prefixes` — range queries decompose the
#: same corpus intervals over and over (one per attribute vocabulary)
_COVER_CACHE = MemoCache(maxsize=1 << 12)


def covering_prefixes(low: Key, high: Key,
                      max_length: int | None = None) -> list[Key]:
    """Trie prefixes covering the key interval ``[low, high]``.

    ``low`` and ``high`` must have equal width; the interval is
    inclusive on both ends and interpreted over all keys of that width.
    Without ``max_length`` the result is the canonical binary
    decomposition: at most ``2 * width`` pairwise-disjoint prefixes
    whose subtrees exactly cover the interval.  With ``max_length``,
    decomposition stops at that depth and partially-overlapping
    subtrees are included whole — the cover may then *over-approximate*
    the interval (callers filter the extra results), in exchange for a
    bound of ``2 * max_length`` prefixes regardless of key width.

    This is what turns an order-preserving-hash *range* into a handful
    of prefix-routed subtree queries.

    >>> [p.bits for p in covering_prefixes(Key("010"), Key("101"))]
    ['01', '10']
    """
    if len(low) != len(high):
        raise ValueError("interval endpoints must have equal width")
    if low > high:
        raise ValueError("empty interval (low > high)")
    cache_key = (low.bits, high.bits, max_length)
    cached = _COVER_CACHE.get(cache_key)
    if cached is not None:
        return list(cached)  # callers may mutate their copy
    width = len(low)
    result: list[Key] = []
    stack: list[Key] = [Key("")]
    while stack:
        prefix = stack.pop()
        # Subtree key range at full width.
        sub_low = Key(prefix.bits + "0" * (width - len(prefix)))
        sub_high = Key(prefix.bits + "1" * (width - len(prefix)))
        if sub_high < low or sub_low > high:
            continue  # disjoint
        contained = low <= sub_low and sub_high <= high
        if contained or (max_length is not None
                         and len(prefix) >= max_length):
            result.append(prefix)
            continue
        # Partial overlap: split (right child first so the list comes
        # out in ascending key order).
        stack.append(prefix.append("1"))
        stack.append(prefix.append("0"))
    _COVER_CACHE.put(cache_key, tuple(result))
    return result


def common_prefix_length(a: Key, b: Key) -> int:
    """Length of the longest common prefix of two keys.

    This is the trie depth at which the two keys' subtrees diverge;
    prefix routing forwards a query to a reference whose common prefix
    with the target key is strictly longer than the current peer's.

    >>> common_prefix_length(Key("0011"), Key("0010"))
    3
    """
    n = 0
    for x, y in zip(a._bits, b._bits):
        if x != y:
            break
        n += 1
    return n
