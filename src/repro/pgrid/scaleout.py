"""Scale-out harness: the same P-Grid deployment on either transport.

The paper's deployment argument (§2.3) is about *scale*: GridVine's
overlay work is logarithmic in network size, so the interesting regime
starts where a single-loop simulation stops being practical.  This
module builds one deterministic deployment — trie assignment, sampled
routing tables, preloaded replica groups, query waves, churn trace —
and runs it unchanged on either engine:

- :func:`run_inprocess` — the classic single-event-loop
  :class:`~repro.simnet.network.InProcessTransport` (the ``shards=1``
  baseline in bench E18);
- :func:`run_sharded` — the windowed
  :class:`~repro.simnet.shard.ShardedTransport`, with the trie key
  space partitioned into contiguous leaf runs so replica groups and
  prefix-local traffic stay intra-shard.

Everything the workload consumes is derived from the spec seed and
node ids only (per-peer rng streams, per-wave query draws, per-node
churn schedules), never from engine interleaving — so engines are
comparable run-to-run and shard counts are comparable to each other.

Engine equivalence has two tiers.  Within the sharded engine, results
are *bit-identical* across worker modes (inline vs process) and across
repeated runs — the conservative window protocol fixes the event
order.  Between engines, results are *statistically equivalent*, not
bit-identical: a peer consumes its private rng in the order messages
reach it, and the two engines interleave same-window deliveries
differently.  The tests pin the first tier exactly and bound the
second (identical success outcomes all-online; close hop/recall
distributions under churn).
"""

from __future__ import annotations

import random
import resource
import time
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.pgrid.construction import (
    assign_paths,
    replica_groups,
    sample_routing_tables,
)
from repro.pgrid.peer import PGridPeer
from repro.simnet.churn import exponential_schedule
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import InProcessTransport
from repro.simnet.shard import (
    ShardedTransport,
    partition_paths,
    summarize_op_result,
)
from repro.util.keys import Key


@dataclass
class ScaleoutSpec:
    """One scale-out experiment: deployment + workload + engine knobs."""

    num_peers: int = 10_000
    replication: int = 4
    refs_per_level: int = 2
    seed: int = 0
    #: shard count for :func:`run_sharded` (ignored by the baseline)
    num_shards: int = 4
    #: sharded worker mode: ``"inline"`` or ``"process"``
    mode: str = "inline"
    #: constant one-way delay — also the conservative lookahead window
    latency_delay: float = 0.05
    #: distinct stored needles (each replicated to its full group)
    num_keys: int = 1000
    #: retrieve operations per wave / number of waves
    ops_per_wave: int = 200
    num_waves: int = 5
    #: churn scenario: toggle trace over ``duration`` with waves every
    #: ``wave_interval`` (> peer timeout, so waves cannot overlap)
    churn: bool = False
    duration: float = 120.0
    mean_uptime: float = 90.0
    mean_downtime: float = 30.0
    wave_interval: float = 20.0
    #: peer protocol knobs
    timeout: float = 15.0
    max_retries: int = 1
    failover: bool = True


@dataclass
class ScaleoutReport:
    """What one engine run produced (plain data, bench-serializable)."""

    engine: str
    num_peers: int
    num_shards: int
    ops_issued: int = 0
    ops_completed: int = 0
    successes: int = 0
    total_hops: int = 0
    total_attempts: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0
    drops_by_reason: dict[str, int] = field(default_factory=dict)
    events_processed: int = 0
    virtual_time: float = 0.0
    wall_clock_s: float = 0.0
    peak_rss_kb: int = 0
    per_shard_peak_rss_kb: list[int] = field(default_factory=list)
    #: op ref -> (success, hops, latency, attempts, n_values), the
    #: engine-comparable observable trace
    outcomes: dict[int, tuple] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        return self.successes / self.ops_completed if self.ops_completed else 0.0

    @property
    def mean_hops(self) -> float:
        wins = [o for o in self.outcomes.values() if o[0]]
        return (sum(o[1] for o in wins) / len(wins)) if wins else 0.0

    def summary(self) -> dict:
        """Plain-dict digest for benchmark recording."""
        return {
            "engine": self.engine,
            "num_peers": self.num_peers,
            "num_shards": self.num_shards,
            "ops_issued": self.ops_issued,
            "ops_completed": self.ops_completed,
            "successes": self.successes,
            "success_rate": round(self.success_rate, 6),
            "mean_hops": round(self.mean_hops, 6),
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "drops_by_reason": dict(self.drops_by_reason),
            "events_processed": self.events_processed,
            "virtual_time": round(self.virtual_time, 6),
            "wall_clock_s": round(self.wall_clock_s, 3),
            "peak_rss_kb": self.peak_rss_kb,
            "per_shard_peak_rss_kb": list(self.per_shard_peak_rss_kb),
        }


# ----------------------------------------------------------------------
# Deterministic deployment (shared by both engines)
# ----------------------------------------------------------------------

@dataclass
class Deployment:
    """Everything both engines build identically from the spec."""

    assignment: dict[str, Key]
    tables: dict[str, tuple[list[str], list[list[str]]]]
    #: needle key -> stored value
    needles: dict[Key, str]
    #: sorted leaf bits (for responsible-leaf lookup)
    leaf_bits: list[str]
    #: leaf bits -> replica-group member node ids
    groups: dict[str, list[str]]
    #: (time, node_id, online) churn toggles, empty when churn is off
    toggles: list[tuple[float, str, bool]]
    #: wave index -> list of (origin node id, needle key)
    waves: list[list[tuple[str, Key]]]


def _responsible_leaf(leaf_bits: list[str], key: Key) -> str:
    """The leaf whose prefix covers ``key`` (leaves partition the space)."""
    index = bisect_right(leaf_bits, key.bits) - 1
    if index < 0 or not key.bits.startswith(leaf_bits[index]):
        raise ValueError(f"no leaf covers key {key.bits[:16]}...")
    return leaf_bits[index]


def build_deployment(spec: ScaleoutSpec) -> Deployment:
    """Build the engine-independent deployment for ``spec``.

    Every random draw comes from a stream keyed by the seed and a
    purpose tag, so the deployment is a pure function of the spec.
    """
    from repro.util.hashing import uniform_hash

    assignment = assign_paths(
        spec.num_peers, replication=spec.replication,
        rng=random.Random(f"{spec.seed}/paths"))
    tables = sample_routing_tables(
        assignment, refs_per_level=spec.refs_per_level,
        rng=random.Random(f"{spec.seed}/tables"))
    needles = {uniform_hash(f"needle-{i}"): f"value-{i}"
               for i in range(spec.num_keys)}
    groups_by_key = replica_groups(assignment)
    groups = {path.bits: sorted(members)
              for path, members in groups_by_key.items()}
    leaf_bits = sorted(groups)
    node_ids = sorted(assignment)
    needle_keys = list(needles)
    waves = []
    for wave in range(spec.num_waves):
        rng = random.Random(f"{spec.seed}/wave/{wave}")
        waves.append([
            (node_ids[rng.randrange(len(node_ids))],
             needle_keys[rng.randrange(len(needle_keys))])
            for _ in range(spec.ops_per_wave)
        ])
    toggles = (
        exponential_schedule(node_ids, spec.mean_uptime,
                             spec.mean_downtime, spec.duration,
                             seed=spec.seed)
        if spec.churn else [])
    return Deployment(assignment=assignment, tables=tables,
                      needles=needles, leaf_bits=leaf_bits, groups=groups,
                      toggles=toggles, waves=waves)


def _stream(*parts: object) -> random.Random:
    """A private rng stream keyed by plain values.

    Seeding with a small int takes a fast path in CPython (string
    seeds are hashed through SHA-512); at 10k peers the difference is
    a tenth of a second of pure setup per engine run.
    """
    return random.Random(zlib.crc32("/".join(map(str, parts)).encode()))


def _make_peer(spec: ScaleoutSpec, deployment: Deployment,
               node_id: str) -> PGridPeer:
    """One peer with its private rng stream and prebuilt tables."""
    peer = PGridPeer(
        node_id, deployment.assignment[node_id],
        rng=_stream(spec.seed, "peer", node_id),
        timeout=spec.timeout, max_retries=spec.max_retries,
        failover=spec.failover)
    peer.replicas, peer.routing_table = deployment.tables[node_id]
    return peer


def _preload(deployment: Deployment, peers: dict[str, PGridPeer]) -> None:
    """Store every needle directly into its full replica group.

    Both engines preload identically (no update traffic), so recall
    differences between engines can only come from routing behavior.
    """
    for key, value in deployment.needles.items():
        leaf = _responsible_leaf(deployment.leaf_bits, key)
        for node_id in deployment.groups[leaf]:
            peers[node_id].store.setdefault(key.bits, []).append(value)


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------

def run_sharded(spec: ScaleoutSpec,
                deployment: Deployment | None = None) -> ScaleoutReport:
    """Run the deployment on the windowed sharded transport."""
    deployment = deployment or build_deployment(spec)
    started = time.perf_counter()
    transport = ShardedTransport(
        spec.num_shards, latency=ConstantLatency(spec.latency_delay),
        seed=spec.seed, mode=spec.mode)
    owner = partition_paths(deployment.assignment, spec.num_shards)
    peers = {node_id: _make_peer(spec, deployment, node_id)
             for node_id in sorted(deployment.assignment)}
    _preload(deployment, peers)
    for node_id, peer in peers.items():
        transport.add_peer(peer, owner[node_id])
    for at, node_id, online in deployment.toggles:
        transport.set_online_at(at, node_id, online)
    transport.start()

    report = ScaleoutReport(engine=f"sharded/{spec.mode}",
                            num_peers=spec.num_peers,
                            num_shards=spec.num_shards)
    for wave_index, wave in enumerate(deployment.waves):
        if spec.churn:
            transport.run_until(wave_index * spec.wave_interval)
        for origin, key in wave:
            transport.submit(origin, "retrieve", key)
            report.ops_issued += 1
        if not spec.churn:
            transport.run_until_quiescent()
    if spec.churn:
        transport.run_until(spec.duration)
    transport.run_until_quiescent()

    stats = transport.stop()
    merged = transport.metrics_snapshot()
    report.outcomes = dict(transport.completed)
    _fill_outcome_counts(report)
    report.messages_sent = merged["messages_sent"]
    report.messages_dropped = merged["messages_dropped"]
    report.drops_by_reason = merged["drops_by_reason"]
    report.events_processed = merged["events_processed"]
    report.per_shard_peak_rss_kb = [s["peak_rss_kb"] for s in stats]
    report.peak_rss_kb = max(report.per_shard_peak_rss_kb)
    report.virtual_time = transport.now
    report.wall_clock_s = time.perf_counter() - started
    return report


def run_inprocess(spec: ScaleoutSpec,
                  deployment: Deployment | None = None) -> ScaleoutReport:
    """Run the identical deployment on the single-loop transport."""
    deployment = deployment or build_deployment(spec)
    started = time.perf_counter()
    net = InProcessTransport(latency=ConstantLatency(spec.latency_delay),
                             rng=random.Random(f"{spec.seed}/latency"))
    peers = {node_id: _make_peer(spec, deployment, node_id)
             for node_id in sorted(deployment.assignment)}
    _preload(deployment, peers)
    for peer in peers.values():
        net.attach(peer)
    loop = net.loop
    for at, node_id, online in deployment.toggles:
        loop.schedule_at(at, net.set_online, node_id, online)

    report = ScaleoutReport(engine="inprocess", num_peers=spec.num_peers,
                            num_shards=1)
    outcomes: dict[int, tuple] = {}
    ref = 0
    for wave_index, wave in enumerate(deployment.waves):
        if spec.churn:
            loop.run_until(wave_index * spec.wave_interval)
        pending = []
        for origin, key in wave:
            future = peers[origin].retrieve(key)
            future.add_done_callback(
                lambda f, r=ref: outcomes.__setitem__(
                    r, summarize_op_result(f.result())))
            pending.append(future)
            ref += 1
            report.ops_issued += 1
        if not spec.churn:
            loop.run_until_idle()
    if spec.churn:
        loop.run_until(spec.duration)
    loop.run_until_idle()

    report.outcomes = outcomes
    _fill_outcome_counts(report)
    snap = net.metrics.snapshot()
    report.messages_sent = snap["messages_sent"]
    report.messages_dropped = snap["messages_dropped"]
    report.drops_by_reason = snap["drops_by_reason"]
    report.events_processed = loop.events_processed
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    report.per_shard_peak_rss_kb = [rss]
    report.peak_rss_kb = rss
    report.virtual_time = loop.now
    report.wall_clock_s = time.perf_counter() - started
    return report


def _fill_outcome_counts(report: ScaleoutReport) -> None:
    report.ops_completed = len(report.outcomes)
    for success, hops, _latency, attempts, _n in report.outcomes.values():
        if success:
            report.successes += 1
            report.total_hops += hops
        report.total_attempts += attempts
