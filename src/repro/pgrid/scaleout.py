"""Scale-out harness: the same P-Grid deployment on either transport.

The paper's deployment argument (§2.3) is about *scale*: GridVine's
overlay work is logarithmic in network size, so the interesting regime
starts where a single-loop simulation stops being practical.  This
module builds one deterministic deployment — trie assignment, sampled
routing tables, preloaded replica groups, query waves, churn trace —
and runs it unchanged on either engine:

- :func:`run_inprocess` — the classic single-event-loop
  :class:`~repro.simnet.network.InProcessTransport` (the ``shards=1``
  baseline in bench E18);
- :func:`run_sharded` — the windowed
  :class:`~repro.simnet.shard.ShardedTransport`, with the trie key
  space partitioned into contiguous leaf runs so replica groups and
  prefix-local traffic stay intra-shard.

Everything the workload consumes is derived from the spec seed and
node ids only (per-peer rng streams, per-wave query draws, per-node
churn schedules), never from engine interleaving — so engines are
comparable run-to-run and shard counts are comparable to each other.

Engine equivalence has two tiers.  Within the sharded engine, results
are *bit-identical* across worker modes (inline vs process) and across
repeated runs — the conservative window protocol fixes the event
order.  Between engines, results are *statistically equivalent*, not
bit-identical: a peer consumes its private rng in the order messages
reach it, and the two engines interleave same-window deliveries
differently.  The tests pin the first tier exactly and bound the
second (identical success outcomes all-online; close hop/recall
distributions under churn).
"""

from __future__ import annotations

import random
import resource
import time
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.mediation.keys import schema_key, triple_keys
from repro.mediation.peer import GridVinePeer
from repro.mediation.records import (
    ConnectivityRecord,
    IncomingMappingRecord,
    MappingRecord,
    SchemaRecord,
    TripleRecord,
)
from repro.pgrid.construction import (
    assign_paths,
    replica_groups,
    sample_routing_tables,
)
from repro.pgrid.peer import PGridPeer
from repro.simnet.churn import exponential_schedule
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import InProcessTransport
from repro.simnet.shard import (
    ShardedTransport,
    partition_paths,
    summarize_op_result,
)
from repro.util.keys import Key


@dataclass
class ScaleoutSpec:
    """One scale-out experiment: deployment + workload + engine knobs."""

    num_peers: int = 10_000
    replication: int = 4
    refs_per_level: int = 2
    seed: int = 0
    #: shard count for :func:`run_sharded` (ignored by the baseline)
    num_shards: int = 4
    #: sharded worker mode: ``"inline"`` or ``"process"``
    mode: str = "inline"
    #: constant one-way delay — also the conservative lookahead window
    latency_delay: float = 0.05
    #: distinct stored needles (each replicated to its full group)
    num_keys: int = 1000
    #: retrieve operations per wave / number of waves
    ops_per_wave: int = 200
    num_waves: int = 5
    #: churn scenario: toggle trace over ``duration`` with waves every
    #: ``wave_interval`` (> peer timeout, so waves cannot overlap)
    churn: bool = False
    duration: float = 120.0
    mean_uptime: float = 90.0
    mean_downtime: float = 30.0
    wave_interval: float = 20.0
    #: peer protocol knobs
    timeout: float = 15.0
    max_retries: int = 1
    failover: bool = True
    #: workload kind: ``"retrieve"`` (raw P-Grid lookups) or
    #: ``"mediation"`` (GridVine peers with schemas, mappings and
    #: SearchFor / engine-batch query waves).  For *bit-identical*
    #: cross-engine mediation outcomes use ``refs_per_level=1`` and
    #: ``replication=1``: :meth:`PGridPeer._pick_reference` is the only
    #: rng draw on the query path, and pools of size one make routing
    #: independent of the engines' differing same-window delivery
    #: orders.
    workload: str = "retrieve"
    #: mediation corpus shape (BioDatasetGenerator knobs)
    num_schemas: int = 6
    num_entities: int = 120
    entities_per_schema: int = 30
    #: mediation query knobs: strategy / reformulation depth / result
    #: cap for the per-wave ``SearchFor`` operations
    strategy: str = "iterative"
    query_max_hops: int = 4
    query_limit: int | None = None
    #: per wave, how many extra queries run as ONE engine batch
    #: through the ``run_batch`` transport seam (0 = no batches)
    batch_queries: int = 0
    #: optional :class:`~repro.faultlab.plan.FaultPlan` installed on the
    #: transport before traffic starts — one injector on the single-loop
    #: engine, per-shard injectors from the same plan on the sharded
    #: engine (see :meth:`ShardedTransport.install_fault_plan` for the
    #: cross-shard semantics).  Plans whose clauses draw rng (drops,
    #: delays) consume it in per-shard order, so their counters are only
    #: comparable across engines statistically; pure time-window clauses
    #: (:class:`~repro.faultlab.plan.Partition`) account identically.
    faults: object | None = None
    #: write a merged causal trace (one ``op:<ref>`` root per submitted
    #: operation plus hop/drop spans) to this JSONL path after the run.
    #: Trace ids follow the controller's global submit order, so traces
    #: are comparable across engines, shard counts and worker modes.
    trace_path: str | None = None


@dataclass
class ScaleoutReport:
    """What one engine run produced (plain data, bench-serializable)."""

    engine: str
    num_peers: int
    num_shards: int
    ops_issued: int = 0
    ops_completed: int = 0
    successes: int = 0
    total_hops: int = 0
    total_attempts: int = 0
    #: mediation-workload counters (zero on retrieve workloads)
    rows_returned: int = 0
    reformulations: int = 0
    query_messages: int = 0
    #: injected-fault accounting (empty when no plan is installed)
    faults_by_kind: dict[str, int] = field(default_factory=dict)
    messages_sent: int = 0
    messages_dropped: int = 0
    drops_by_reason: dict[str, int] = field(default_factory=dict)
    events_processed: int = 0
    virtual_time: float = 0.0
    wall_clock_s: float = 0.0
    peak_rss_kb: int = 0
    per_shard_peak_rss_kb: list[int] = field(default_factory=list)
    #: op ref -> (success, hops, latency, attempts, n_values), the
    #: engine-comparable observable trace
    outcomes: dict[int, tuple] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        return self.successes / self.ops_completed if self.ops_completed else 0.0

    @property
    def mean_hops(self) -> float:
        # Retrieve summaries only — mediation summaries are tagged
        # tuples (see ``summarize_query_outcome``) with no hop count.
        wins = [o for o in self.outcomes.values()
                if not isinstance(o[0], str) and o[0]]
        return (sum(o[1] for o in wins) / len(wins)) if wins else 0.0

    def summary(self) -> dict:
        """Plain-dict digest for benchmark recording."""
        return {
            "engine": self.engine,
            "num_peers": self.num_peers,
            "num_shards": self.num_shards,
            "ops_issued": self.ops_issued,
            "ops_completed": self.ops_completed,
            "successes": self.successes,
            "success_rate": round(self.success_rate, 6),
            "mean_hops": round(self.mean_hops, 6),
            "rows_returned": self.rows_returned,
            "reformulations": self.reformulations,
            "query_messages": self.query_messages,
            "faults_by_kind": dict(self.faults_by_kind),
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "drops_by_reason": dict(self.drops_by_reason),
            "events_processed": self.events_processed,
            "virtual_time": round(self.virtual_time, 6),
            "wall_clock_s": round(self.wall_clock_s, 3),
            "peak_rss_kb": self.peak_rss_kb,
            "per_shard_peak_rss_kb": list(self.per_shard_peak_rss_kb),
        }


# ----------------------------------------------------------------------
# Deterministic deployment (shared by both engines)
# ----------------------------------------------------------------------

@dataclass
class MediationDeployment:
    """The GridVine layer of a mediation-workload deployment.

    Pure data derived from the spec seed: the corpus, the ground-truth
    mapping chain (both directions of every edge, exactly what
    ``insert_mapping`` would have published), and the query waves.
    """

    #: the generated corpus's schemas, in chain order
    schemas: list
    #: every mapping record the overlay holds (chain edges, both
    #: directions) — also the engine mirror's backfill
    mappings: list
    #: schema name -> data triples
    triples_by_schema: dict[str, list]
    #: wave index -> list of (origin node id, ConjunctiveQuery)
    query_waves: list[list[tuple[str, object]]]
    #: wave index -> (origin node id, [queries]) engine batch, or None
    batch_waves: list[tuple[str, list] | None]


@dataclass
class Deployment:
    """Everything both engines build identically from the spec."""

    assignment: dict[str, Key]
    tables: dict[str, tuple[list[str], list[list[str]]]]
    #: needle key -> stored value
    needles: dict[Key, str]
    #: sorted leaf bits (for responsible-leaf lookup)
    leaf_bits: list[str]
    #: leaf bits -> replica-group member node ids
    groups: dict[str, list[str]]
    #: (time, node_id, online) churn toggles, empty when churn is off
    toggles: list[tuple[float, str, bool]]
    #: wave index -> list of (origin node id, needle key)
    waves: list[list[tuple[str, Key]]]
    #: GridVine corpus + query workload (mediation workloads only)
    mediation: MediationDeployment | None = None


def _responsible_leaf(leaf_bits: list[str], key: Key) -> str:
    """The leaf whose prefix covers ``key`` (leaves partition the space)."""
    index = bisect_right(leaf_bits, key.bits) - 1
    if index < 0 or not key.bits.startswith(leaf_bits[index]):
        raise ValueError(f"no leaf covers key {key.bits[:16]}...")
    return leaf_bits[index]


def build_deployment(spec: ScaleoutSpec) -> Deployment:
    """Build the engine-independent deployment for ``spec``.

    Every random draw comes from a stream keyed by the seed and a
    purpose tag, so the deployment is a pure function of the spec.
    """
    from repro.util.hashing import uniform_hash

    assignment = assign_paths(
        spec.num_peers, replication=spec.replication,
        rng=random.Random(f"{spec.seed}/paths"))
    tables = sample_routing_tables(
        assignment, refs_per_level=spec.refs_per_level,
        rng=random.Random(f"{spec.seed}/tables"))
    needles = {uniform_hash(f"needle-{i}"): f"value-{i}"
               for i in range(spec.num_keys)}
    groups_by_key = replica_groups(assignment)
    groups = {path.bits: sorted(members)
              for path, members in groups_by_key.items()}
    leaf_bits = sorted(groups)
    node_ids = sorted(assignment)
    mediation = None
    waves: list[list[tuple[str, object]]] = []
    if spec.workload == "mediation":
        mediation = _build_mediation(spec, node_ids)
        waves = []
    elif spec.workload == "retrieve":
        needle_keys = list(needles)
        for wave in range(spec.num_waves):
            rng = random.Random(f"{spec.seed}/wave/{wave}")
            waves.append([
                (node_ids[rng.randrange(len(node_ids))],
                 needle_keys[rng.randrange(len(needle_keys))])
                for _ in range(spec.ops_per_wave)
            ])
    else:
        raise ValueError(f"unknown workload {spec.workload!r}")
    toggles = (
        exponential_schedule(node_ids, spec.mean_uptime,
                             spec.mean_downtime, spec.duration,
                             seed=spec.seed)
        if spec.churn else [])
    return Deployment(assignment=assignment, tables=tables,
                      needles=needles, leaf_bits=leaf_bits, groups=groups,
                      toggles=toggles, waves=waves, mediation=mediation)


def _build_mediation(spec: ScaleoutSpec,
                     node_ids: list[str]) -> MediationDeployment:
    """Corpus, mapping chain and query waves for a mediation workload.

    The dataset's schemas are chained with bidirectional ground-truth
    mappings (schema i <-> schema i+1), so iterative reformulation can
    walk the chain in both directions up to ``query_max_hops``.
    """
    from repro.datagen.generator import BioDatasetGenerator
    from repro.datagen.workload import QueryWorkloadGenerator

    dataset = BioDatasetGenerator(
        num_schemas=spec.num_schemas,
        num_entities=spec.num_entities,
        entities_per_schema=spec.entities_per_schema,
        seed=spec.seed,
    ).generate()
    names = [schema.name for schema in dataset.schemas]
    mappings = []
    for source, target in zip(names, names[1:]):
        forward = dataset.ground_truth_mapping(source, target)
        mappings.extend([forward, forward.reversed()])
    workload = QueryWorkloadGenerator(dataset,
                                      seed=f"{spec.seed}/queries")
    query_waves = []
    batch_waves: list[tuple[str, list] | None] = []
    for wave in range(spec.num_waves):
        rng = random.Random(f"{spec.seed}/qwave/{wave}")
        query_waves.append([
            (node_ids[rng.randrange(len(node_ids))], workload.next_query())
            for _ in range(spec.ops_per_wave)
        ])
        if spec.batch_queries > 0:
            batch_waves.append((
                node_ids[rng.randrange(len(node_ids))],
                [workload.next_query() for _ in range(spec.batch_queries)],
            ))
        else:
            batch_waves.append(None)
    return MediationDeployment(
        schemas=list(dataset.schemas), mappings=mappings,
        triples_by_schema=dict(dataset.triples_by_schema),
        query_waves=query_waves, batch_waves=batch_waves)


def _stream(*parts: object) -> random.Random:
    """A private rng stream keyed by plain values.

    Seeding with a small int takes a fast path in CPython (string
    seeds are hashed through SHA-512); at 10k peers the difference is
    a tenth of a second of pure setup per engine run.
    """
    return random.Random(zlib.crc32("/".join(map(str, parts)).encode()))


def _make_peer(spec: ScaleoutSpec, deployment: Deployment,
               node_id: str) -> PGridPeer:
    """One peer with its private rng stream and prebuilt tables."""
    if spec.workload == "mediation":
        peer: PGridPeer = GridVinePeer(
            node_id, deployment.assignment[node_id],
            rng=_stream(spec.seed, "peer", node_id),
            timeout=spec.timeout, max_retries=spec.max_retries,
            failover=spec.failover)
    else:
        peer = PGridPeer(
            node_id, deployment.assignment[node_id],
            rng=_stream(spec.seed, "peer", node_id),
            timeout=spec.timeout, max_retries=spec.max_retries,
            failover=spec.failover)
    peer.replicas, peer.routing_table = deployment.tables[node_id]
    return peer


def _preload(deployment: Deployment, peers: dict[str, PGridPeer]) -> None:
    """Store every needle directly into its full replica group.

    Both engines preload identically (no update traffic), so recall
    differences between engines can only come from routing behavior.
    """
    for key, value in deployment.needles.items():
        leaf = _responsible_leaf(deployment.leaf_bits, key)
        for node_id in deployment.groups[leaf]:
            peers[node_id].store.setdefault(key.bits, []).append(value)


def _preload_mediation(deployment: Deployment,
                       peers: dict[str, PGridPeer]) -> None:
    """Install the GridVine corpus directly at its responsible leaves.

    Mirrors what ``insert_schema`` / ``insert_triple`` /
    ``insert_mapping`` traffic would have stored, with zero messages on
    either engine — so the query waves start from identical overlay
    state everywhere.  Ordering matters: mapping records land while
    schema definitions are still absent (the connectivity republish
    hook no-ops), and each schema holder's published-connectivity
    cache is pre-set to the final degrees immediately before its
    ``SchemaRecord`` lands, so the schema-insert republish compares
    equal and never issues an overlay update.
    """
    med = deployment.mediation
    assert med is not None

    def place(key: Key, record: object, preset: str | None = None) -> None:
        leaf = _responsible_leaf(deployment.leaf_bits, key)
        for node_id in deployment.groups[leaf]:
            peer = peers[node_id]
            if preset is not None:
                peer._published_connectivity[preset] = ConnectivityRecord(
                    preset, *peer._local_degree(preset))
            peer.local_insert(key, record)

    for mapping in med.mappings:
        place(schema_key(mapping.source_schema), MappingRecord(mapping))
        place(schema_key(mapping.target_schema),
              IncomingMappingRecord(mapping))
    for triples in med.triples_by_schema.values():
        for triple in triples:
            record = TripleRecord(triple)
            for key in triple_keys(triple):
                place(key, record)
    for schema in med.schemas:
        place(schema_key(schema.name), SchemaRecord(schema),
              preset=schema.name)


# ----------------------------------------------------------------------
# Outcome summaries (module-level: process workers pickle by reference)
# ----------------------------------------------------------------------

def _result_rows(outcome) -> tuple:
    """An outcome's result rows as a sorted tuple of string tuples."""
    return tuple(sorted(tuple(str(term) for term in row)
                        for row in outcome.results))


def summarize_query_outcome(outcome) -> tuple:
    """Engine-comparable digest of one ``SearchFor`` outcome.

    Deliberately excludes ``latency`` / ``issued_at``: the sharded
    engine issues ops at window boundaries, so absolute times differ
    legitimately between engines.  The controller appends the exact
    attributed message count, making the stored summary
    ``("q", complete, rows, reformulations, messages)``.
    """
    return ("q", outcome.complete, _result_rows(outcome),
            outcome.reformulations_explored)


def summarize_batch_result(result) -> tuple:
    """Engine-comparable digest of one engine-batch execution."""
    per_query = tuple(
        ("q", o.complete, _result_rows(o), o.reformulations_explored)
        for o in result.outcomes)
    return ("b", per_query, result.messages, result.patterns_fetched,
            result.patterns_total, result.scans_issued,
            result.scans_skipped)


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------

def _install_inprocess_tracer(net, spec: ScaleoutSpec):
    """A span recorder on the single loop (``trace_path`` only)."""
    if spec.trace_path is None:
        return None
    from repro.obs.tracer import Tracer
    return net.install_tracer(Tracer(seed=spec.seed))


def _export_inprocess_trace(tracer, spec: ScaleoutSpec) -> None:
    if tracer is None:
        return
    from repro.obs.tracer import export_records_jsonl, merge_records
    export_records_jsonl(merge_records([tracer.records]), spec.trace_path)


def _export_sharded_trace(transport, spec: ScaleoutSpec) -> None:
    """Export the merged per-shard trace (call after ``stop()``)."""
    if spec.trace_path is None:
        return
    from repro.obs.tracer import export_records_jsonl
    export_records_jsonl(transport.trace_records(), spec.trace_path)


def _traced_kickoff(tracer, loop, ref: int, method: str, origin: str,
                    kickoff):
    """Run ``kickoff`` inside a fresh ``op:<ref>`` trace root.

    The single-loop mirror of ``Shard._issue``'s traced submission:
    same trace id, same root name, same status discipline — so the two
    engines export comparable traces for the same deployment.
    """
    root = tracer.start_trace(f"op:{ref}", f"op:{method}", peer=origin,
                              start=loop.now)
    tracer._stack.append(tracer.context_of(root))
    try:
        future = kickoff()
    finally:
        tracer._stack.pop()

    def _done(f):
        result = f.result()
        status = "ok" if getattr(result, "success", True) else "failed"
        tracer.finish(root, loop.now, status)

    future.add_done_callback(_done)
    return future


def run_sharded(spec: ScaleoutSpec,
                deployment: Deployment | None = None) -> ScaleoutReport:
    """Run the deployment on the windowed sharded transport."""
    deployment = deployment or build_deployment(spec)
    if spec.workload == "mediation":
        return _run_sharded_mediation(spec, deployment)
    started = time.perf_counter()
    transport = ShardedTransport(
        spec.num_shards, latency=ConstantLatency(spec.latency_delay),
        seed=spec.seed, mode=spec.mode)
    owner = partition_paths(deployment.assignment, spec.num_shards)
    peers = {node_id: _make_peer(spec, deployment, node_id)
             for node_id in sorted(deployment.assignment)}
    _preload(deployment, peers)
    for node_id, peer in peers.items():
        transport.add_peer(peer, owner[node_id])
    for at, node_id, online in deployment.toggles:
        transport.set_online_at(at, node_id, online)
    if spec.trace_path is not None:
        transport.install_tracer()
    if spec.faults is not None:
        transport.install_fault_plan(spec.faults)
    transport.start()

    report = ScaleoutReport(engine=f"sharded/{spec.mode}",
                            num_peers=spec.num_peers,
                            num_shards=spec.num_shards)
    for wave_index, wave in enumerate(deployment.waves):
        if spec.churn:
            transport.run_until(wave_index * spec.wave_interval)
        for origin, key in wave:
            transport.submit(origin, "retrieve", key)
            report.ops_issued += 1
        if not spec.churn:
            transport.run_until_quiescent()
    if spec.churn:
        transport.run_until(spec.duration)
    transport.run_until_quiescent()

    stats = transport.stop()
    _export_sharded_trace(transport, spec)
    merged = transport.metrics_snapshot()
    report.outcomes = dict(transport.completed)
    _fill_outcome_counts(report)
    report.messages_sent = merged["messages_sent"]
    report.messages_dropped = merged["messages_dropped"]
    report.drops_by_reason = merged["drops_by_reason"]
    report.faults_by_kind = dict(merged.get("faults_by_kind", {}))
    report.events_processed = merged["events_processed"]
    report.per_shard_peak_rss_kb = [s["peak_rss_kb"] for s in stats]
    report.peak_rss_kb = max(report.per_shard_peak_rss_kb)
    report.virtual_time = transport.now
    report.wall_clock_s = time.perf_counter() - started
    return report


def _run_sharded_mediation(spec: ScaleoutSpec,
                           deployment: Deployment) -> ScaleoutReport:
    """Mediation workload on the sharded transport.

    Every query crosses the transport boundary as one attributed
    ``search_for`` submission; engine batches go through
    :meth:`ShardedGridVine.run_batch` (one attributed
    ``execute_planned_batch`` submission).  All of a wave's operations
    issue at the same window boundary, so they execute concurrently —
    exactly like the in-process wave's synchronous kickoffs.
    """
    from repro.mediation.sharded import ShardedGridVine

    med = deployment.mediation
    assert med is not None
    started = time.perf_counter()
    transport = ShardedTransport(
        spec.num_shards, latency=ConstantLatency(spec.latency_delay),
        seed=spec.seed, mode=spec.mode)
    owner = partition_paths(deployment.assignment, spec.num_shards)
    peers = {node_id: _make_peer(spec, deployment, node_id)
             for node_id in sorted(deployment.assignment)}
    _preload_mediation(deployment, peers)
    for node_id, peer in peers.items():
        transport.add_peer(peer, owner[node_id])
    for at, node_id, online in deployment.toggles:
        transport.set_online_at(at, node_id, online)
    if spec.trace_path is not None:
        transport.install_tracer()
    if spec.faults is not None:
        transport.install_fault_plan(spec.faults)
    transport.start()
    facade = ShardedGridVine(transport, mappings=med.mappings)
    engine = (facade.create_engine(max_hops=spec.query_max_hops)
              if spec.batch_queries > 0 else None)

    report = ScaleoutReport(engine=f"sharded/{spec.mode}",
                            num_peers=spec.num_peers,
                            num_shards=spec.num_shards)
    query_refs: list[int] = []
    next_ref = 0
    for wave_index, wave in enumerate(med.query_waves):
        if spec.churn:
            transport.run_until(wave_index * spec.wave_interval)
        for origin, query in wave:
            ref = transport.submit(
                origin, "search_for", query, spec.strategy,
                spec.query_max_hops, spec.query_limit,
                summarize=summarize_query_outcome, attribute=True)
            query_refs.append(ref)
            next_ref = ref + 1
            report.ops_issued += 1
        batch = med.batch_waves[wave_index]
        if batch is not None:
            # The engine submits through the facade's run_batch seam
            # and drives the shards to quiescence, so the wave's
            # individual queries run concurrently with the batch.
            # Its submission consumes the next controller ref — the
            # key the in-process leg stores the same batch under.
            origin, queries = batch
            result = engine.execute_batch(list(queries), origin=origin)
            report.outcomes[next_ref] = summarize_batch_result(result)
            next_ref += 1
            report.ops_issued += 1
        elif not spec.churn:
            transport.run_until_quiescent()
    if spec.churn:
        transport.run_until(spec.duration)
    transport.run_until_quiescent()

    stats = transport.stop()
    _export_sharded_trace(transport, spec)
    merged = transport.metrics_snapshot()
    operations = merged["operations"]
    for ref in query_refs:
        report.outcomes[ref] = (transport.completed[ref]
                                + (operations.get(f"op:{ref}", 0),))
    _fill_outcome_counts(report)
    report.messages_sent = merged["messages_sent"]
    report.messages_dropped = merged["messages_dropped"]
    report.drops_by_reason = merged["drops_by_reason"]
    report.faults_by_kind = dict(merged.get("faults_by_kind", {}))
    report.events_processed = merged["events_processed"]
    report.per_shard_peak_rss_kb = [s["peak_rss_kb"] for s in stats]
    report.peak_rss_kb = max(report.per_shard_peak_rss_kb)
    report.virtual_time = transport.now
    report.wall_clock_s = time.perf_counter() - started
    return report


def run_inprocess(spec: ScaleoutSpec,
                  deployment: Deployment | None = None) -> ScaleoutReport:
    """Run the identical deployment on the single-loop transport."""
    deployment = deployment or build_deployment(spec)
    if spec.workload == "mediation":
        return _run_inprocess_mediation(spec, deployment)
    started = time.perf_counter()
    net = InProcessTransport(latency=ConstantLatency(spec.latency_delay),
                             rng=random.Random(f"{spec.seed}/latency"))
    peers = {node_id: _make_peer(spec, deployment, node_id)
             for node_id in sorted(deployment.assignment)}
    _preload(deployment, peers)
    for peer in peers.values():
        net.attach(peer)
    if spec.faults is not None:
        from repro.faultlab.injector import install_plan
        install_plan(net, spec.faults)
    tracer = _install_inprocess_tracer(net, spec)
    loop = net.loop
    for at, node_id, online in deployment.toggles:
        loop.schedule_at(at, net.set_online, node_id, online)

    report = ScaleoutReport(engine="inprocess", num_peers=spec.num_peers,
                            num_shards=1)
    outcomes: dict[int, tuple] = {}
    ref = 0
    for wave_index, wave in enumerate(deployment.waves):
        if spec.churn:
            loop.run_until(wave_index * spec.wave_interval)
        pending = []
        for origin, key in wave:
            if tracer is None:
                future = peers[origin].retrieve(key)
            else:
                future = _traced_kickoff(
                    tracer, loop, ref, "retrieve", origin,
                    lambda o=origin, k=key: peers[o].retrieve(k))
            future.add_done_callback(
                lambda f, r=ref: outcomes.__setitem__(
                    r, summarize_op_result(f.result())))
            pending.append(future)
            ref += 1
            report.ops_issued += 1
        if not spec.churn:
            loop.run_until_idle()
    if spec.churn:
        loop.run_until(spec.duration)
    loop.run_until_idle()

    _export_inprocess_trace(tracer, spec)
    report.outcomes = outcomes
    _fill_outcome_counts(report)
    snap = net.metrics.snapshot()
    report.messages_sent = snap["messages_sent"]
    report.messages_dropped = snap["messages_dropped"]
    report.drops_by_reason = snap["drops_by_reason"]
    report.faults_by_kind = dict(snap.get("faults_by_kind", {}))
    report.events_processed = loop.events_processed
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    report.per_shard_peak_rss_kb = [rss]
    report.peak_rss_kb = rss
    report.virtual_time = loop.now
    report.wall_clock_s = time.perf_counter() - started
    return report


def _run_inprocess_mediation(spec: ScaleoutSpec,
                             deployment: Deployment) -> ScaleoutReport:
    """Mediation workload on the single-loop transport.

    Mirrors the sharded leg submission for submission: queries are
    kicked off inside ``op:<ref>`` attribution scopes (the same tags
    the sharded controller assigns, in the same global order), engine
    batches run through ``GridVineNetwork.run_batch``, and summaries
    land under the same refs — so ``report.outcomes`` compares equal
    across engines, message counts included.
    """
    from repro.engine.core import QueryEngine
    from repro.mediation.network import GridVineNetwork

    med = deployment.mediation
    assert med is not None
    started = time.perf_counter()
    net = InProcessTransport(latency=ConstantLatency(spec.latency_delay),
                             rng=random.Random(f"{spec.seed}/latency"))
    peers = {node_id: _make_peer(spec, deployment, node_id)
             for node_id in sorted(deployment.assignment)}
    _preload_mediation(deployment, peers)
    for peer in peers.values():
        net.attach(peer)
    gridvine = GridVineNetwork(net, peers,
                               rng=random.Random(f"{spec.seed}/harness"),
                               failover=spec.failover,
                               refs_per_level=spec.refs_per_level)
    engine = None
    if spec.batch_queries > 0:
        # Mirror backfill by replay, exactly like the sharded facade —
        # no overlay crawl, so the engines plan from identical graphs
        # and preload generates zero traffic on either engine.
        engine = QueryEngine(gridvine, max_hops=spec.query_max_hops)
        for mapping in med.mappings:
            engine._on_mapping_event("insert", mapping)
    if spec.faults is not None:
        from repro.faultlab.injector import install_plan
        install_plan(net, spec.faults)
    tracer = _install_inprocess_tracer(net, spec)
    loop = net.loop
    for at, node_id, online in deployment.toggles:
        loop.schedule_at(at, net.set_online, node_id, online)

    report = ScaleoutReport(engine="inprocess", num_peers=spec.num_peers,
                            num_shards=1)
    metrics = net.metrics
    pending: dict[int, tuple] = {}
    next_ref = 0
    for wave_index, wave in enumerate(med.query_waves):
        if spec.churn:
            loop.run_until(wave_index * spec.wave_interval)
        for origin, query in wave:
            ref = next_ref
            next_ref += 1
            tag = f"op:{ref}"
            metrics.begin_operation(tag)
            with net.operation(tag):
                if tracer is None:
                    future = peers[origin].search_for(
                        query, strategy=spec.strategy,
                        max_hops=spec.query_max_hops,
                        limit=spec.query_limit)
                else:
                    future = _traced_kickoff(
                        tracer, loop, ref, "search_for", origin,
                        lambda o=origin, q=query: peers[o].search_for(
                            q, strategy=spec.strategy,
                            max_hops=spec.query_max_hops,
                            limit=spec.query_limit))
            future.add_done_callback(
                lambda f, r=ref: pending.__setitem__(
                    r, summarize_query_outcome(f.result())))
            report.ops_issued += 1
        batch = med.batch_waves[wave_index]
        if batch is not None:
            origin, queries = batch
            result = engine.execute_batch(list(queries), origin=origin)
            report.outcomes[next_ref] = summarize_batch_result(result)
            next_ref += 1
            report.ops_issued += 1
        if not spec.churn:
            loop.run_until_idle()
    if spec.churn:
        loop.run_until(spec.duration)
    loop.run_until_idle()

    for ref, summary in pending.items():
        tag = f"op:{ref}"
        report.outcomes[ref] = summary + (metrics.operation_messages(tag),)
        metrics.end_operation(tag)
    _export_inprocess_trace(tracer, spec)
    _fill_outcome_counts(report)
    snap = metrics.snapshot()
    report.messages_sent = snap["messages_sent"]
    report.messages_dropped = snap["messages_dropped"]
    report.drops_by_reason = snap["drops_by_reason"]
    report.faults_by_kind = dict(snap.get("faults_by_kind", {}))
    report.events_processed = loop.events_processed
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    report.per_shard_peak_rss_kb = [rss]
    report.peak_rss_kb = rss
    report.virtual_time = loop.now
    report.wall_clock_s = time.perf_counter() - started
    return report


def _fill_outcome_counts(report: ScaleoutReport) -> None:
    report.ops_completed = len(report.outcomes)
    for summary in report.outcomes.values():
        tag = summary[0]
        if tag == "q":
            _, complete, rows, reformulations, messages = summary
            if complete:
                report.successes += 1
            report.rows_returned += len(rows)
            report.reformulations += reformulations
            report.query_messages += messages
        elif tag == "b":
            (_, per_query, messages, _fetched, _total,
             _issued, _skipped) = summary
            if per_query and all(q[1] for q in per_query):
                report.successes += 1
            report.rows_returned += sum(len(q[2]) for q in per_query)
            report.reformulations += sum(q[3] for q in per_query)
            report.query_messages += messages
        else:
            success, hops, _latency, attempts, _n = summary
            if success:
                report.successes += 1
                report.total_hops += hops
            report.total_attempts += attempts
