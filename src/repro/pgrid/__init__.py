"""P-Grid structured overlay (the paper's *overlay layer*).

A from-scratch implementation of the P-Grid distributed access
structure used by GridVine:

* peers are leaves of a virtual binary search trie; each peer ``p``
  owns the key-space prefix ``pi(p)``;
* for every trie level ``i < |pi(p)|`` a peer keeps *references* to
  peers covering the complementary subtree ``pi(p)[:i] + flip`` —
  prefix routing resolves any key in at most ``|pi(p)|`` forwarding
  steps, i.e. ``O(log |Pi|)`` messages for balanced and unbalanced
  tries alike;
* peers sharing a path form a *replica group* ``sigma(p)`` and
  duplicate each other's content for fault tolerance;
* the two primitives of the paper, ``Retrieve(key)`` and
  ``Update(key, value)``, are exposed both asynchronously (futures)
  and synchronously (running the event loop to completion).

Construction comes in two flavours: :func:`~repro.pgrid.construction.
assign_paths` builds the trie top-down from an optional key sample
(reproducing P-Grid's storage load balancing — the trie adapts its
shape to the data distribution), and
:func:`~repro.pgrid.construction.build_by_exchanges` grows the trie
bottom-up through randomized pairwise exchanges, the decentralized
protocol of the original P-Grid papers.
"""

from repro.pgrid.peer import OpResult, PGridPeer
from repro.pgrid.construction import (
    assign_paths,
    build_by_exchanges,
    populate_routing_tables,
)
from repro.pgrid.maintenance import MaintenanceProcess
from repro.pgrid.membership import (
    MembershipError,
    graceful_leave,
    join_network,
)
from repro.pgrid.overlay import PGridOverlay

__all__ = [
    "PGridPeer",
    "OpResult",
    "assign_paths",
    "build_by_exchanges",
    "populate_routing_tables",
    "MaintenanceProcess",
    "MembershipError",
    "join_network",
    "graceful_leave",
    "PGridOverlay",
]
