"""Overlay maintenance: routing-table repair and replica anti-entropy.

P-Grid's Retrieve/Update "provide probabilistic guarantees for data
consistency and are efficient even in highly unreliable, dynamic
environments" (§2.1).  Retries and replica groups give the
*probabilistic* part; this module supplies the *repair* part that keeps
the guarantees from eroding under sustained churn:

* **Reference probing** — each peer periodically probes the references
  of a random trie level; references that miss the ack deadline are
  dropped, and replacement candidates are requested from surviving
  references (which answer with the peers they know — their own
  references and replicas).
* **Replica anti-entropy** — each peer periodically pushes its store
  snapshot to a random replica; the replica merges values it missed
  while offline (``local_merge`` dedupes, so repeated pushes are
  idempotent).

:class:`MaintenanceProcess` schedules both activities for every peer
of an overlay with per-peer jitter (synchronized maintenance storms
would be unrealistic and would hide contention effects).

Both message types additionally **piggyback synopsis digests**
(:mod:`repro.stats`): probes, probe acks and sync pushes carry a
bounded batch of per-peer statistics in their payload, so cardinality
estimates spread epidemically at zero extra message cost.

.. warning::
   While a maintenance process is running, the event queue never
   drains — ticks reschedule themselves indefinitely.  Advance the
   simulation with ``loop.run_until(time)`` or
   ``loop.run_until_complete(future)``; ``run_until_idle()`` would
   spin forever.
"""

from __future__ import annotations

import itertools
import random

from repro.pgrid.peer import PGridPeer


class MaintenanceProcess:
    """Drives periodic maintenance for a set of peers.

    Parameters
    ----------
    peers:
        The peers to maintain (typically ``overlay.peers``).
    interval:
        Mean seconds between maintenance ticks per peer.
    probe_timeout:
        Seconds a probed reference has to ack before being dropped.
    refs_per_level:
        Target routing-table redundancy; levels below target trigger
        replacement requests.
    rng:
        Randomness for jitter and level selection.
    repair_thin_levels:
        When True, every tick additionally requests replacements for
        each routing level below target.  The default (False, the
        historical behaviour — repair fires only at the moment a
        probe drops a reference) cannot refill a level that was
        *emptied* while its owner was partitioned away, a gap the
        fault lab surfaced; scenarios with injected faults enable
        this.  Off by default so baseline message accounting stays
        bit-identical.
    """

    def __init__(
        self,
        peers: dict[str, PGridPeer],
        interval: float = 30.0,
        probe_timeout: float = 5.0,
        refs_per_level: int = 2,
        rng: random.Random | None = None,
        repair_thin_levels: bool = False,
    ) -> None:
        if interval <= 0 or probe_timeout <= 0:
            raise ValueError("interval and probe_timeout must be positive")
        self.peers = peers
        self.interval = interval
        self.probe_timeout = probe_timeout
        self.refs_per_level = refs_per_level
        self.rng = rng if rng is not None else random.Random(0)
        self.repair_thin_levels = repair_thin_levels
        self._tokens = itertools.count()
        self._running = False
        #: consecutive missed probes per (peer, ref) — a reference is
        #: only dropped after ``miss_threshold`` misses in a row, so a
        #: peer rebooting across one probe window is not evicted
        self.miss_threshold = 2
        self._misses: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first tick for every peer (with jitter).

        The first ticks are bulk-inserted per event loop
        (:meth:`~repro.simnet.events.EventLoop.schedule_batch`): at
        deployment scale this start-up storm is thousands of timers,
        and heapifying once beats pushing them one by one.  Jitter is
        still drawn per peer in sorted order, so the schedule is
        bit-identical to the sequential form.
        """
        self._running = True
        self._tracked: set[str] = set()
        by_loop: dict[int, tuple] = {}
        for node_id in sorted(self.peers):
            self._tracked.add(node_id)
            delay = self.rng.uniform(0, self.interval)
            peer = self.peers.get(node_id)
            if peer is None or peer.network is None:
                continue
            loop = peer.loop
            _loop, items = by_loop.setdefault(id(loop), (loop, []))
            items.append((delay, self._tick, (node_id,)))
        for loop, items in by_loop.values():
            loop.schedule_batch(items)
        self._schedule_roster_scan()

    def stop(self) -> None:
        """Stop scheduling new ticks (in-flight ones still fire)."""
        self._running = False

    def _schedule_roster_scan(self) -> None:
        """Periodically pick up peers that joined after start()."""
        loop = None
        for peer in self.peers.values():
            if peer.network is not None:
                loop = peer.loop
                break
        if loop is None:
            return
        loop.schedule(self.interval, self._roster_scan)

    def _roster_scan(self) -> None:
        if not self._running:
            return
        for node_id in sorted(self.peers):
            if node_id not in self._tracked:
                self._tracked.add(node_id)
                self._schedule_tick(node_id,
                                    self.rng.uniform(0, self.interval))
        self._schedule_roster_scan()

    def _schedule_tick(self, node_id: str, delay: float) -> None:
        peer = self.peers.get(node_id)
        if peer is None or peer.network is None:
            return
        peer.loop.schedule(delay, self._tick, node_id)

    def _tick(self, node_id: str) -> None:
        if not self._running:
            return
        peer = self.peers.get(node_id)
        if peer is None or peer.network is None:
            return
        if peer.online:
            self._probe_level(peer)
            self._push_to_replica(peer)
            if self.repair_thin_levels:
                self._repair_thin(peer)
        jittered = self.rng.uniform(0.5, 1.5) * self.interval
        self._schedule_tick(node_id, jittered)

    def _repair_thin(self, peer: PGridPeer) -> int:
        """Request replacements for each of ``peer``'s thin levels;
        returns how many levels were below target."""
        thin = 0
        for level in range(len(peer.path)):
            if len(peer.routing_table[level]) < self.refs_per_level:
                thin += 1
                self._request_replacements(peer, level)
        return thin

    def repair_sweep(self) -> int:
        """Request replacements for every below-target routing level.

        The periodic ticks only repair a level at the moment a probe
        drops one of its references; a level emptied while its owner
        was offline (or partitioned away) has no refs left to probe
        and would stay empty forever.  A sweep walks every online
        peer's table directly and fires the usual replacement
        discovery for each thin level — the fault lab runs a few of
        these after heal to give the overlay its claimed repair before
        checking eventual invariants.  Returns the number of thin
        levels a request was issued for.
        """
        issued = 0
        for node_id in sorted(self.peers):
            peer = self.peers[node_id]
            if peer.network is None or not peer.online:
                continue
            issued += self._repair_thin(peer)
        return issued

    # ------------------------------------------------------------------
    # Reference probing & replacement
    # ------------------------------------------------------------------

    def _probe_level(self, peer: PGridPeer) -> None:
        if not peer.routing_table:
            return
        level = self.rng.randrange(len(peer.routing_table))
        for ref in list(peer.routing_table[level]):
            token = f"{peer.node_id}:{next(self._tokens)}"
            peer._probe_pending[token] = (level, ref)
            peer.maintenance_stats["probes_sent"] += 1
            payload: dict = {"token": token}
            if peer.stats_gossip:
                # Piggyback synopsis digests on the probe we are
                # sending anyway — statistics dissemination costs zero
                # extra messages (see repro.stats.gossip).
                payload["synopses"] = peer.gossip_synopses()
            peer.send(ref, "probe", payload)
            peer.loop.schedule(self.probe_timeout, self._check_probe,
                               peer.node_id, token, level, ref)

    def _check_probe(self, node_id: str, token: str,
                     level: int, ref: str) -> None:
        peer = self.peers.get(node_id)
        if peer is None:
            return
        outcome = peer._probe_pending.pop(token, None)
        if outcome is None:
            # Ack arrived in time: the reference is alive; forgive any
            # earlier misses.
            self._misses.pop((node_id, ref), None)
            return
        if not peer.online:
            # The prober itself crashed during the probe window: the
            # missing ack says nothing about the reference (it may well
            # have answered into the void).  Withhold judgement.
            return
        misses = self._misses.get((node_id, ref), 0) + 1
        self._misses[(node_id, ref)] = misses
        if misses < self.miss_threshold:
            return
        del self._misses[(node_id, ref)]
        if level < len(peer.routing_table) and ref in peer.routing_table[level]:
            peer.routing_table[level].remove(ref)
            peer.maintenance_stats["refs_dropped"] += 1
        # quarantine the dead ref so replacement offers (which may
        # include it — e.g. a live replica vouching for its dead
        # sibling) do not immediately reinstate it
        peer.ref_blacklist[ref] = peer.loop.now + 2 * self.interval
        self._request_replacements(peer, level)

    def _request_replacements(self, peer: PGridPeer, level: int) -> None:
        """Discover live peers covering the thin level's complement.

        If a reference at the level survives, ask it directly (it
        covers the complement, so its replica group is exactly the
        candidate set).  If the level is *empty* — the whole known
        replica group died — fall back to a routed ``refs_lookup``
        launched from a random live helper: the helper's routing
        tables differ from ours, so the lookup can reach the
        complement around the gap that we cannot cross ourselves.
        """
        if level >= len(peer.path):
            return
        if len(peer.routing_table[level]) >= self.refs_per_level:
            return
        complement = peer.path.sibling_prefix(level)
        surviving = list(peer.routing_table[level])
        if surviving:
            peer.send(self.rng.choice(surviving), "refs_request", {
                "prefix": complement.bits,
                "level": level,
            })
            return
        helpers = [
            ref
            for refs in peer.routing_table for ref in refs
        ] + peer.replicas
        if peer.network is not None:
            live = [h for h in helpers if peer.network.is_online(h)]
            helpers = live or helpers
        if not helpers:
            return
        helper = self.rng.choice(helpers)
        op_id = f"refslkp!{level}!{peer.node_id}:{next(self._tokens)}"
        peer.send(helper, "route", {
            "op": "refs_lookup",
            "op_id": op_id,
            "key": complement.bits,
            "origin": peer.node_id,
            "value": None,
        })

    # ------------------------------------------------------------------
    # Replica anti-entropy
    # ------------------------------------------------------------------

    def _push_to_replica(self, peer: PGridPeer) -> None:
        if not peer.replicas:
            return
        replica = self.rng.choice(peer.replicas)
        items = [
            (bits, value)
            for bits, values in peer.store.items()
            for value in values
        ]
        peer.maintenance_stats["sync_pushes"] += 1
        payload: dict = {"items": items}
        if peer.stats_gossip:
            payload["synopses"] = peer.gossip_synopses()
        peer.send(replica, "sync_push", payload)
