"""Building the P-Grid trie: path assignment and routing tables.

Two construction modes are provided.

:func:`assign_paths` (top-down, sample-driven)
    Splits the key space recursively so that each leaf carries roughly
    the same share of a *key sample*.  With an order-preserving hash the
    data distribution is skewed, so the resulting trie is unbalanced in
    depth but balanced in storage load — this reproduces P-Grid's
    "index load-balancing" role in the GridVine architecture.

:func:`build_by_exchanges` (bottom-up, decentralized)
    The randomized pairwise-exchange protocol of the original P-Grid
    work: peers start with empty paths, and whenever two peers with the
    same path meet they split it (one appends ``0``, the other ``1``)
    and adopt each other as level references; peers with diverging
    paths exchange references at their divergence level and recursively
    forward the meeting into deeper levels.  Used by tests and the
    construction ablation to show the decentralized process converges
    to the same structure the top-down builder produces directly.

:func:`populate_routing_tables` fills level references for peers with
already-assigned paths, and :func:`replica_groups` wires ``sigma(p)``.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.util.keys import Key, common_prefix_length


def _split_counts(total_leaves: int, left_weight: int, right_weight: int) -> tuple[int, int]:
    """Apportion ``total_leaves`` between two subtrees by sample weight.

    Both sides get at least one leaf (we only call this when
    ``total_leaves >= 2``), and the split follows the sample proportions
    as closely as integer arithmetic allows.
    """
    weight = left_weight + right_weight
    if weight == 0:
        left = total_leaves // 2
    else:
        left = round(total_leaves * left_weight / weight)
    left = max(1, min(total_leaves - 1, left))
    return left, total_leaves - left


def _build_leaf_paths(
    num_leaves: int,
    sample: Sequence[Key],
    prefix: Key,
    max_depth: int,
) -> list[Key]:
    """Recursively split ``prefix`` into ``num_leaves`` leaf paths."""
    if num_leaves <= 1 or len(prefix) >= max_depth:
        return [prefix]
    left_sample = [k for k in sample if k.bit(len(prefix)) == "0"]
    right_sample = [k for k in sample if k.bit(len(prefix)) == "1"]
    left_leaves, right_leaves = _split_counts(
        num_leaves, len(left_sample), len(right_sample)
    )
    return (
        _build_leaf_paths(left_leaves, left_sample, prefix.append("0"), max_depth)
        + _build_leaf_paths(right_leaves, right_sample, prefix.append("1"), max_depth)
    )


def assign_paths(
    num_peers: int,
    key_sample: Sequence[Key] | None = None,
    replication: int = 1,
    key_bits: int = 128,
    rng: random.Random | None = None,
) -> dict[str, Key]:
    """Assign trie paths to ``num_peers`` peers.

    Parameters
    ----------
    num_peers:
        Number of peers to place.
    key_sample:
        Keys representative of the data to be indexed.  When given, the
        trie is shaped so every leaf covers roughly the same number of
        sample keys (load balancing); when omitted the trie is split
        evenly (balanced in depth).
    replication:
        Target replica-group size: the trie gets
        ``ceil(num_peers / replication)`` leaves and peers are dealt to
        leaves round-robin, so each leaf ends up with ``replication``
        (±1) replicas.
    key_bits:
        Maximum trie depth (key width).
    rng:
        Used to shuffle the peer-to-leaf assignment.

    Returns a mapping from node id (``"peer-<i>"``) to path.
    """
    if num_peers <= 0:
        raise ValueError("num_peers must be positive")
    if replication <= 0:
        raise ValueError("replication must be positive")
    rng = rng if rng is not None else random.Random(0)
    num_leaves = max(1, (num_peers + replication - 1) // replication)
    sample = list(key_sample) if key_sample else []
    leaves = _build_leaf_paths(num_leaves, sample, Key(""), key_bits)
    node_ids = [f"peer-{i}" for i in range(num_peers)]
    rng.shuffle(node_ids)
    assignment: dict[str, Key] = {}
    for index, node_id in enumerate(node_ids):
        assignment[node_id] = leaves[index % len(leaves)]
    return assignment


def replica_groups(assignment: dict[str, Key]) -> dict[Key, list[str]]:
    """Group node ids by identical path (the replica groups sigma)."""
    groups: dict[Key, list[str]] = {}
    for node_id, path in sorted(assignment.items()):
        groups.setdefault(path, []).append(node_id)
    return groups


def _covers(path: Key, prefix: Key) -> bool:
    """Whether a peer at ``path`` can serve keys under ``prefix``.

    True when the two are prefix-comparable: the peer's subtree either
    contains ``prefix`` or is contained in it (unbalanced tries make
    both directions possible).
    """
    return path.is_prefix_of(prefix) or prefix.is_prefix_of(path)


def populate_routing_tables(
    peers: dict[str, "PGridPeerLike"],
    refs_per_level: int = 2,
    rng: random.Random | None = None,
) -> None:
    """Fill each peer's level references and replica list in place.

    For peer ``p`` and level ``i``, eligible references are all peers
    covering the complementary prefix ``pi(p)[:i] + flip`` — forwarding
    to any of them strictly increases the common prefix with any key
    that diverges from ``pi(p)`` at level ``i``, which is what makes
    greedy prefix routing terminate in at most ``|pi(p)|`` hops.
    """
    rng = rng if rng is not None else random.Random(0)
    by_path: list[tuple[Key, str]] = [
        (peer.path, node_id) for node_id, peer in peers.items()
    ]
    for node_id, peer in peers.items():
        peer.replicas = sorted(
            other_id
            for other_path, other_id in by_path
            if other_id != node_id and other_path == peer.path
        )
        peer.routing_table = []
        for level in range(len(peer.path)):
            complement = peer.path.sibling_prefix(level)
            candidates = [
                other_id
                for other_path, other_id in by_path
                if other_id != node_id and _covers(other_path, complement)
            ]
            rng.shuffle(candidates)
            peer.routing_table.append(sorted(candidates[:refs_per_level]))


class PGridPeerLike:
    """Structural type for :func:`populate_routing_tables` (documentation
    only — any object with ``path``, ``routing_table`` and ``replicas``
    attributes qualifies)."""

    path: Key
    routing_table: list[list[str]]
    replicas: list[str]


# ---------------------------------------------------------------------------
# Decentralized, exchange-based construction
# ---------------------------------------------------------------------------

class _ExchangePeer:
    """Mutable per-peer state for the exchange-based builder."""

    __slots__ = ("node_id", "path", "refs")

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.path = Key("")
        # level -> set of node ids
        self.refs: list[set[str]] = []

    def _ensure_level(self, level: int) -> None:
        while len(self.refs) <= level:
            self.refs.append(set())


def _exchange(a: _ExchangePeer, b: _ExchangePeer, max_depth: int,
              rng: random.Random) -> None:
    """One pairwise meeting of the P-Grid construction protocol."""
    cpl = common_prefix_length(a.path, b.path)
    if cpl == len(a.path) and cpl == len(b.path):
        # Same path: split if depth allows, becoming each other's
        # reference at the new level.
        if len(a.path) >= max_depth:
            return
        first, second = (a, b) if rng.random() < 0.5 else (b, a)
        first.path = first.path.append("0")
        second.path = second.path.append("1")
        level = len(first.path) - 1
        first._ensure_level(level)
        second._ensure_level(level)
        first.refs[level].add(second.node_id)
        second.refs[level].add(first.node_id)
        return
    if cpl < len(a.path) and cpl < len(b.path):
        # Paths diverge: record each other as references at the
        # divergence level.
        a._ensure_level(cpl)
        b._ensure_level(cpl)
        a.refs[cpl].add(b.node_id)
        b.refs[cpl].add(a.node_id)
        return
    # One path is a strict prefix of the other: the shallower peer can
    # deepen by adopting the complement of the deeper peer's next bit.
    shallow, deep = (a, b) if len(a.path) < len(b.path) else (b, a)
    next_bit = deep.path.bit(len(shallow.path))
    shallow.path = shallow.path.append("1" if next_bit == "0" else "0")
    level = len(shallow.path) - 1
    shallow._ensure_level(level)
    deep._ensure_level(level)
    shallow.refs[level].add(deep.node_id)
    deep.refs[level].add(shallow.node_id)


def build_by_exchanges(
    num_peers: int,
    meetings: int | None = None,
    max_depth: int | None = None,
    rng: random.Random | None = None,
) -> dict[str, Key]:
    """Grow a trie through random pairwise exchanges.

    Peers all start at the trie root and refine their paths through
    ``meetings`` random encounters (default ``40 * n * log2(n)``, ample
    for convergence at test scale).  ``max_depth`` bounds path length
    (default ``ceil(log2(num_peers)) + 2``), preventing two chatty
    peers from splitting forever.

    Returns the final node-id-to-path assignment; reference sets built
    during exchanges are discarded — callers typically re-derive
    routing tables with :func:`populate_routing_tables`, which also
    covers pairs that never met.
    """
    if num_peers <= 0:
        raise ValueError("num_peers must be positive")
    rng = rng if rng is not None else random.Random(0)
    if max_depth is None:
        max_depth = max(1, (num_peers - 1).bit_length() + 2)
    if meetings is None:
        log_n = max(1, (num_peers - 1).bit_length())
        meetings = 40 * num_peers * log_n
    peers = [_ExchangePeer(f"peer-{i}") for i in range(num_peers)]
    if num_peers == 1:
        return {peers[0].node_id: peers[0].path}
    for _ in range(meetings):
        a, b = rng.sample(peers, 2)
        _exchange(a, b, max_depth, rng)
    return {p.node_id: p.path for p in peers}
