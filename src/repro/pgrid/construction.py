"""Building the P-Grid trie: path assignment and routing tables.

Two construction modes are provided.

:func:`assign_paths` (top-down, sample-driven)
    Splits the key space recursively so that each leaf carries roughly
    the same share of a *key sample*.  With an order-preserving hash the
    data distribution is skewed, so the resulting trie is unbalanced in
    depth but balanced in storage load — this reproduces P-Grid's
    "index load-balancing" role in the GridVine architecture.

:func:`build_by_exchanges` (bottom-up, decentralized)
    The randomized pairwise-exchange protocol of the original P-Grid
    work: peers start with empty paths, and whenever two peers with the
    same path meet they split it (one appends ``0``, the other ``1``)
    and adopt each other as level references; peers with diverging
    paths exchange references at their divergence level and recursively
    forward the meeting into deeper levels.  Used by tests and the
    construction ablation to show the decentralized process converges
    to the same structure the top-down builder produces directly.

:func:`populate_routing_tables` fills level references for peers with
already-assigned paths, and :func:`replica_groups` wires ``sigma(p)``.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.util.keys import Key, common_prefix_length


def _split_counts(total_leaves: int, left_weight: int, right_weight: int) -> tuple[int, int]:
    """Apportion ``total_leaves`` between two subtrees by sample weight.

    Both sides get at least one leaf (we only call this when
    ``total_leaves >= 2``), and the split follows the sample proportions
    as closely as integer arithmetic allows.
    """
    weight = left_weight + right_weight
    if weight == 0:
        left = total_leaves // 2
    else:
        left = round(total_leaves * left_weight / weight)
    left = max(1, min(total_leaves - 1, left))
    return left, total_leaves - left


def _build_leaf_paths(
    num_leaves: int,
    sample: Sequence[Key],
    prefix: Key,
    max_depth: int,
) -> list[Key]:
    """Recursively split ``prefix`` into ``num_leaves`` leaf paths."""
    if num_leaves <= 1 or len(prefix) >= max_depth:
        return [prefix]
    left_sample = [k for k in sample if k.bit(len(prefix)) == "0"]
    right_sample = [k for k in sample if k.bit(len(prefix)) == "1"]
    left_leaves, right_leaves = _split_counts(
        num_leaves, len(left_sample), len(right_sample)
    )
    return (
        _build_leaf_paths(left_leaves, left_sample, prefix.append("0"), max_depth)
        + _build_leaf_paths(right_leaves, right_sample, prefix.append("1"), max_depth)
    )


def assign_paths(
    num_peers: int,
    key_sample: Sequence[Key] | None = None,
    replication: int = 1,
    key_bits: int = 128,
    rng: random.Random | None = None,
) -> dict[str, Key]:
    """Assign trie paths to ``num_peers`` peers.

    Parameters
    ----------
    num_peers:
        Number of peers to place.
    key_sample:
        Keys representative of the data to be indexed.  When given, the
        trie is shaped so every leaf covers roughly the same number of
        sample keys (load balancing); when omitted the trie is split
        evenly (balanced in depth).
    replication:
        Target replica-group size: the trie gets
        ``ceil(num_peers / replication)`` leaves and peers are dealt to
        leaves round-robin, so each leaf ends up with ``replication``
        (±1) replicas.
    key_bits:
        Maximum trie depth (key width).
    rng:
        Used to shuffle the peer-to-leaf assignment.

    Returns a mapping from node id (``"peer-<i>"``) to path.
    """
    if num_peers <= 0:
        raise ValueError("num_peers must be positive")
    if replication <= 0:
        raise ValueError("replication must be positive")
    rng = rng if rng is not None else random.Random(0)
    num_leaves = max(1, (num_peers + replication - 1) // replication)
    sample = list(key_sample) if key_sample else []
    leaves = _build_leaf_paths(num_leaves, sample, Key(""), key_bits)
    node_ids = [f"peer-{i}" for i in range(num_peers)]
    rng.shuffle(node_ids)
    assignment: dict[str, Key] = {}
    for index, node_id in enumerate(node_ids):
        assignment[node_id] = leaves[index % len(leaves)]
    return assignment


def replica_groups(assignment: dict[str, Key]) -> dict[Key, list[str]]:
    """Group node ids by identical path (the replica groups sigma)."""
    groups: dict[Key, list[str]] = {}
    for node_id, path in sorted(assignment.items()):
        groups.setdefault(path, []).append(node_id)
    return groups


def _covers(path: Key, prefix: Key) -> bool:
    """Whether a peer at ``path`` can serve keys under ``prefix``.

    True when the two are prefix-comparable: the peer's subtree either
    contains ``prefix`` or is contained in it (unbalanced tries make
    both directions possible).
    """
    return path.is_prefix_of(prefix) or prefix.is_prefix_of(path)


def build_routing_tables(
    assignment: dict[str, Key],
    refs_per_level: int = 2,
    rng: random.Random | None = None,
) -> dict[str, tuple[list[str], list[list[str]]]]:
    """Derive replica lists and level references from a path assignment.

    The pure-data form of :func:`populate_routing_tables`: it consumes
    only a ``node_id -> path`` mapping and returns
    ``node_id -> (replicas, routing_table)``, so shard workers can
    construct their slice of peers from plain data without ever holding
    peer objects for the rest of the deployment.

    For peer ``p`` and level ``i``, eligible references are all peers
    covering the complementary prefix ``pi(p)[:i] + flip`` — forwarding
    to any of them strictly increases the common prefix with any key
    that diverges from ``pi(p)`` at level ``i``, which is what makes
    greedy prefix routing terminate in at most ``|pi(p)|`` hops.

    Exhaustive over all eligible candidates per level; for 10k+ peer
    deployments use :func:`sample_routing_tables` instead (statistically
    equivalent tables, cheaper construction).
    """
    rng = rng if rng is not None else random.Random(0)
    # A node's own path diverges from its complement prefix at the
    # complement's last bit, so a node never covers its own complement
    # (nor do its replicas): the eligible-candidate list depends only
    # on the complement, not on the asking node.  Compute each list
    # once, in assignment order, instead of scanning all peers per
    # (node, level) — the per-node shuffle below consumes the rng
    # exactly as the historical quadratic scan did.
    #
    # The covering peers of a complement ``c`` split into the subtree
    # below ``c`` (paths extending ``c``) and the ancestors of ``c``
    # (paths that are proper prefixes of it); indexing every node
    # under each prefix of its path answers both by dict lookup.
    # Merging the two halves by assignment index restores the exact
    # order the historical single-pass scan produced, so the shuffles
    # see identical inputs.
    subtree: dict[str, list[tuple[int, str]]] = {}
    at_path: dict[str, list[tuple[int, str]]] = {}
    for index, (node_id, path) in enumerate(assignment.items()):
        bits = path._bits
        entry = (index, node_id)
        for cut in range(len(bits) + 1):
            prefix_nodes = subtree.get(bits[:cut])
            if prefix_nodes is None:
                subtree[bits[:cut]] = [entry]
            else:
                prefix_nodes.append(entry)
        exact = at_path.get(bits)
        if exact is None:
            at_path[bits] = [entry]
        else:
            exact.append(entry)
    cover_cache: dict[str, list[str]] = {}
    replica_cache: dict[str, list[str]] = {}
    tables: dict[str, tuple[list[str], list[list[str]]]] = {}
    for node_id, path in assignment.items():
        path_bits = path._bits
        peers_at_path = replica_cache.get(path_bits)
        if peers_at_path is None:
            peers_at_path = replica_cache[path_bits] = sorted(
                other_id for _i, other_id in at_path[path_bits]
            )
        replicas = [p for p in peers_at_path if p != node_id]
        routing_table: list[list[str]] = []
        for level in range(len(path_bits)):
            complement = (path_bits[:level]
                          + ("1" if path_bits[level] == "0" else "0"))
            eligible = cover_cache.get(complement)
            if eligible is None:
                covering = list(subtree.get(complement, ()))
                for cut in range(len(complement)):
                    covering.extend(at_path.get(complement[:cut], ()))
                covering.sort()
                eligible = cover_cache[complement] = [
                    other_id for _i, other_id in covering
                ]
            candidates = list(eligible)
            rng.shuffle(candidates)
            routing_table.append(sorted(candidates[:refs_per_level]))
        tables[node_id] = (replicas, routing_table)
    return tables


def populate_routing_tables(
    peers: dict[str, "PGridPeerLike"],
    refs_per_level: int = 2,
    rng: random.Random | None = None,
) -> None:
    """Fill each peer's level references and replica list in place.

    A thin object-level wrapper over :func:`build_routing_tables`,
    kept bit-identical to the historical behavior (same candidate
    ordering, same rng consumption).
    """
    assignment = {node_id: peer.path for node_id, peer in peers.items()}
    tables = build_routing_tables(assignment, refs_per_level, rng)
    for node_id, peer in peers.items():
        peer.replicas, peer.routing_table = tables[node_id]


def sample_routing_tables(
    assignment: dict[str, Key],
    refs_per_level: int = 2,
    rng: random.Random | None = None,
) -> dict[str, tuple[list[str], list[list[str]]]]:
    """Near-linear routing-table construction for large deployments.

    :func:`build_routing_tables` materializes every eligible candidate
    per (peer, level) — at level 0 that is half the network, which
    makes the build quadratic and prohibitive beyond a few thousand
    peers.  This variant *samples* ``refs_per_level`` references
    directly from the candidate population using the trie structure:

    - leaf paths are sorted; the leaves under a complement prefix form
      one contiguous run (found by bisection), and when that run is
      empty exactly one shallower leaf covers the prefix (leaves
      partition the key space);
    - a prefix-sum over per-leaf member counts turns "pick a uniform
      random eligible peer" into two bisections.

    Tables are statistically equivalent to the exhaustive builder's
    (uniform choice without replacement among the same candidate set)
    but not bit-identical to it; large-scale runs use this builder for
    every engine under comparison, so A/B results stay fair.
    """
    import bisect

    rng = rng if rng is not None else random.Random(0)
    members: dict[str, list[str]] = {}
    for node_id, path in assignment.items():
        members.setdefault(path.bits, []).append(node_id)
    leaf_bits = sorted(members)
    counts = [len(members[bits]) for bits in leaf_bits]
    starts = [0] * (len(counts) + 1)
    for i, c in enumerate(counts):
        starts[i + 1] = starts[i] + c

    def _population(prefix_bits: str) -> tuple[int, int]:
        """(first leaf index, total members) of leaves covering prefix."""
        lo = bisect.bisect_left(leaf_bits, prefix_bits)
        hi = bisect.bisect_right(leaf_bits, prefix_bits + "1" * 200)
        if lo < hi:  # leaves inside the prefix subtree
            return lo, starts[hi] - starts[lo]
        # Empty run: the single shallower leaf containing the prefix.
        i = lo - 1
        while i >= 0:
            if prefix_bits.startswith(leaf_bits[i]):
                return i, counts[i]
            if not prefix_bits.startswith(leaf_bits[i][:len(prefix_bits)]):
                break
            i -= 1
        return lo, 0

    def _member_at(first_leaf: int, offset: int) -> str:
        leaf = bisect.bisect_right(starts, starts[first_leaf] + offset) - 1
        return members[leaf_bits[leaf]][starts[first_leaf] + offset - starts[leaf]]

    tables: dict[str, tuple[list[str], list[list[str]]]] = {}
    for node_id, path in assignment.items():
        replicas = sorted(m for m in members[path.bits] if m != node_id)
        routing_table: list[list[str]] = []
        for level in range(len(path)):
            complement = path.sibling_prefix(level)
            first, total = _population(complement.bits)
            take = min(refs_per_level, total)
            if take == 0:
                routing_table.append([])
                continue
            offsets = rng.sample(range(total), take)
            routing_table.append(
                sorted(_member_at(first, off) for off in offsets))
        tables[node_id] = (replicas, routing_table)
    return tables


class PGridPeerLike:
    """Structural type for :func:`populate_routing_tables` (documentation
    only — any object with ``path``, ``routing_table`` and ``replicas``
    attributes qualifies)."""

    path: Key
    routing_table: list[list[str]]
    replicas: list[str]


# ---------------------------------------------------------------------------
# Decentralized, exchange-based construction
# ---------------------------------------------------------------------------

class _ExchangePeer:
    """Mutable per-peer state for the exchange-based builder."""

    __slots__ = ("node_id", "path", "refs")

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.path = Key("")
        # level -> set of node ids
        self.refs: list[set[str]] = []

    def _ensure_level(self, level: int) -> None:
        while len(self.refs) <= level:
            self.refs.append(set())


def _exchange(a: _ExchangePeer, b: _ExchangePeer, max_depth: int,
              rng: random.Random) -> None:
    """One pairwise meeting of the P-Grid construction protocol."""
    cpl = common_prefix_length(a.path, b.path)
    if cpl == len(a.path) and cpl == len(b.path):
        # Same path: split if depth allows, becoming each other's
        # reference at the new level.
        if len(a.path) >= max_depth:
            return
        first, second = (a, b) if rng.random() < 0.5 else (b, a)
        first.path = first.path.append("0")
        second.path = second.path.append("1")
        level = len(first.path) - 1
        first._ensure_level(level)
        second._ensure_level(level)
        first.refs[level].add(second.node_id)
        second.refs[level].add(first.node_id)
        return
    if cpl < len(a.path) and cpl < len(b.path):
        # Paths diverge: record each other as references at the
        # divergence level.
        a._ensure_level(cpl)
        b._ensure_level(cpl)
        a.refs[cpl].add(b.node_id)
        b.refs[cpl].add(a.node_id)
        return
    # One path is a strict prefix of the other: the shallower peer can
    # deepen by adopting the complement of the deeper peer's next bit.
    shallow, deep = (a, b) if len(a.path) < len(b.path) else (b, a)
    next_bit = deep.path.bit(len(shallow.path))
    shallow.path = shallow.path.append("1" if next_bit == "0" else "0")
    level = len(shallow.path) - 1
    shallow._ensure_level(level)
    deep._ensure_level(level)
    shallow.refs[level].add(deep.node_id)
    deep.refs[level].add(shallow.node_id)


def build_by_exchanges(
    num_peers: int,
    meetings: int | None = None,
    max_depth: int | None = None,
    rng: random.Random | None = None,
) -> dict[str, Key]:
    """Grow a trie through random pairwise exchanges.

    Peers all start at the trie root and refine their paths through
    ``meetings`` random encounters (default ``40 * n * log2(n)``, ample
    for convergence at test scale).  ``max_depth`` bounds path length
    (default ``ceil(log2(num_peers)) + 2``), preventing two chatty
    peers from splitting forever.

    Returns the final node-id-to-path assignment; reference sets built
    during exchanges are discarded — callers typically re-derive
    routing tables with :func:`populate_routing_tables`, which also
    covers pairs that never met.
    """
    if num_peers <= 0:
        raise ValueError("num_peers must be positive")
    rng = rng if rng is not None else random.Random(0)
    if max_depth is None:
        max_depth = max(1, (num_peers - 1).bit_length() + 2)
    if meetings is None:
        log_n = max(1, (num_peers - 1).bit_length())
        meetings = 40 * num_peers * log_n
    peers = [_ExchangePeer(f"peer-{i}") for i in range(num_peers)]
    if num_peers == 1:
        return {peers[0].node_id: peers[0].path}
    for _ in range(meetings):
        a, b = rng.sample(peers, 2)
        _exchange(a, b, max_depth, rng)
    return {p.node_id: p.path for p in peers}
