"""A single P-Grid peer: local store, routing table, and the protocol.

Protocol overview (all messages flow through ``repro.simnet``):

``route``
    Carries an operation (``retrieve`` / ``insert`` / ``remove``)
    toward the peer responsible for ``key``.  Each peer either answers
    locally (its path is a prefix of the key) or forwards the message
    to a reference at the trie level where its path and the key
    diverge — the defining step of prefix routing.

``reply``
    Sent directly from the answering peer back to the operation's
    origin (one hop, as in the paper's description of query
    resolution).

``replicate``
    Fans a successful mutation out to the responsible peer's replica
    group ``sigma(p)``; replicas apply it without replying.

Origins keep a pending-operation table with timeouts: if a reply does
not arrive in time (offline peer on the path, message drop), the
operation is retried with a fresh id up to ``max_retries`` times before
the future resolves as failed.  This mirrors P-Grid's "probabilistic
guarantees ... even in highly unreliable, dynamic environments".
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any

from repro.obs.registry import FailoverCounters
from repro.simnet.events import Future, SimulationError
from repro.simnet.network import Message, Node
from repro.stats.gossip import PIGGYBACK_BUDGET, PULL_BUDGET
from repro.stats.synopsis import PeerSynopsis, SynopsisRegistry
from repro.util.keys import Key, common_prefix_length

#: shared empty avoid-set for forwarded routes (never mutated); saves
#: one set allocation per forwarding hop on the hottest handler
_NO_AVOID: frozenset = frozenset()


@dataclass
class OpResult:
    """Outcome of a Retrieve or Update operation.

    ``hops`` counts forwarding steps of the winning attempt (0 when the
    origin itself was responsible); ``latency`` is virtual seconds from
    issue to completion, including failed attempts; ``values`` is the
    retrieved list for retrieves and ``None`` for updates.
    """

    key: Key
    success: bool
    values: list[Any] | None = None
    hops: int = 0
    latency: float = 0.0
    attempts: int = 1


class _Pending:
    """Origin-side state of one in-flight operation.

    A slot class with a hand-written ``__init__`` — one instance per
    issued operation makes the dataclass machinery (default factories,
    keyword processing) measurable during deployment builds.
    """

    __slots__ = ("future", "key", "op", "value", "issued_at", "attempts",
                 "timeout_handle", "extra", "op_tag", "tried_hops",
                 "cancel", "trace", "span", "attempt_span")

    def __init__(self, future: Future, key: Key, op: str, value: Any,
                 issued_at: float, op_tag: str | None = None,
                 cancel: Any = None) -> None:
        self.future = future
        self.key = key
        self.op = op
        self.value = value
        self.issued_at = issued_at
        self.attempts = 1
        self.timeout_handle: Any = None
        self.extra: dict = {}
        #: attribution tag captured at issue time, so timeout-driven
        #: retries (which run outside any delivery scope) keep billing
        #: their messages to the originating operation
        self.op_tag = op_tag
        #: first-hop references already tried; replica-aware failover
        #: steers retries away from these toward alternate replicas
        self.tried_hops: set[str] = set()
        #: cooperative-cancellation token of the issuing computation
        #: (see :class:`~repro.simnet.events.CancelToken`); a fired
        #: token stops timeout retries and resolves the operation
        #: immediately
        self.cancel = cancel
        #: trace context of the pending-op span (``None`` when the op
        #: was issued with no trace active); timeout-driven retries and
        #: resolution callbacks re-activate it, mirroring ``op_tag``
        self.trace: Any = None
        #: open span records (see :class:`repro.obs.tracer.Tracer`):
        #: the op umbrella and the current routing attempt under it
        self.span: Any = None
        self.attempt_span: Any = None


class PGridPeer(Node):
    """One peer of the P-Grid trie.

    Parameters
    ----------
    node_id:
        Network identity.
    path:
        The binary prefix ``pi(p)`` this peer is responsible for.
    rng:
        Randomness for reference selection (ties on equal-level refs).
    timeout:
        Seconds an origin waits for a reply before retrying.
    max_retries:
        Additional attempts after the first one fails.
    failover:
        When True (default), two replica-aware mechanisms kick in.
        *Per hop*: a forwarder that would hand the message to a
        crashed reference (the transport refuses the connection — the
        one liveness signal a real network gives instantly) picks an
        alternate reference covering the same subtree instead of
        letting the message vanish.  *Per operation*: timeout retries
        at the origin avoid first-hop entry points already tried, and
        while untried alternates remain up to ``failover_retries``
        extra attempts beyond ``max_retries`` are granted.  When
        False, messages to dead references are silently lost and
        retries re-roll the same distribution (the pre-failover
        behaviour, kept for A/B benchmarks such as E14).
    """

    #: extra retry attempts granted while untried first-hop alternates
    #: remain (only with ``failover=True``)
    failover_retries = 2

    def __init__(
        self,
        node_id: str,
        path: Key,
        rng: random.Random | None = None,
        timeout: float = 15.0,
        max_retries: int = 2,
        failover: bool = True,
    ) -> None:
        super().__init__(node_id)
        self.path = path
        self.rng = rng if rng is not None else random.Random(0)
        self.timeout = timeout
        self.max_retries = max_retries
        self.failover = failover
        #: failover counters: ``failovers`` counts dead references
        #: skipped in favour of an alternate replica, ``retries`` the
        #: timeout-driven re-attempts, ``gave_up`` the operations that
        #: exhausted every attempt, ``cancelled`` the ones torn down by
        #: cooperative cancellation (limit pushdown) before completing.
        #: A typed counter group; the historical ``failover_stats``
        #: attribute is a view onto it with the full dict read/write
        #: vocabulary (see :class:`repro.obs.registry.CounterGroup`).
        self._failover = FailoverCounters()
        #: level -> list of node ids covering the complementary subtree
        self.routing_table: list[list[str]] = [[] for _ in range(len(path))]
        #: replica group sigma(p): other peers with the same path
        self.replicas: list[str] = []
        #: local store: key bits -> list of values
        self.store: dict[str, list[Any]] = {}
        self._op_ids = itertools.count()
        self._pending: dict[str, _Pending] = {}
        #: origin-side state of multi-peer range queries
        self._range_tasks: dict[str, _RangeTask] = {}
        #: outstanding liveness probes (token -> (level, ref node id))
        self._probe_pending: dict[str, tuple[int, str]] = {}
        #: failure-detector quarantine: refs recently observed dead are
        #: not re-adopted until their expiry time (node id -> time)
        self.ref_blacklist: dict[str, float] = {}
        #: maintenance counters (filled by pgrid.maintenance)
        self.maintenance_stats = {
            "probes_sent": 0, "refs_dropped": 0, "refs_added": 0,
            "sync_pushes": 0, "values_repaired": 0,
        }
        #: synopsis digests known about other peers (merged from
        #: piggybacked maintenance traffic and anti-entropy pulls)
        self.synopses = SynopsisRegistry()
        #: whether to piggyback synopsis digests on maintenance
        #: messages (zero extra messages either way; the flag exists
        #: for A/B attribution checks)
        self.stats_gossip = True
        #: deterministic round-robin position for gossip batches
        self._gossip_cursor = 0
        self._register_protocol_handlers()

    def _register_protocol_handlers(self) -> None:
        """Wire the P-Grid protocol vocabulary into the actor registry.

        Each message kind maps to one handler; deliveries arrive
        through :meth:`~repro.simnet.network.Node.on_message`, which
        dispatches through this registry — peers never receive calls
        from other peer objects directly.
        """
        self.register_handler("route", self._handle_route)
        self.register_handler("reply", self._handle_reply)
        self.register_handler("replicate", self._handle_replicate)
        self.register_handler("probe", self._handle_probe)
        self.register_handler("probe_ack", self._handle_probe_ack)
        self.register_handler("stats_pull", self._handle_stats_pull)
        self.register_handler("stats_push", self._handle_stats_push)
        self.register_handler("refs_request", self._handle_refs_request)
        self.register_handler("refs_reply", self._handle_refs_reply)
        self.register_handler("sync_push", self._handle_sync_push)

    @property
    def failover_stats(self) -> FailoverCounters:
        """Failover counters, dict-compatible for historical readers.

        The counters live as plain attributes on a
        :class:`~repro.obs.registry.FailoverCounters` group (attribute
        increments on the hot path); this view keeps every existing
        ``peer.failover_stats["retries"]``-style read *and* write
        working unchanged.
        """
        return self._failover

    # ------------------------------------------------------------------
    # Statistics dissemination (see repro.stats.gossip)
    # ------------------------------------------------------------------

    def synopsis_digest(self) -> PeerSynopsis | None:
        """This peer's own current digest (``None`` at this layer —
        mediation peers with a triple database override this)."""
        return None

    def gossip_synopses(self, budget: int = PIGGYBACK_BUDGET
                        ) -> list[PeerSynopsis]:
        """The digest batch to piggyback on one outgoing message.

        Always leads with this peer's own fresh digest, then a
        round-robin slice of the registry so repeated exchanges cycle
        through everything this peer knows.
        """
        batch: list[PeerSynopsis] = []
        own = self.synopsis_digest()
        if own is not None:
            batch.append(own)
        known = [d for d in self.synopses.digests()
                 if d.peer_id != self.node_id]
        if known and len(batch) < budget:
            take = min(budget - len(batch), len(known))
            start = self._gossip_cursor % len(known)
            self._gossip_cursor += take
            batch.extend((known + known)[start:start + take])
        return batch

    def receive_synopses(self, digests) -> int:
        """Merge piggybacked/pulled digests; returns accepted count."""
        if not digests:
            return 0
        return self.synopses.merge(
            d for d in digests if d.peer_id != self.node_id
        )

    # ------------------------------------------------------------------
    # Local storage
    # ------------------------------------------------------------------

    def is_responsible_for(self, key: Key) -> bool:
        """Whether ``key`` falls in this peer's key-space partition."""
        return self.path.is_prefix_of(key)

    def local_insert(self, key: Key, value: Any) -> None:
        """Append a value under ``key`` in the local store."""
        self.store.setdefault(key._bits, []).append(value)

    def local_remove(self, key: Key, value: Any) -> int:
        """Remove all copies of ``value`` under ``key``; return count."""
        bucket = self.store.get(key.bits)
        if not bucket:
            return 0
        before = len(bucket)
        bucket[:] = [v for v in bucket if v != value]
        if not bucket:
            del self.store[key.bits]
        return before - len(bucket)

    def local_retrieve(self, key: Key) -> list[Any]:
        """All values stored under exactly ``key``."""
        return list(self.store.get(key._bits, ()))

    def local_retrieve_prefix(self, prefix: Key) -> list[Any]:
        """All locally stored values whose key extends ``prefix``.

        When ``prefix`` is *shorter* than this peer's path, this
        returns the peer's share of the prefix's subtree (the rest
        lives on other peers — see :meth:`range_query`).
        """
        return [
            value
            for bits, values in self.store.items()
            if bits.startswith(prefix.bits)
            for value in values
        ]

    def local_merge(self, key: Key, value: Any) -> bool:
        """Insert ``value`` under ``key`` unless an equal copy exists.

        Used by replica anti-entropy, where the same item may be pushed
        repeatedly; plain :meth:`local_insert` would accumulate
        duplicates.
        """
        bucket = self.store.get(key.bits, ())
        if value in bucket:
            return False
        self.local_insert(key, value)
        return True

    def storage_load(self) -> int:
        """Number of values stored locally (load-balancing metric)."""
        return sum(len(v) for v in self.store.values())

    # ------------------------------------------------------------------
    # Public operations (origin side)
    # ------------------------------------------------------------------

    def retrieve(self, key: Key, cancel: Any = None) -> Future:
        """Start a ``Retrieve(key)``; resolves to an :class:`OpResult`.

        ``cancel`` is an optional
        :class:`~repro.simnet.events.CancelToken`: when it fires the
        operation stops retrying and resolves as failed immediately.
        """
        return self._start_op("retrieve", key, None, cancel=cancel)

    def retrieve_prefix(self, prefix: Key) -> Future:
        """Prefix variant of retrieve (requires prefix >= leaf depth)."""
        return self._start_op("retrieve_prefix", prefix, None)

    def update(self, key: Key, value: Any, action: str = "insert") -> Future:
        """Start an ``Update(key, value)``.

        ``action`` is ``"insert"`` or ``"remove"`` — the paper uses one
        generic Update primitive for insertion, update and deletion.
        """
        if action not in ("insert", "remove"):
            raise ValueError(f"unknown update action {action!r}")
        return self._start_op(action, key, value)

    def _start_op(self, op: str, key: Key, value: Any,
                  cancel: Any = None) -> Future:
        future: Future = Future()
        if cancel is not None and cancel.cancelled:
            # Cancelled before issue: spend zero messages.
            future.set_result(OpResult(key=key, success=False, attempts=0))
            return future
        op_id = f"{self.node_id}:{next(self._op_ids)}"
        # Direct transport access (vs the ``loop``/``current_operation``
        # properties): ops are issued in bulk during deployment builds,
        # where the extra frames are measurable.
        network = self.network
        if network is None:
            raise SimulationError(f"node {self.node_id} is not attached")
        op_stack = network._op_stack
        pending = _Pending(
            future=future,
            key=key,
            op=op,
            value=value,
            issued_at=network.loop._now,
            op_tag=op_stack[-1] if op_stack else None,
            cancel=cancel,
        )
        tracer = network.tracer
        if tracer is not None and tracer._stack:
            # Pending-op span: the origin-side umbrella every routing
            # attempt parents under.  Opened only when a trace is
            # already active (same rule as op_tag inheritance), so
            # untraced issues pay one attribute load and a check.
            span = tracer.begin(f"op:{op}", peer=self.node_id, kind="op",
                                start=network.loop._now)
            pending.span = span
            pending.trace = tracer.context_of(span)
        self._pending[op_id] = pending
        if cancel is not None:
            cancel.on_cancel(lambda: self._cancel_op(op_id))
        self._attempt(op_id)
        return future

    def _cancel_op(self, op_id: str) -> None:
        """Tear down one pending op on cooperative cancellation.

        The in-flight message (if any) is already on the wire and may
        still arrive — :meth:`_complete` tolerates the missing pending
        entry — but no retry timer fires and the future resolves now,
        so callers stop waiting (and stop spending messages)
        immediately.
        """
        pending = self._pending.pop(op_id, None)
        if pending is None:
            return  # already completed (or timed out) normally
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        self._failover.cancelled += 1
        self._finish_op_spans(pending, "cancelled")
        result = OpResult(
            key=pending.key,
            success=False,
            hops=0,
            latency=self.loop.now - pending.issued_at,
            attempts=pending.attempts,
        )
        self._resolve_pending(pending, result)

    def _finish_op_spans(self, pending: _Pending, status: str) -> None:
        """Close the op span (and any open attempt span) of ``pending``.

        The attempt inherits the op's terminal status except on
        success, where :meth:`_complete` already closed it as ``ok``
        (``Tracer.finish`` is idempotent either way).
        """
        network = self.network
        tracer = network.tracer if network is not None else None
        if tracer is None or pending.span is None:
            return
        now = network.loop._now
        if pending.attempt_span is not None:
            tracer.finish(pending.attempt_span, now, status=status)
        tracer.finish(pending.span, now, status=status,
                      attempts=pending.attempts)

    def _resolve_pending(self, pending: _Pending, result: OpResult) -> None:
        """Resolve a pending future inside the op's attribution scope.

        Timeout/cancel resolution fires outside any delivery scope, but
        the future's callbacks may still send attributable traffic
        (e.g. the next pattern of a bound join) — re-open the op_tag
        scope and, when traced, the op-span context so that traffic is
        billed and parented to the operation.
        """
        network = self.network
        tracer = network.tracer if network is not None else None
        trace = pending.trace
        if tracer is not None and trace is not None:
            tracer._stack.append(trace)
        try:
            if pending.op_tag is not None and network is not None:
                with network.operation(pending.op_tag):
                    pending.future.set_result(result)
            else:
                pending.future.set_result(result)
        finally:
            if tracer is not None and trace is not None:
                tracer._stack.pop()

    def _attempt(self, op_id: str) -> None:
        """(Re)issue the routing step for a pending operation."""
        pending = self._pending.get(op_id)
        if pending is None:
            return
        # Direct loop access (one ``loop``-property frame per issued
        # op adds up at deployment-build volume).
        pending.timeout_handle = self.network.loop.schedule(
            self.timeout, self._on_timeout, op_id
        )
        payload = {
            "op": pending.op,
            "op_id": op_id,
            "key": pending.key._bits,
            "origin": self.node_id,
            "value": pending.value,
        }
        if self.failover and pending.tried_hops:
            payload["avoid"] = sorted(pending.tried_hops)
        message = Message(
            kind="route",
            src=self.node_id,
            dst=self.node_id,
            payload=payload,
            hops=0,
        )
        tracer = self.network.tracer
        attempt_ctx = None
        if tracer is not None and pending.trace is not None:
            # One span per routing attempt: a retry shows up as a
            # sibling of the failed attempt under the same op span, the
            # failed one keeping its ``timeout`` status next to the
            # retry that superseded it.
            attempt = tracer.begin(
                f"attempt:{pending.attempts}", peer=self.node_id,
                kind="attempt", start=self.network.loop._now,
                context=pending.trace)
            pending.attempt_span = attempt
            attempt_ctx = tracer.context_of(attempt)
        if pending.op_tag is not None and self.network is not None:
            # Timeout-driven retries fire outside any delivery scope;
            # re-open the operation's scope (and the attempt's trace
            # context) so the retry's messages are attributed to it.
            with self.network.operation(pending.op_tag):
                if attempt_ctx is not None:
                    with tracer.activate(attempt_ctx):
                        self._handle_route(message)
                else:
                    self._handle_route(message)
        elif attempt_ctx is not None:
            with tracer.activate(attempt_ctx):
                self._handle_route(message)
        else:
            self._handle_route(message)

    def _untried_alternates(self, pending: _Pending) -> bool:
        """Whether the routing table still offers a first hop toward
        ``pending.key`` that this operation has not tried yet."""
        key = pending.key
        if not len(self.path) or self.is_responsible_for(key):
            return False
        level = common_prefix_length(self.path, key)
        if level >= len(self.path) or level >= len(key):
            return False  # answered locally; no first hop involved
        return any(ref not in pending.tried_hops
                   for ref in self.routing_table[level])

    def _on_timeout(self, op_id: str) -> None:
        pending = self._pending.get(op_id)
        if pending is None:
            return
        tracer = (self.network.tracer if self.network is not None
                  else None)
        if tracer is not None and pending.attempt_span is not None:
            # The attempt that just expired: closed here so a dropped-
            # then-retried route reads as ``attempt:1 timeout`` next to
            # its sibling ``attempt:2``.
            tracer.finish(pending.attempt_span, self.network.loop._now,
                          status="timeout")
        budget = self.max_retries + 1
        if self.failover and self._untried_alternates(pending):
            budget += self.failover_retries
        if pending.attempts < budget:
            pending.attempts += 1
            self._failover.retries += 1
            self._attempt(op_id)
            return
        del self._pending[op_id]
        self._failover.gave_up += 1
        self._finish_op_spans(pending, "gave_up")
        result = OpResult(
            key=pending.key,
            success=False,
            hops=0,
            latency=self.loop.now - pending.issued_at,
            attempts=pending.attempts,
        )
        # Resolve inside the operation's attribution scope: the
        # failure callback may issue follow-up traffic (e.g. the next
        # pattern of a bound join) that still belongs to the op.
        self._resolve_pending(pending, result)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def _handle_probe(self, message: Message) -> None:
        self.receive_synopses(message.payload.get("synopses") or ())
        ack: dict[str, Any] = {"token": message.payload["token"]}
        if self.stats_gossip and "synopses" in message.payload:
            # Piggyback the return direction only when the prober
            # gossips too, keeping A/B runs symmetric.
            ack["synopses"] = self.gossip_synopses()
        self.send(message.src, "probe_ack", ack)

    def _handle_probe_ack(self, message: Message) -> None:
        self._probe_pending.pop(message.payload["token"], None)
        self.receive_synopses(message.payload.get("synopses") or ())

    def _handle_stats_pull(self, message: Message) -> None:
        self.send(message.src, "stats_push", {
            "synopses": self.gossip_synopses(
                message.payload.get("budget") or PULL_BUDGET),
        })

    def _handle_stats_push(self, message: Message) -> None:
        self.receive_synopses(message.payload.get("synopses") or ())

    def _handle_route(self, message: Message) -> None:
        # Hottest handler in the system: work on the payload's raw bit
        # string and only materialize a (shared, interned) Key object
        # when this peer actually answers.  Forwarding a message costs
        # no Key construction at all.
        key_bits: str = message.payload["key"]
        if message.hops > len(key_bits) + 8:
            # Safety net: greedy forwarding strictly extends the
            # common prefix, so a legitimate route never exceeds the
            # key width; anything longer indicates a poisoned table.
            return
        path_bits = self.path._bits
        if key_bits.startswith(path_bits):  # responsible (or root path)
            self._answer(message, Key.of(key_bits))
            return
        level = 0
        for x, y in zip(path_bits, key_bits):
            if x != y:
                break
            level += 1
        if level >= len(path_bits) or level >= len(key_bits):
            # Prefix-comparable in either direction: for full-width
            # keys this means we own the key; for short prefix keys
            # (range queries) our leaf lies inside the prefix's
            # subtree, making us a valid entry point for the shower.
            self._answer(message, Key.of(key_bits))
            return
        at_origin = (message.hops == 0
                     and message.payload.get("origin") == self.node_id)
        if at_origin:
            avoid: "set[str] | frozenset[str]" = set(
                message.payload.get("avoid") or ())
        else:
            avoid = _NO_AVOID
        next_hop = self._next_hop_with_failover(level, avoid)
        if next_hop is None:
            # Dead end: no live reference toward the key.  Drop; the
            # origin's timeout will retry (possibly through another
            # replica of the first hop).
            return
        payload = message.payload
        if at_origin:
            pending = self._pending.get(payload.get("op_id"))
            if pending is not None:
                pending.tried_hops.add(next_hop)
        if "avoid" in payload:
            # The avoid hint is an origin-local failover decision; it
            # has no meaning (and must not constrain routing) past the
            # first hop.  Only then is a copy needed — forwarded
            # payloads are immutable by protocol convention, so the
            # common case shares the dict across hops.
            payload = dict(payload)
            del payload["avoid"]
        self.network.send(Message("route", self.node_id, next_hop,
                                  payload, message.hops + 1))

    def _next_hop_with_failover(self, level: int,
                                avoid: set[str]) -> str | None:
        """Pick the forwarding reference, skipping crashed ones.

        With failover enabled this models the one liveness signal a
        real transport gives for free: connecting to a *crashed* host
        fails immediately, so instead of letting the message vanish
        the forwarder hands it to an alternate reference covering the
        same subtree (typically a replica of the dead one).  Routing
        then only loses a message when *every* known reference for the
        level is down.  Without failover the historical behaviour
        applies: the message is sent and silently dropped.
        """
        # First pick without materializing a scratch set: failovers are
        # rare, and the common case is pick-once-and-forward.
        next_hop = self._pick_reference(level, avoid=avoid)
        if next_hop is None:
            return None
        if (not self.failover or self.network is None
                or self.network.is_online(next_hop)
                or next_hop in avoid):
            # Live hop, failover disabled, or no alternative left
            # (the avoid fallback re-offered a known-dead ref).
            return next_hop
        tried = set(avoid)
        network = self.network
        tracer = network.tracer
        while True:
            tried.add(next_hop)
            self._failover.failovers += 1
            if tracer is not None:
                # No-op without an active trace context; otherwise
                # annotates the trace with which dead reference this
                # forwarding step skipped.
                tracer.event("failover", peer=self.node_id,
                             time=network.loop._now, level=level,
                             dead=next_hop)
            next_hop = self._pick_reference(level, avoid=tried)
            if next_hop is None:
                return None
            if (self.network.is_online(next_hop) or next_hop in tried):
                return next_hop

    def _pick_reference(self, level: int,
                        avoid: "frozenset | set" = frozenset()) -> str | None:
        """A uniformly random reference at ``level``.

        The peer has no oracle for remote liveness: it only knows what
        the maintenance process's probing has taught it (dead
        references get dropped from the table, recently-dead ones sit
        in ``ref_blacklist``).  Blacklisted refs are avoided when an
        alternative exists, as are the ``avoid`` hops an in-flight
        failover has already tried; losses surface as origin-side
        timeouts and retries.
        """
        refs = self.routing_table[level]
        if not refs:
            return None
        blacklist = self.ref_blacklist
        if blacklist:
            now = self.loop.now
            trusted = [r for r in refs if blacklist.get(r, 0.0) <= now]
            pool = trusted if trusted else refs
        else:
            # Empty blacklist (the overwhelmingly common case): every
            # ref is trusted, so skip the filtering pass entirely.
            # ``rng.choice`` sees the same pool either way.
            pool = refs
        if avoid:
            fresh = [r for r in pool if r not in avoid]
            if fresh:
                pool = fresh
        # Inlined ``rng.choice(pool)`` (pool is never empty here):
        # identical rng consumption, one frame less per routed hop.
        rng = self.rng
        return pool[rng._randbelow(len(pool))]

    def _execute_op(self, op: str, key: Key, value: Any) -> tuple[list[Any] | None, bool]:
        """Apply one operation against local state.

        Returns ``(values, mutated)`` — ``values`` goes into the reply,
        ``mutated`` triggers replica propagation.  Subclasses extend
        this to add mediation-layer operations.
        """
        if op == "retrieve":
            return self.local_retrieve(key), False
        if op == "retrieve_prefix":
            return self.local_retrieve_prefix(key), False
        if op == "range":
            return self._handle_range(key, value), False  # type: ignore[return-value]
        if op == "refs_lookup":
            # Routed reference discovery: whoever answers covers the
            # requested prefix, so it can vouch for itself and its
            # replica group.
            return [self.node_id] + list(self.replicas), False
        if op == "insert":
            self.local_insert(key, value)
            return None, True
        if op == "remove":
            self.local_remove(key, value)
            return None, True
        raise ValueError(f"unknown operation {op!r}")

    # ------------------------------------------------------------------
    # Range queries (subtree multicast, a.k.a. the P-Grid "shower")
    # ------------------------------------------------------------------

    def range_query(self, prefix: Key, timeout: float | None = None,
                    cancel: Any = None) -> Future:
        """Retrieve every value whose key extends ``prefix``.

        A short prefix can span many leaves, so this is a *multicast*:
        greedy routing delivers the request to one peer inside the
        subtree, which answers for its own leaf and delegates each
        remaining sibling subtree under ``prefix`` to a level
        reference (the classic P-Grid shower — each subtree handled
        exactly once, no duplicate work).  Termination uses the same
        spawn-accounting as recursive reformulation; a timeout guards
        against losses under churn.  Resolves to an :class:`OpResult`
        whose ``values`` is the aggregated list.
        """
        task_id = f"{self.node_id}:{next(self._op_ids)}"
        future: Future = Future()
        task = _RangeTask(self, task_id, prefix, future)
        if cancel is not None and cancel.cancelled:
            task.finish(False)
            return task.future
        self._range_tasks[task_id] = task
        task.timeout_handle = self.loop.schedule(
            timeout if timeout is not None else self.timeout * 3,
            task.finish, False,
        )
        if cancel is not None:
            # Cooperative cancellation resolves the multicast with
            # whatever subtrees have answered so far.
            def _cancel_range() -> None:
                if not task.finished:
                    self._failover.cancelled += 1
                    task.finish(False)

            cancel.on_cancel(_cancel_range)
        root_id = self._send_range(prefix, task_id)
        task.expected.add(root_id)
        return task.future

    def _send_range(self, prefix: Key, task_id: str) -> str:
        op_id = f"range!{task_id}!{self.node_id}:{next(self._op_ids)}"
        self._handle_route(Message(
            kind="route",
            src=self.node_id,
            dst=self.node_id,
            payload={
                "op": "range",
                "op_id": op_id,
                "key": prefix.bits,
                "origin": task_id.split(":", 1)[0],
                "value": {"task_id": task_id, "request_id": op_id},
            },
            hops=0,
        ))
        return op_id

    def _handle_range(self, prefix: Key, value: dict) -> dict:
        """Answer for this leaf and delegate sibling subtrees.

        Routing delivered the request here because our path and the
        prefix are prefix-comparable.  If our path is *deeper* than the
        prefix, the levels between them index sibling subtrees still
        inside the prefix's subtree — exactly our level references for
        those levels, so each gets one sub-request.
        """
        task_id = value["task_id"]
        spawned: list[str] = []
        for level in range(len(prefix), len(self.path)):
            sibling = self.path.sibling_prefix(level)
            next_hop = self._next_hop_with_failover(level, set())
            if next_hop is None:
                continue  # that subtree's share is lost; timeout covers it
            spawned.append(self._send_range(sibling, task_id))
        return {
            "range_values": self.local_retrieve_prefix(prefix),
            "spawned": spawned,
        }

    def _on_range_report(self, op_id: str, payload: dict) -> None:
        task_id = op_id.split("!", 2)[1]
        task = self._range_tasks.get(task_id)
        if task is None:
            return
        task.on_report(op_id, payload.get("values")
                       or {"range_values": [], "spawned": []})

    def _on_refs_lookup_reply(self, op_id: str, payload: dict) -> None:
        """Adopt references discovered by a routed refs_lookup."""
        try:
            level = int(op_id.split("!", 2)[1])
        except (IndexError, ValueError):
            return
        if level >= len(self.routing_table):
            return
        refs = self.routing_table[level]
        complement = self.path.sibling_prefix(level)
        answered_by = payload.get("answered_by")
        now = self.loop.now
        for candidate in payload.get("values") or ():
            if candidate == self.node_id or candidate in refs:
                continue
            if self.ref_blacklist.get(candidate, 0.0) > now:
                continue
            # The answering peer vouches for itself and its replicas;
            # we additionally know the answer came through a route
            # that terminated inside the complement's subtree.
            refs.append(candidate)
            self.maintenance_stats["refs_added"] += 1
        del answered_by, complement  # (kept for symmetry/debugging)

    # ------------------------------------------------------------------
    # Maintenance handlers (driven by pgrid.maintenance)
    # ------------------------------------------------------------------

    def _handle_refs_request(self, message: Message) -> None:
        """Offer peers *verifiably* covering the requested prefix.

        Only this peer itself and its replicas are offered (their path
        is known to be ours); offering third-party references whose
        paths we cannot verify could poison the requester's table and
        break the forwarding invariant that every hop strictly extends
        the common prefix with the target key.
        """
        target = Key(message.payload["prefix"])
        candidates: list[str] = []
        if target.is_prefix_of(self.path) or self.path.is_prefix_of(target):
            candidates.append(self.node_id)
            candidates.extend(self.replicas)
        self.send(message.src, "refs_reply", {
            "prefix": target.bits,
            "level": message.payload["level"],
            "candidates": sorted(set(candidates)),
        })

    def _handle_refs_reply(self, message: Message) -> None:
        """Adopt offered references for the thin level."""
        level = message.payload["level"]
        if level >= len(self.routing_table):
            return
        expected = self.path.sibling_prefix(level)
        if Key(message.payload["prefix"]) != expected:
            return  # stale reply for a different complement
        refs = self.routing_table[level]
        now = self.loop.now
        for candidate in message.payload["candidates"]:
            if candidate == self.node_id or candidate in refs:
                continue
            if self.ref_blacklist.get(candidate, 0.0) > now:
                continue  # observed dead recently; quarantine
            refs.append(candidate)
            self.maintenance_stats["refs_added"] += 1

    def _handle_sync_push(self, message: Message) -> None:
        """Anti-entropy: merge a replica's store snapshot."""
        self.receive_synopses(message.payload.get("synopses") or ())
        for bits, value in message.payload["items"]:
            if self.local_merge(Key(bits), value):
                self.maintenance_stats["values_repaired"] += 1

    def _answer(self, message: Message, key: Key) -> None:
        """Apply the operation locally and reply to the origin."""
        payload = message.payload
        op = payload["op"]
        value = payload.get("value")
        values, mutated = self._execute_op(op, key, value)
        if mutated:
            self._propagate_to_replicas(op, key, value)
        origin = payload["origin"]
        reply_payload = {
            "op_id": payload["op_id"],
            "values": values,
            "hops": message.hops,
            "answered_by": self.node_id,
        }
        if origin == self.node_id:
            self._complete(reply_payload)
        else:
            self.network.send(Message("reply", self.node_id, origin,
                                      reply_payload, message.hops + 1))

    def _propagate_to_replicas(self, op: str, key: Key, value: Any) -> None:
        network = self.network
        node_id = self.node_id
        for replica in self.replicas:
            network.send(Message("replicate", node_id, replica, {
                "op": op,
                "key": key._bits,
                "value": value,
            }))

    def _handle_replicate(self, message: Message) -> None:
        key = Key.of(message.payload["key"])
        if message.payload["op"] == "insert":
            self.local_insert(key, message.payload["value"])
        else:
            self.local_remove(key, message.payload["value"])

    def _handle_reply(self, message: Message) -> None:
        self._complete(message.payload, hops_override=message.payload["hops"])

    def _complete(self, payload: dict, hops_override: int | None = None) -> None:
        op_id = payload["op_id"]
        if op_id.startswith("range!"):
            self._on_range_report(op_id, payload)
            return
        if op_id.startswith("refslkp!"):
            self._on_refs_lookup_reply(op_id, payload)
            return
        pending = self._pending.pop(op_id, None)
        if pending is None:
            return  # late duplicate after a retry already answered
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        if pending.span is not None:
            tracer = (self.network.tracer if self.network is not None
                      else None)
            if tracer is not None:
                now = self.network.loop._now
                if pending.attempt_span is not None:
                    tracer.finish(pending.attempt_span, now, status="ok")
                tracer.finish(pending.span, now, status="ok",
                              attempts=pending.attempts)
        pending.future.set_result(OpResult(
            key=pending.key,
            success=True,
            values=payload.get("values"),
            hops=hops_override if hops_override is not None else payload["hops"],
            latency=self.network.loop._now - pending.issued_at,
            attempts=pending.attempts,
        ))


class _RangeTask:
    """Origin-side accounting of a subtree-multicast range query.

    Identical termination logic to recursive reformulation: every
    sub-request eventually reports the values of its leaf plus the ids
    of the sub-requests it spawned; the task completes when every
    expected id has reported.
    """

    def __init__(self, peer: PGridPeer, task_id: str, prefix: Key,
                 future: Future) -> None:
        self.peer = peer
        self.task_id = task_id
        self.prefix = prefix
        self.future = future
        self.issued_at = peer.loop.now
        self.expected: set[str] = set()
        self.reported: set[str] = set()
        self.values: list[Any] = []
        self.finished = False
        self.timeout_handle: Any = None
        #: attribution tag captured at issue time; a timeout-driven
        #: finish resolves the future outside any delivery scope, and
        #: its callbacks may still send attributable traffic
        self.op_tag = (peer.network.current_operation()
                       if peer.network is not None else None)
        #: trace context captured at issue time, re-activated around
        #: resolution for the same reason (mirrors ``op_tag`` above)
        tracer = peer.network.tracer if peer.network is not None else None
        self.trace = (tracer._stack[-1]
                      if tracer is not None and tracer._stack else None)

    def on_report(self, request_id: str, report: dict) -> None:
        if self.finished:
            return
        self.reported.add(request_id)
        self.expected.add(request_id)
        self.expected.update(report.get("spawned", ()))
        self.values.extend(report.get("range_values", ()))
        if self.expected <= self.reported:
            self.finish(True)

    def finish(self, complete: bool) -> None:
        if self.finished:
            return
        self.finished = True
        if self.timeout_handle is not None:
            self.timeout_handle.cancel()
        self.peer._range_tasks.pop(self.task_id, None)
        result = OpResult(
            key=self.prefix,
            success=complete,
            values=self.values,
            hops=len(self.reported),
            latency=self.peer.loop.now - self.issued_at,
        )
        network = self.peer.network
        tracer = network.tracer if network is not None else None
        if tracer is not None and self.trace is not None:
            tracer._stack.append(self.trace)
        try:
            if self.op_tag is not None and network is not None:
                with network.operation(self.op_tag):
                    self.future.set_result(result)
            else:
                self.future.set_result(result)
        finally:
            if tracer is not None and self.trace is not None:
                tracer._stack.pop()
