"""Facade tying peers, network and event loop into one overlay object.

:class:`PGridOverlay` is what the mediation layer (and tests) talk to:
it builds a complete simulated P-Grid and exposes the two primitives of
the paper both asynchronously and synchronously.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Any

from repro.simnet.events import EventLoop, Future
from repro.simnet.latency import LatencyModel
from repro.simnet.network import SimNetwork
from repro.pgrid.construction import (
    assign_paths,
    populate_routing_tables,
)
from repro.pgrid.peer import OpResult, PGridPeer
from repro.util.keys import Key


class PGridOverlay:
    """A complete simulated P-Grid network.

    Typically constructed through :meth:`build`; the constructor is for
    tests that wire custom topologies by hand.
    """

    def __init__(self, network: SimNetwork, peers: dict[str, PGridPeer]) -> None:
        self.network = network
        self.peers = peers

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        num_peers: int,
        key_sample: Sequence[Key] | None = None,
        replication: int = 1,
        refs_per_level: int = 2,
        key_bits: int = 128,
        latency: LatencyModel | None = None,
        seed: int = 0,
        loop: EventLoop | None = None,
        timeout: float = 15.0,
        max_retries: int = 2,
    ) -> "PGridOverlay":
        """Build an overlay of ``num_peers`` peers.

        See :func:`repro.pgrid.construction.assign_paths` for the
        meaning of ``key_sample`` (load-balancing) and ``replication``
        (replica-group size).  All randomness derives from ``seed``.
        """
        rng = random.Random(seed)
        network = SimNetwork(
            loop=loop,
            latency=latency,
            rng=random.Random(rng.random()),
        )
        assignment = assign_paths(
            num_peers,
            key_sample=key_sample,
            replication=replication,
            key_bits=key_bits,
            rng=random.Random(rng.random()),
        )
        peers: dict[str, PGridPeer] = {}
        for node_id, path in sorted(assignment.items()):
            peer = PGridPeer(
                node_id,
                path,
                rng=random.Random(rng.random()),
                timeout=timeout,
                max_retries=max_retries,
            )
            network.attach(peer)
            peers[node_id] = peer
        populate_routing_tables(
            peers, refs_per_level=refs_per_level,
            rng=random.Random(rng.random()),
        )
        return cls(network, peers)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def loop(self) -> EventLoop:
        """The overlay's event loop."""
        return self.network.loop

    def peer(self, node_id: str) -> PGridPeer:
        """Look up a peer by node id."""
        return self.peers[node_id]

    def peer_ids(self) -> list[str]:
        """All node ids, sorted for determinism."""
        return sorted(self.peers)

    def random_peer_id(self, rng: random.Random) -> str:
        """A uniformly random node id."""
        return rng.choice(self.peer_ids())

    def responsible_peers(self, key: Key) -> list[str]:
        """Ground truth: ids of peers whose path prefixes ``key``.

        Used by tests and benches to check routing correctness without
        going through the protocol.
        """
        return sorted(
            node_id
            for node_id, peer in self.peers.items()
            if peer.is_responsible_for(key)
        )

    def trie_depths(self) -> list[int]:
        """Path length of every peer (trie shape diagnostic)."""
        return [len(p.path) for p in self.peers.values()]

    def storage_loads(self) -> list[int]:
        """Stored-value counts per peer (load-balance diagnostic)."""
        return [p.storage_load() for p in self.peers.values()]

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def join(self, node_id: str, seed: int = 0) -> PGridPeer:
        """Add a new peer to the live overlay (see
        :func:`repro.pgrid.membership.join_network`)."""
        from repro.pgrid.membership import join_network
        rng = random.Random(seed)

        def factory(new_id: str, path: Key) -> PGridPeer:
            return PGridPeer(new_id, path, rng=random.Random(rng.random()))

        return join_network(self.network, self.peers, node_id, factory,
                            rng=rng)

    def leave(self, node_id: str) -> None:
        """Gracefully remove a peer (data handed to its replicas)."""
        from repro.pgrid.membership import graceful_leave
        graceful_leave(self.network, self.peers, node_id)

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def retrieve(self, origin: str, key: Key) -> Future:
        """Asynchronous ``Retrieve(key)`` issued from peer ``origin``."""
        return self.peers[origin].retrieve(key)

    def update(self, origin: str, key: Key, value: Any,
               action: str = "insert") -> Future:
        """Asynchronous ``Update(key, value)`` from peer ``origin``."""
        return self.peers[origin].update(key, value, action=action)

    def retrieve_sync(self, origin: str, key: Key) -> OpResult:
        """Blocking retrieve: runs the loop until the reply arrives."""
        return self.loop.run_until_complete(self.retrieve(origin, key))

    def update_sync(self, origin: str, key: Key, value: Any,
                    action: str = "insert") -> OpResult:
        """Blocking update (insert or remove)."""
        return self.loop.run_until_complete(
            self.update(origin, key, value, action=action)
        )
