"""Dynamic membership: peers joining and leaving a live overlay.

P-Grid is "a self-organizing and distributed access structure" (§2.1);
the trie is not a build-time artifact.  This module implements the two
membership transitions the demonstration network needs:

:func:`join_network`
    A newcomer bootstraps from an existing peer: it adopts the path of
    the *least-replicated* leaf (keeping replica groups balanced),
    clones that leaf's content and routing references, and registers
    with the replica group.  Other peers discover the newcomer lazily
    through the maintenance process's reference exchange.

:func:`graceful_leave`
    A departing peer pushes its store to its replica group (the
    existing anti-entropy message), deregisters from the group, and
    detaches.  Stale references to it elsewhere are evicted by
    probing.  Leaving is refused when the peer is its leaf's sole
    owner — its key-space partition would become unowned; callers must
    arrange a replacement (join first, then leave).
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.pgrid.peer import PGridPeer
from repro.simnet.network import SimNetwork
from repro.util.keys import Key

#: builds a peer object for a given (node_id, path)
PeerFactory = Callable[[str, Key], PGridPeer]


class MembershipError(RuntimeError):
    """Raised for impossible membership transitions."""


def _replica_groups(peers: dict[str, PGridPeer]) -> dict[Key, list[str]]:
    groups: dict[Key, list[str]] = {}
    for node_id in sorted(peers):
        groups.setdefault(peers[node_id].path, []).append(node_id)
    return groups


def join_network(
    network: SimNetwork,
    peers: dict[str, PGridPeer],
    node_id: str,
    peer_factory: PeerFactory,
    rng: random.Random | None = None,
) -> PGridPeer:
    """Add a new peer to a live overlay; returns the new peer.

    The newcomer replicates the least-populated leaf: this is the
    load-balancing join (splitting a leaf instead would deepen the
    trie; replicating first keeps fault tolerance uniform, and splits
    can follow once groups grow — the exchange protocol of
    :mod:`repro.pgrid.construction` covers that dynamic).
    """
    if node_id in peers:
        raise MembershipError(f"node id {node_id!r} already in the overlay")
    if not peers:
        raise MembershipError("cannot bootstrap from an empty overlay")
    rng = rng if rng is not None else random.Random(0)
    groups = _replica_groups(peers)
    smallest = min(len(members) for members in groups.values())
    candidates = sorted(
        path for path, members in groups.items()
        if len(members) == smallest
    )
    path = rng.choice(candidates)
    host = peers[rng.choice(groups[path])]

    newcomer = peer_factory(node_id, path)
    network.attach(newcomer)
    peers[node_id] = newcomer
    # Clone content verbatim through the regular insertion path (so
    # subclasses like the mediation peer update their registries).
    # ``local_insert`` rather than ``local_merge``: duplicate values in
    # a bucket are legitimate state and must survive the clone.
    for bits, values in host.store.items():
        for value in values:
            newcomer.local_insert(Key(bits), value)
    # Clone routing knowledge (fresh lists, not aliases).
    newcomer.routing_table = [list(refs) for refs in host.routing_table]
    # Register with the replica group.
    group_members = [host.node_id] + list(host.replicas)
    newcomer.replicas = sorted(group_members)
    for member_id in group_members:
        member = peers.get(member_id)
        if member is not None and node_id not in member.replicas:
            member.replicas = sorted(member.replicas + [node_id])
    return newcomer


def graceful_leave(
    network: SimNetwork,
    peers: dict[str, PGridPeer],
    node_id: str,
) -> None:
    """Remove a peer from a live overlay, handing its data off first."""
    peer = peers.get(node_id)
    if peer is None:
        raise MembershipError(f"unknown node id {node_id!r}")
    survivors = [r for r in peer.replicas if r in peers]
    if not survivors:
        raise MembershipError(
            f"{node_id} is the sole owner of path {peer.path}; "
            "join a replacement before leaving"
        )
    items = [
        (bits, value)
        for bits, values in peer.store.items()
        for value in values
    ]
    for replica in survivors:
        peer.send(replica, "sync_push", {"items": items})
    for replica in survivors:
        member = peers[replica]
        member.replicas = sorted(r for r in member.replicas
                                 if r != node_id)
    del peers[node_id]
    network.detach(node_id)
