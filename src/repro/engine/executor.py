"""Batched multi-query execution with shared pattern lookups.

Executing a batch of (reformulated) queries naively issues one overlay
lookup per triple pattern per reformulation per query.  Under real
multi-user traffic the same patterns recur constantly — repeated
queries, alpha-variant queries from different users, and conjunctive
queries whose reformulations leave some patterns untouched all ask the
overlay the same questions.  The batch executor exploits this: it
collects every pattern appearing anywhere in the batch, dedupes them
up to variable renaming (:func:`~repro.engine.signature.
canonicalize_pattern`), issues each distinct pattern **once**, and
fans the fetched bindings back out to every query's join pipeline.

Joins follow the paper's parallel mode ("iteratively resolving each
triple pattern contained in the query and aggregating the sets of
results retrieved", §2.3): per reformulation, the per-pattern binding
sets are natural-joined at the origin and projected onto the
distinguished variables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.signature import Renaming, canonicalize_pattern
from repro.mediation.peer import GridVinePeer
from repro.mediation.query import QueryOutcome
from repro.rdf.patterns import ConjunctiveQuery, join_bindings
from repro.rdf.terms import GroundTerm, Variable
from repro.reformulation.planner import Reformulation
from repro.simnet.events import Future, gather


@dataclass
class BatchFetchStats:
    """What pattern deduplication saved for one batch."""

    #: pattern occurrences across all queries and reformulations
    patterns_total: int = 0
    #: distinct patterns actually fetched from the overlay
    patterns_fetched: int = 0

    @property
    def lookups_saved(self) -> int:
        """Overlay lookups avoided by deduplication."""
        return self.patterns_total - self.patterns_fetched


def _remap_bindings(
    bindings: list[dict[Variable, GroundTerm]],
    inverse: Renaming,
) -> list[dict[Variable, GroundTerm]]:
    """Re-express canonical-variable bindings in a pattern's own
    variables (bindings of fully ground patterns pass through)."""
    if not inverse:
        return bindings
    return [
        {inverse.get(var, var): term for var, term in b.items()}
        for b in bindings
    ]


def execute_batch(
    peer: GridVinePeer,
    queries: list[ConjunctiveQuery],
    plans: list[list[Reformulation]],
) -> Future:
    """Run a batch of planned queries from ``peer``.

    ``plans[i]`` is the reformulation plan of ``queries[i]`` (the
    original query included).  Resolves to ``(outcomes, fetch_stats)``
    where ``outcomes[i]`` is the :class:`QueryOutcome` of
    ``queries[i]`` with per-reformulation result attribution, exactly
    as the iterative strategy would have produced.
    """
    if len(queries) != len(plans):
        raise ValueError("one plan per query required")
    issued_at = peer.loop.now
    stats = BatchFetchStats()
    #: canonical pattern -> index into the fetch list
    fetch_index: dict = {}
    fetch_patterns: list = []
    #: (query index, reformulation, [(fetch idx, inverse renaming)])
    uses: list[tuple[int, Reformulation, list[tuple[int, Renaming]]]] = []
    for query_index, plan in enumerate(plans):
        for reformulation in plan:
            per_pattern: list[tuple[int, Renaming]] = []
            for pattern in reformulation.query.patterns:
                stats.patterns_total += 1
                canonical, inverse = canonicalize_pattern(pattern)
                index = fetch_index.get(canonical)
                if index is None:
                    index = len(fetch_patterns)
                    fetch_index[canonical] = index
                    fetch_patterns.append(canonical)
                per_pattern.append((index, inverse))
            uses.append((query_index, reformulation, per_pattern))
    stats.patterns_fetched = len(fetch_patterns)

    outcomes = [
        QueryOutcome(query=query, strategy="engine", issued_at=issued_at)
        for query in queries
    ]
    out: Future = Future()

    def _on_fetched(f: Future) -> None:
        fetched: list[list[dict[Variable, GroundTerm]]] = f.result()
        for query_index, reformulation, per_pattern in uses:
            query = reformulation.query
            joined: list[dict[Variable, GroundTerm]] = [{}]
            for index, inverse in per_pattern:
                joined = join_bindings(
                    joined, _remap_bindings(fetched[index], inverse)
                )
                if not joined:
                    break
            rows = {
                query.project(b) for b in joined
                if all(v in b for v in query.distinguished)
            }
            outcomes[query_index].record(query, rows)
        now = peer.loop.now
        for outcome, plan in zip(outcomes, plans):
            outcome.latency = now - issued_at
            outcome.reformulations_explored = max(0, len(plan) - 1)
        out.set_result((outcomes, stats))

    gather([
        peer._search_pattern(pattern) for pattern in fetch_patterns
    ]).add_done_callback(_on_fetched)
    return out
