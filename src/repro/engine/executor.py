"""Batched multi-query execution as one shared-scan operator DAG.

Executing a batch of (reformulated) queries naively issues one overlay
lookup per triple pattern per reformulation per query.  Under real
multi-user traffic the same patterns recur constantly — repeated
queries, alpha-variant queries from different users, and conjunctive
queries whose reformulations leave some patterns untouched all ask the
overlay the same questions.  The batch executor exploits this by
building a single operator DAG (:mod:`repro.exec`) over the whole
batch:

* every distinct pattern (up to variable renaming, via
  :func:`~repro.engine.signature.canonicalize_pattern`) becomes **one
  shared** :class:`~repro.exec.operators.PatternScan`, whose edges
  re-express the fetched bindings in each consumer's own variables;
* each (query, reformulation) pair gets a
  :class:`~repro.exec.operators.HashJoin` over its scans followed by
  ``Project -> Dedup``, all feeding the query's
  ``Union -> Limit -> Collect`` tail — the paper's parallel join mode
  ("iteratively resolving each triple pattern contained in the query
  and aggregating the sets of results retrieved", §2.3) with
  per-reformulation result attribution.

With a result ``limit``, scans start in **waves** by reformulation
hop count (:func:`~repro.reformulation.planner.reformulation_waves`):
wave ``h`` only starts once wave ``h-1``'s scans finished and some
query is still unsatisfied.  Each satisfied ``Limit`` resolves its
query early; once every query is satisfied the pipeline's cancel
token fires, in-flight scans stop retrying, and all never-started
scans are skipped — the batch-level form of limit pushdown.  Without
a limit there is exactly one wave, reproducing the historical
all-at-once fetch bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.signature import canonicalize_pattern
from repro.exec.operators import (
    Collect,
    Dedup,
    HashJoin,
    Limit,
    PatternScan,
    Project,
    Union,
)
from repro.exec.stream import PipelineContext
from repro.mediation.peer import GridVinePeer
from repro.mediation.query import QueryOutcome
from repro.rdf.patterns import ConjunctiveQuery
from repro.reformulation.planner import Reformulation, reformulation_waves
from repro.simnet.events import Future, gather


class _WaveScheduler:
    """Starts the batch's shared scans wave by wave.

    Waves run strictly sequentially: the next wave starts when every
    scan of the current one closed and some query is still
    unsatisfied.  :meth:`skip_pending` closes all never-started scans
    (counting each as a saved fetch) — called both on natural
    advancement once everything is satisfied and directly by the last
    query's limit, so the skip accounting is final before the batch
    result resolves.
    """

    def __init__(self, ctx: PipelineContext,
                 satisfied: list[bool]) -> None:
        self.ctx = ctx
        self.satisfied = satisfied
        self.waves: list[list[PatternScan]] = []
        #: id(scan) -> indices of the queries consuming that scan
        self.consumers: dict[int, set[int]] = {}
        self._next_wave = 0
        self._open_in_wave = 0

    def skip_pending(self) -> None:
        """Close (and count as skipped) every not-yet-started wave."""
        while self._next_wave < len(self.waves):
            wave = self.waves[self._next_wave]
            self._next_wave += 1
            for scan in wave:
                scan.skip()

    def _useless(self, scan: PatternScan) -> bool:
        """Whether every query consuming ``scan`` is already
        satisfied — fetching it could not contribute a result row."""
        consumers = self.consumers.get(id(scan))
        return bool(consumers) and all(self.satisfied[i]
                                       for i in consumers)

    def start_next(self) -> None:
        """Start the next pending wave (or skip the rest if done)."""
        if self._next_wave >= len(self.waves):
            return
        if self.satisfied and all(self.satisfied):
            self.skip_pending()
            return
        wave = self.waves[self._next_wave]
        self._next_wave += 1
        self._open_in_wave = len(wave)
        for scan in wave:
            scan.on_closed(self._scan_closed)
        for scan in wave:
            if self._useless(scan):
                scan.skip()
            else:
                self.ctx.start_source(scan)

    def _scan_closed(self, _op) -> None:
        self._open_in_wave -= 1
        if self._open_in_wave == 0:
            self.start_next()


@dataclass
class BatchFetchStats:
    """What pattern sharing and limit pushdown saved for one batch."""

    #: pattern occurrences across all queries and reformulations
    patterns_total: int = 0
    #: distinct patterns in the DAG (shared scan operators)
    patterns_fetched: int = 0
    #: scans actually started (== ``patterns_fetched`` without a limit)
    scans_issued: int = 0
    #: scans never started because every query's limit was satisfied
    scans_skipped: int = 0
    #: queries whose limit was reached
    limits_hit: int = 0

    @property
    def lookups_saved(self) -> int:
        """Overlay lookups avoided by deduplication."""
        return self.patterns_total - self.patterns_fetched


def execute_batch(
    peer: GridVinePeer,
    queries: list[ConjunctiveQuery],
    plans: list[list[Reformulation]],
    limit: int | None = None,
    optimizer=None,
) -> Future:
    """Run a batch of planned queries from ``peer``.

    ``plans[i]`` is the reformulation plan of ``queries[i]`` (the
    original query included).  Resolves to ``(outcomes, fetch_stats)``
    where ``outcomes[i]`` is the :class:`QueryOutcome` of
    ``queries[i]`` with per-reformulation result attribution, exactly
    as the iterative strategy would have produced.  ``limit`` (when
    given) caps every query's distinct result rows and enables
    wave-staged fetching with cooperative early stop.

    ``optimizer`` (a :class:`~repro.optimizer.core.QueryOptimizer`,
    passed by engines running with ``optimize=True``) orders each
    reformulation's *join inputs* by estimated cardinality — the
    shared scans still fetch the same pattern set (message count is
    unchanged), but the hash join folds most-selective-first, keeping
    intermediate binding sets small.  Without one the historical
    pattern order applies.
    """
    if len(queries) != len(plans):
        raise ValueError("one plan per query required")
    issued_at = peer.loop.now
    stats = BatchFetchStats()
    ctx = PipelineContext(peer)
    #: canonical pattern -> index into the scan list
    fetch_index: dict = {}
    scans: list[PatternScan] = []
    #: per scan: the earliest reformulation wave needing it
    scan_wave: list[int] = []
    #: (query index, reformulation, [(scan idx, inverse renaming)])
    uses: list[tuple[int, Reformulation, list[tuple[int, dict]]]] = []
    for query_index, plan in enumerate(plans):
        # BFS order is preserved: the planner emits reformulations
        # wave by wave, so flattening the waves re-yields plan order.
        for wave_index, wave in enumerate(reformulation_waves(plan)):
            for reformulation in wave:
                patterns = list(reformulation.query.patterns)
                if optimizer is not None:
                    ordered = optimizer.scan_order(reformulation.query)
                    if ordered is not None:
                        patterns = ordered
                per_pattern: list[tuple[int, dict]] = []
                for pattern in patterns:
                    stats.patterns_total += 1
                    canonical, inverse = canonicalize_pattern(pattern)
                    index = fetch_index.get(canonical)
                    if index is None:
                        index = len(scans)
                        fetch_index[canonical] = index
                        scans.append(PatternScan(canonical))
                        scan_wave.append(wave_index)
                    else:
                        scan_wave[index] = min(scan_wave[index],
                                               wave_index)
                    per_pattern.append((index, inverse))
                uses.append((query_index, reformulation, per_pattern))
    stats.patterns_fetched = len(scans)
    ctx.register(*scans)

    outcomes = [
        QueryOutcome(query=query, strategy="engine", issued_at=issued_at,
                     limit=limit)
        for query in queries
    ]

    # -- per-query tails: Union -> Limit -> Collect --------------------
    satisfied = [False] * len(queries)
    scheduler = _WaveScheduler(ctx, satisfied)
    unions: list[Union] = []
    limit_ops: list[Limit] = []
    collects: list[Collect] = []
    for query_index in range(len(queries)):
        union = Union(name=f"union[q{query_index}]")
        limit_op = Limit(limit)
        collect = Collect(ctx, outcome=outcomes[query_index])
        union.connect(limit_op)
        limit_op.connect(collect)
        ctx.register(union, limit_op, collect)

        def _on_satisfied(query_index: int = query_index,
                          collect: Collect = collect) -> None:
            satisfied[query_index] = True
            if all(satisfied):
                # Every query has enough rows: stop the whole batch.
                # Skip the never-started waves *first* — cancelling
                # in-flight ops can cascade into resolving the last
                # collect future (and with it the batch result), so
                # the saved-work accounting must already be final.
                scheduler.skip_pending()
                ctx.cancel.cancel()
            collect.resolve()

        limit_op.on_satisfied = _on_satisfied
        unions.append(union)
        limit_ops.append(limit_op)
        collects.append(collect)

    # -- per-reformulation join pipelines over shared scans ------------
    for query_index, reformulation, per_pattern in uses:
        join = HashJoin()
        for scan_index, inverse in per_pattern:
            scheduler.consumers.setdefault(
                id(scans[scan_index]), set()).add(query_index)
            scans[scan_index].connect(
                join,
                transform=(None if not inverse else (
                    # One schema remap per batch; the columns are
                    # shared, not copied.
                    lambda batch, inverse=inverse: batch.renamed(inverse)
                )),
            )
        project = Project(reformulation.query)
        dedup = Dedup()
        join.connect(project)
        project.connect(dedup)
        dedup.connect(unions[query_index])
        ctx.register(join, project, dedup)

    # -- wave-staged scan scheduling -----------------------------------
    if limit is None:
        scheduler.waves = [scans] if scans else []
    else:
        # Group by the earliest plan wave needing each scan; the wave
        # structure mirrors :func:`reformulation_waves` of the plans.
        by_wave: dict[int, list[PatternScan]] = {}
        for scan, wave in zip(scans, scan_wave):
            by_wave.setdefault(wave, []).append(scan)
        scheduler.waves = [by_wave[w] for w in sorted(by_wave)]
    scheduler.start_next()

    # -- completion ----------------------------------------------------
    out: Future = Future()

    def _on_all_done(_f: Future) -> None:
        # Every query is done here — satisfied queries resolved via
        # their limit, the rest closed naturally (meaning all *their*
        # scans already ran) — so any never-started wave can only
        # serve satisfied queries: drain it as skips before reading
        # the counters.
        scheduler.skip_pending()
        now = peer.loop.now
        stats.scans_issued = sum(s.stats.fetches_issued for s in scans)
        stats.scans_skipped = ctx.fetches_skipped()
        stats.limits_hit = sum(1 for op in limit_ops if op.satisfied)
        for outcome, plan, limit_op, collect in zip(
                outcomes, plans, limit_ops, collects):
            outcome.latency = now - issued_at
            outcome.reformulations_explored = max(0, len(plan) - 1)
            outcome.limit_hit = limit_op.satisfied
            if collect.first_rows_at is not None:
                outcome.first_result_latency = (collect.first_rows_at
                                                - issued_at)
            outcome.rows_after_cancel = (limit_op.late_rows
                                         + collect.stats.rows_dropped)
        if len(outcomes) == 1:
            # Shared scans make per-query fetch attribution meaningless
            # for larger batches; a singleton batch is unambiguous.
            outcomes[0].fetches_issued = stats.scans_issued
            outcomes[0].fetches_skipped = stats.scans_skipped
            outcomes[0].operator_stats = ctx.operator_snapshots()
        out.set_result((outcomes, stats))

    gather([collect.future for collect in collects]
           ).add_done_callback(_on_all_done)
    return out
