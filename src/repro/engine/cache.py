"""The invalidation-aware reformulation-plan cache.

Planning a reformulation is pure — ``plan_reformulations(query,
graph)`` depends on nothing else — so its result can be cached under
the query's structural signature (:mod:`repro.engine.signature`) for
as long as the consulted part of the mapping graph stays put.  Each
entry therefore records, next to the canonical plan, the set of
schemas the plan touched and a :class:`~repro.engine.versioning.
MappingVersionClock` snapshot of their versions.

Invalidation is *eager*: the cache subscribes to the clock, and the
moment a mapping event bumps a schema's version every entry depending
on that schema is dropped.  A lazy snapshot check on lookup backs this
up, so a cache wired to a clock that was bumped before subscription
still never serves a stale plan.

The dependency set of a plan is the union of the schemas referenced by
any of its reformulations (including the original query).  A new
mapping can only extend the plan if its source schema is already
reachable — i.e. in that set — and removing or deprecating a mapping
can only shrink the plan if the mapping left a schema in the set, so
schema-granular invalidation is exact for removals and conservative
only for mapping *targets* (cheap, and always safe).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.signature import canonicalize_query, rename_query
from repro.engine.versioning import MappingVersionClock
from repro.mapping.unfolding import query_schemas
from repro.rdf.patterns import ConjunctiveQuery
from repro.reformulation.planner import Reformulation
from repro.util.stats import ratio

#: cache key: (canonical query, max_hops, include_original)
_Key = tuple[ConjunctiveQuery, int, bool]


@dataclass
class PlanCacheStats:
    """Lifetime counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when unused)."""
        return ratio(self.hits, self.lookups)

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class _Entry:
    """One cached plan: canonical reformulations + version snapshot."""

    __slots__ = ("reformulations", "depends_on", "snapshot")

    def __init__(self, reformulations: list[Reformulation],
                 depends_on: set[str], snapshot: dict[str, int]) -> None:
        self.reformulations = reformulations
        self.depends_on = depends_on
        self.snapshot = snapshot


class PlanCache:
    """LRU cache of reformulation plans with schema-level invalidation.

    ``capacity=0`` disables caching entirely (every lookup misses,
    stores are dropped) — benchmarks use this as the honest cold
    baseline.
    """

    def __init__(self, clock: MappingVersionClock,
                 capacity: int = 256) -> None:
        self.clock = clock
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[_Key, _Entry]" = OrderedDict()
        #: schema -> keys of entries depending on it (eager invalidation)
        self._by_schema: dict[str, set[_Key]] = {}
        clock.add_listener(self._on_schema_bumped)

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[tuple[_Key, _Entry]]:
        """Live ``(key, entry)`` pairs, LRU order (oldest first).

        Keys are ``(canonical query, max_hops, include_original)`` and
        entries carry *canonical* plans — used by the fault lab's
        cache-coherence invariant to replay every cached plan against
        a fresh planning run.  Read-only: does not touch LRU order or
        stats.
        """
        return list(self._entries.items())

    # -- lookup / store -------------------------------------------------

    def lookup(self, query: ConjunctiveQuery, max_hops: int,
               include_original: bool = True) -> list[Reformulation] | None:
        """The cached plan for ``query``, re-expressed in its variables.

        Returns ``None`` (and counts a miss) when no current entry
        exists.  Alpha-variants of a cached query hit the same entry.
        """
        canonical, inverse = canonicalize_query(query)
        key = (canonical, max_hops, include_original)
        entry = self._entries.get(key)
        if entry is not None and not self.clock.is_current(entry.snapshot):
            # Lazy backstop: the clock moved while we were not looking
            # (e.g. events fired before this cache subscribed).
            self._drop(key)
            entry = None
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(key)
        return [
            Reformulation(rename_query(r.query, inverse), r.path)
            for r in entry.reformulations
        ]

    def store(self, query: ConjunctiveQuery, max_hops: int,
              reformulations: list[Reformulation],
              include_original: bool = True) -> None:
        """Cache a freshly planned reformulation set for ``query``."""
        if self.capacity <= 0:
            return
        canonical, inverse = canonicalize_query(query)
        forward = {original: can for can, original in inverse.items()}
        canonical_plan = [
            Reformulation(rename_query(r.query, forward), r.path)
            for r in reformulations
        ]
        depends_on = set(query_schemas(canonical))
        for reformulation in canonical_plan:
            depends_on |= query_schemas(reformulation.query)
        key = (canonical, max_hops, include_original)
        if key in self._entries:
            self._drop(key)
        self._entries[key] = _Entry(
            canonical_plan, depends_on, self.clock.snapshot(depends_on)
        )
        for schema in depends_on:
            self._by_schema.setdefault(schema, set()).add(key)
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            evicted, entry = self._entries.popitem(last=False)
            self._unindex(evicted, entry)
            self.stats.evictions += 1

    # -- invalidation ---------------------------------------------------

    def _on_schema_bumped(self, schema: str) -> None:
        """Clock listener: drop every entry depending on ``schema``."""
        for key in list(self._by_schema.get(schema, ())):
            self._drop(key)
            self.stats.invalidations += 1

    def invalidate_all(self) -> None:
        """Drop every entry (e.g. after an out-of-band graph rebuild)."""
        count = len(self._entries)
        self._entries.clear()
        self._by_schema.clear()
        self.stats.invalidations += count

    def _drop(self, key: _Key) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._unindex(key, entry)

    def _unindex(self, key: _Key, entry: _Entry) -> None:
        for schema in entry.depends_on:
            keys = self._by_schema.get(schema)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_schema[schema]
