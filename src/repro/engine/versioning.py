"""Mapping-graph versioning: the cache-invalidation backbone.

A reformulation plan is a pure function of (query, mapping graph), so a
cached plan stays valid exactly as long as the part of the mapping
graph it consulted does not change.  The :class:`MappingVersionClock`
tracks that change at *schema* granularity: every mapping event
(insert, remove, deprecate) bumps the version of the mapping's source
and target schemas.  A cached plan carries a snapshot of the versions
of every schema it depends on; the plan is stale as soon as any of
those versions has moved on.

Schema granularity is the sweet spot between a single global counter
(every mapping event would flush the whole cache, even for mappings in
unrelated corners of the mediation layer) and per-mapping dependency
tracking (a *new* mapping has no identity yet when existing plans must
be invalidated — only its endpoint schemas are known in advance).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.mapping.model import SchemaMapping

#: Listener signature: called once per schema whose version was bumped.
SchemaListener = Callable[[str], None]


class MappingVersionClock:
    """Monotonic per-schema version counters for the mapping graph.

    >>> from repro.mapping.model import PredicateCorrespondence
    >>> from repro.rdf.terms import URI
    >>> clock = MappingVersionClock()
    >>> clock.version("A")
    0
    >>> m = SchemaMapping("m1", "A", "B",
    ...                   [PredicateCorrespondence(URI("A#p"), URI("B#q"))])
    >>> clock.bump(m)
    >>> (clock.version("A"), clock.version("B"), clock.version("C"))
    (1, 1, 0)
    """

    def __init__(self) -> None:
        self._versions: dict[str, int] = {}
        #: total number of mapping events observed (diagnostics only)
        self.events = 0
        self._listeners: list[SchemaListener] = []

    def add_listener(self, listener: SchemaListener) -> None:
        """Register a callback fired (per schema) on every bump."""
        self._listeners.append(listener)

    def version(self, schema: str) -> int:
        """Current version of one schema (0 until its first event)."""
        return self._versions.get(schema, 0)

    def snapshot(self, schemas: Iterable[str]) -> dict[str, int]:
        """Versions of the given schemas, frozen for a cache entry."""
        return {schema: self.version(schema) for schema in schemas}

    def is_current(self, snapshot: dict[str, int]) -> bool:
        """Whether every schema still has its snapshot-time version."""
        return all(self.version(schema) == version
                   for schema, version in snapshot.items())

    def bump(self, mapping: SchemaMapping) -> None:
        """Record one mapping event: both endpoint schemas move on."""
        self.events += 1
        for schema in (mapping.source_schema, mapping.target_schema):
            self._versions[schema] = self.version(schema) + 1
            for listener in self._listeners:
                listener(schema)
