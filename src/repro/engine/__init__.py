"""Query engine: reformulation-plan caching and batched execution.

The paper's mediation layer pays its main latency cost twice per
query: once reformulating the query over the mapping graph (BFS
through mapping records fetched from schema key spaces) and once
resolving each triple pattern through the overlay.  Neither cost is
inherent to a *repeated* query — the plan is a pure function of
(query structure, mapping graph), and identical patterns fetch
identical bindings — so this package reuses both:

:mod:`repro.engine.signature`
    Structural query signatures: variables are alpha-renamed to a
    canonical form, so queries differing only in variable names share
    one cache entry (and one pattern lookup).

:mod:`repro.engine.versioning`
    :class:`~repro.engine.versioning.MappingVersionClock` — per-schema
    version counters bumped by the mapping-event hooks
    :class:`~repro.mediation.peer.GridVinePeer` fires on mapping
    insert / remove / deprecate (including mutations driven by the
    self-organization loop of :mod:`repro.selforg`).

:mod:`repro.engine.cache`
    :class:`~repro.engine.cache.PlanCache` — an LRU cache of
    reformulation plans, each entry pinned to a version snapshot of
    the schemas it depends on and eagerly invalidated when any of
    them changes.

:mod:`repro.engine.executor`
    Batched multi-query execution: all patterns across a batch are
    deduplicated, fetched once, and fanned back out to each query's
    origin-side join pipeline.

:mod:`repro.engine.core`
    :class:`~repro.engine.core.QueryEngine` — the facade tying the
    pieces to a live :class:`~repro.mediation.network.GridVineNetwork`
    and exposing per-query / per-batch execution statistics
    (:class:`~repro.engine.core.EngineStats`).

Quickstart::

    from repro import GridVineNetwork, QueryEngine
    net = GridVineNetwork.build(num_peers=32, seed=7)
    ...  # insert schemas, triples, mappings
    engine = net.create_engine(domain="bio")
    outcome = engine.search_for(
        "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))")
    batch = engine.execute_batch(queries)
    print(engine.stats.snapshot())   # hit rate, lookups saved, ...
"""

from repro.engine.cache import PlanCache, PlanCacheStats
from repro.engine.core import BatchResult, EngineStats, QueryEngine
from repro.engine.executor import BatchFetchStats, execute_batch
from repro.engine.signature import (
    canonicalize_pattern,
    canonicalize_query,
    rename_query,
)
from repro.engine.versioning import MappingVersionClock

__all__ = [
    "BatchFetchStats",
    "BatchResult",
    "EngineStats",
    "MappingVersionClock",
    "PlanCache",
    "PlanCacheStats",
    "QueryEngine",
    "canonicalize_pattern",
    "canonicalize_query",
    "execute_batch",
    "rename_query",
]
