"""Structural query signatures: alpha-renaming of variables.

Two queries that differ only in variable names — ``SearchFor(x? :
(x?, EMBL#Organism, %Aspergillus%))`` issued by one user and
``SearchFor(y? : (y?, EMBL#Organism, %Aspergillus%))`` issued by
another — reformulate identically: view unfolding only ever rewrites
predicates, never variables.  The plan cache therefore keys entries by
the *canonical form* of a query, in which variables are renamed to
``_c0, _c1, ...`` in order of first occurrence.  A cache hit for an
alpha-variant renames the cached plan's variables back through the
inverse renaming, reconstructing exactly the plan the planner would
have produced for the variant.

Renaming respects repetition (a variable occurring twice keeps
occurring twice), so canonical forms coincide precisely for
alpha-equivalent queries.
"""

from __future__ import annotations

from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import ALL_POSITIONS

#: Prefix of canonical variable names.  Deliberately unusual: even if a
#: user query *does* use ``_c0`` as a variable name, canonicalization
#: stays a bijection and alpha-equivalence classes still map one-to-one
#: onto canonical forms.
_CANONICAL_PREFIX = "_c"

#: variable -> variable substitution
Renaming = dict[Variable, Variable]

#: memo for :func:`canonicalize_pattern`
#: (pattern -> (canonical pattern, inverse renaming))
_CANON_CACHE: dict[TriplePattern, tuple[TriplePattern, Renaming]] = {}
_CANON_CACHE_MAX = 1 << 12


def _rename_term(term: Term, renaming: Renaming) -> Term:
    if isinstance(term, Variable):
        return renaming.get(term, term)
    return term


def rename_pattern(pattern: TriplePattern,
                   renaming: Renaming) -> TriplePattern:
    """A copy of ``pattern`` with variables substituted."""
    return TriplePattern(*(
        _rename_term(pattern.at(pos), renaming) for pos in ALL_POSITIONS
    ))


def rename_query(query: ConjunctiveQuery,
                 renaming: Renaming) -> ConjunctiveQuery:
    """A copy of ``query`` with variables substituted throughout."""
    return ConjunctiveQuery(
        [rename_pattern(p, renaming) for p in query.patterns],
        [renaming.get(v, v) for v in query.distinguished],
    )


def canonicalize_query(
    query: ConjunctiveQuery,
) -> tuple[ConjunctiveQuery, Renaming]:
    """The canonical form of ``query`` plus the *inverse* renaming.

    Variables are renamed to ``_c0, _c1, ...`` in order of first
    occurrence (pattern by pattern, subject/predicate/object within
    each).  The returned inverse maps canonical variables back to the
    query's own, so a cached plan can be re-expressed in the caller's
    vocabulary.

    >>> from repro.rdf.parser import parse_search_for
    >>> a = parse_search_for("SearchFor(x? : (x?, A#p, v))")
    >>> b = parse_search_for("SearchFor(y? : (y?, A#p, v))")
    >>> canonicalize_query(a)[0] == canonicalize_query(b)[0]
    True
    >>> sorted(v.value for v in canonicalize_query(a)[1])
    ['_c0']
    """
    forward: Renaming = {}
    for pattern in query.patterns:
        for pos in ALL_POSITIONS:
            term = pattern.at(pos)
            if isinstance(term, Variable) and term not in forward:
                forward[term] = Variable(
                    f"{_CANONICAL_PREFIX}{len(forward)}"
                )
    inverse = {canonical: original
               for original, canonical in forward.items()}
    return rename_query(query, forward), inverse


def canonicalize_pattern(
    pattern: TriplePattern,
) -> tuple[TriplePattern, Renaming]:
    """Canonical form of a single pattern plus the inverse renaming.

    Used by the batch executor to recognize that two patterns from
    different queries (or different reformulations) ask the overlay the
    same question, so one lookup can serve both.

    Memoized on the (immutable, hashable) input pattern: the workload's
    pattern vocabulary is small and recurs across batch executions, and
    sharing one canonical instance per equivalence class lets its
    lazily-compiled matcher and cached hash amortize across queries.
    The cache is cleared wholesale at its bound, like the key intern
    table.
    """
    cached = _CANON_CACHE.get(pattern)
    if cached is None:
        forward: Renaming = {}
        for pos in ALL_POSITIONS:
            term = pattern.at(pos)
            if isinstance(term, Variable) and term not in forward:
                forward[term] = Variable(
                    f"{_CANONICAL_PREFIX}{len(forward)}")
        inverse = {canonical: original
                   for original, canonical in forward.items()}
        if len(_CANON_CACHE) >= _CANON_CACHE_MAX:
            _CANON_CACHE.clear()
        cached = _CANON_CACHE[pattern] = (
            rename_pattern(pattern, forward), inverse)
    # The inverse renaming is read-only at every consumer (the batch
    # executor closes over it for batch renames); return it shared.
    return cached
