"""The query engine: cached planning + batched execution, one facade.

:class:`QueryEngine` sits next to a live
:class:`~repro.mediation.network.GridVineNetwork` and owns three
pieces of state:

* a **mapping-graph mirror** — a local
  :class:`~repro.mapping.graph.MappingGraph` kept in sync with the
  deployment through the mapping-event hooks every
  :class:`~repro.mediation.peer.GridVinePeer` fires when a mapping is
  inserted, removed or deprecated (the self-organization loop's
  mutations flow through the same hooks);
* a **version clock** (:class:`~repro.engine.versioning.
  MappingVersionClock`) bumped by the same events; and
* a **plan cache** (:class:`~repro.engine.cache.PlanCache`) of
  reformulation plans, invalidated by the clock at schema granularity.

``search_for`` / ``execute_batch`` then answer queries without ever
re-fetching mapping records or re-running BFS planning for a query
shape the engine has seen before, and a batch dedupes its overlay
pattern lookups across all member queries.

The mirror reflects *issued* operations immediately (the simulator's
issuing order is deterministic), so a freshly inserted mapping is
plannable even before the overlay records finish replicating.  An
engine created after deployment data was already loaded must call
:meth:`QueryEngine.sync_from_overlay` once to backfill the mirror.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.cache import PlanCache, PlanCacheStats
from repro.engine.versioning import MappingVersionClock
from repro.mapping.graph import MappingGraph
from repro.mapping.model import SchemaMapping
from repro.mediation.query import QueryOutcome
from repro.optimizer.core import PlanDecision
from repro.rdf.parser import parse_search_for
from repro.rdf.patterns import ConjunctiveQuery
from repro.reformulation.planner import (
    Reformulation,
    plan_reformulations,
    prune_reformulations,
)
from repro.util.stats import ratio

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.mediation.network import GridVineNetwork


@dataclass
class EngineStats:
    """Lifetime execution statistics of one :class:`QueryEngine`."""

    #: times the BFS planner actually ran (i.e. plan-cache misses)
    planner_invocations: int = 0
    queries_executed: int = 0
    batches_executed: int = 0
    #: pattern occurrences across all executed reformulations
    patterns_total: int = 0
    #: distinct patterns fetched after deduplication
    patterns_fetched: int = 0
    #: network messages attributed to engine execution
    messages: int = 0
    #: queries whose result limit was reached (limit pushdown)
    limits_hit: int = 0
    #: shared scans never started because limits stopped their batch
    scans_skipped: int = 0
    #: reformulations dropped by cost-based pruning (``optimize=True``)
    reformulations_pruned: int = 0
    cache: PlanCacheStats = field(default_factory=PlanCacheStats)

    @property
    def lookups_saved(self) -> int:
        """Overlay pattern lookups avoided by batching."""
        return self.patterns_total - self.patterns_fetched

    @property
    def dedup_rate(self) -> float:
        """Fraction of pattern occurrences served by a shared lookup."""
        return ratio(self.lookups_saved, self.patterns_total)

    def register_into(self, registry, name: str = "engine") -> None:
        """Expose these counters as a lazily-evaluated view in a
        :class:`~repro.obs.registry.MetricsRegistry` (the fields stay
        plain dataclass attributes on the execution path)."""
        registry.register_view(name, self.snapshot)

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for CLI and bench reporting."""
        return {
            "planner_invocations": self.planner_invocations,
            "queries_executed": self.queries_executed,
            "batches_executed": self.batches_executed,
            "patterns_total": self.patterns_total,
            "patterns_fetched": self.patterns_fetched,
            "lookups_saved": self.lookups_saved,
            "dedup_rate": self.dedup_rate,
            "messages": self.messages,
            "limits_hit": self.limits_hit,
            "scans_skipped": self.scans_skipped,
            "reformulations_pruned": self.reformulations_pruned,
            "cache": self.cache.snapshot(),
        }


@dataclass
class BatchResult:
    """Outcomes of one :meth:`QueryEngine.execute_batch` call."""

    outcomes: list[QueryOutcome]
    #: distinct patterns fetched for this batch
    patterns_fetched: int
    #: pattern occurrences this batch would have fetched unbatched
    patterns_total: int
    #: network messages measured for this batch
    messages: int
    #: shared scans actually started (== ``patterns_fetched`` when no
    #: limit stopped the batch early)
    scans_issued: int = 0
    #: shared scans never started because every query's limit was met
    scans_skipped: int = 0
    #: queries whose result limit was reached
    limits_hit: int = 0

    @property
    def lookups_saved(self) -> int:
        """Overlay lookups this batch avoided through deduplication."""
        return self.patterns_total - self.patterns_fetched


class QueryEngine:
    """Reformulation-plan caching and batched execution for a network.

    Parameters
    ----------
    network:
        The deployment to execute against.
    domain:
        When given, the mirror graph is immediately backfilled from
        the overlay (``sync_from_overlay``); otherwise the mirror
        starts empty and fills up from mapping events only.
    max_hops:
        Default BFS depth for reformulation planning (mirrors
        ``GridVineNetwork.search_for``).
    cache_capacity:
        Plan-cache size; ``0`` disables caching (cold baseline).
    optimize:
        When True, plans are pruned by the origin peer's cost-based
        optimizer at execution time (reformulations with zero expected
        yield are never fetched — the message saving) and each
        reformulation's hash join folds its inputs in
        estimated-cardinality order (an intermediate-result-size
        saving; the shared-scan fetch set is unchanged).  Cached plans
        stay unpruned, so statistics arriving later sharpen execution
        without re-planning.  Defaults to False (bit-identical to the
        historical executor).
    """

    def __init__(self, network: "GridVineNetwork",
                 domain: str | None = None,
                 max_hops: int = 5,
                 cache_capacity: int = 256,
                 optimize: bool = False) -> None:
        self.network = network
        self.max_hops = max_hops
        self.optimize = optimize
        self.clock = MappingVersionClock()
        self.cache = PlanCache(self.clock, capacity=cache_capacity)
        self.graph = MappingGraph()
        self.stats = EngineStats(cache=self.cache.stats)
        network.add_mapping_listener(self._on_mapping_event)
        if domain is not None:
            self.sync_from_overlay(domain)

    # ------------------------------------------------------------------
    # Mirror maintenance
    # ------------------------------------------------------------------

    def _on_mapping_event(self, action: str,
                          mapping: SchemaMapping) -> None:
        """Apply one peer-issued mapping event to mirror and clock."""
        if action == "remove":
            self.graph.remove(mapping.mapping_id)
        else:  # "insert" or "deprecate" — payload carries the new state
            self.graph.add(mapping)
        self.clock.bump(mapping)

    def sync_from_overlay(self, domain: str = "default") -> None:
        """Rebuild the mirror by crawling the overlay's mapping records.

        Needed once when the engine is created *after* mappings were
        already inserted; subsequent events keep the mirror current.
        Flushes the plan cache, since plans may predate the rebuild.
        """
        self.graph = self.network.mapping_graph(domain,
                                               include_deprecated=True)
        self.cache.invalidate_all()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, query: ConjunctiveQuery,
             max_hops: int | None = None) -> list[Reformulation]:
        """The reformulation plan for ``query``, cached when possible."""
        hops = self.max_hops if max_hops is None else max_hops
        cached = self.cache.lookup(query, hops)
        if cached is not None:
            return cached
        self.stats.planner_invocations += 1
        plan = plan_reformulations(query, self.graph, max_hops=hops)
        self.cache.store(query, hops, plan)
        return plan

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def search_for(self, query: ConjunctiveQuery | str,
                   max_hops: int | None = None,
                   origin: str | None = None,
                   limit: int | None = None) -> QueryOutcome:
        """Resolve one query through the engine (strategy ``"engine"``).

        Accepts the paper's surface syntax like
        ``GridVineNetwork.search_for``; equivalent to a one-query
        batch.  ``limit`` is pushed into the executor (wave-staged
        fetching with cooperative early stop).
        """
        result = self.execute_batch([query], max_hops=max_hops,
                                    origin=origin, limit=limit)
        return result.outcomes[0]

    def execute_batch(self, queries: list[ConjunctiveQuery | str],
                      max_hops: int | None = None,
                      origin: str | None = None,
                      limit: int | None = None) -> BatchResult:
        """Plan and run a batch of queries with shared pattern lookups.

        Every query is planned through the cache, the union of all
        reformulations' patterns is deduplicated into shared scan
        operators, and each query's joins run over the shared fetch
        results.  Joins use the parallel mode (per-pattern fetch +
        origin-side join); the bound-join mode trades per-query
        messages for shipped volume and does not compose with
        cross-query sharing.

        ``limit`` caps every query's distinct result rows; scans then
        start in waves by reformulation depth, and once each query has
        enough rows the batch cancels its remaining fan-out
        (:attr:`BatchResult.scans_skipped` reports the savings).

        Message accounting lives on the returned
        :attr:`BatchResult.messages`: shared lookups make per-query
        attribution meaningless, so individual outcomes carry a
        message count only for single-query batches.
        """
        parsed = [
            parse_search_for(q) if isinstance(q, str) else q
            for q in queries
        ]
        plans = [self.plan(q, max_hops) for q in parsed]
        peer = self.network._origin(origin)
        optimizer = peer.optimizer if self.optimize else None
        pruned_counts = [0] * len(plans)
        if optimizer is not None:
            executable: list[list[Reformulation]] = []
            for index, plan in enumerate(plans):
                kept, pruned = prune_reformulations(
                    plan, optimizer.reformulation_yield,
                    optimizer.min_expected_yield,
                )
                executable.append(kept)
                pruned_counts[index] = pruned
            plans = executable
        # The transport-coupled half (operation tagging, tracing,
        # driving the loop) lives behind the network's ``run_batch``
        # seam, so the same engine works against the in-process
        # GridVineNetwork and the sharded facade.
        outcomes, fetch_stats, messages = self.network.run_batch(
            peer, parsed, plans, limit=limit, optimizer=optimizer,
        )
        if len(outcomes) == 1:
            outcomes[0].messages = messages
        if optimizer is not None:
            for outcome, parsed_query, pruned in zip(outcomes, parsed,
                                                     pruned_counts):
                outcome.decision = PlanDecision(
                    requested="engine", strategy="engine",
                    fallback=not optimizer.has_statistics(parsed_query),
                    known_peers=optimizer.estimator.known_peers(),
                    reformulations_pruned=pruned,
                    estimated_rows=optimizer.estimator.query_cardinality(
                        parsed_query),
                )
            self.stats.reformulations_pruned += sum(pruned_counts)
        self.stats.batches_executed += 1
        self.stats.queries_executed += len(parsed)
        self.stats.patterns_total += fetch_stats.patterns_total
        self.stats.patterns_fetched += fetch_stats.patterns_fetched
        self.stats.messages += messages
        self.stats.limits_hit += fetch_stats.limits_hit
        self.stats.scans_skipped += fetch_stats.scans_skipped
        return BatchResult(
            outcomes=outcomes,
            patterns_fetched=fetch_stats.patterns_fetched,
            patterns_total=fetch_stats.patterns_total,
            messages=messages,
            scans_issued=fetch_stats.scans_issued,
            scans_skipped=fetch_stats.scans_skipped,
            limits_hit=fetch_stats.limits_hit,
        )
