"""The schema model: a named set of attributes within a domain.

A schema's attributes become triple predicates through the
``SchemaName#Attribute`` URI convention (the paper's
``EMBL#Organism``).  The ``domain`` names the application domain whose
connectivity is tracked at ``Hash(Domain)`` (§3.1, e.g. "protein
sequences").
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.rdf.terms import URI


class Schema:
    """An immutable schema definition.

    >>> s = Schema("EMBL", ["Organism", "SeqLength"], domain="bio")
    >>> s.predicate("Organism")
    URI('EMBL#Organism')
    >>> s.owns_predicate(URI("EMBL#Organism"))
    True
    """

    __slots__ = ("name", "attributes", "domain")

    def __init__(self, name: str, attributes: Iterable[str],
                 domain: str = "default") -> None:
        if not name:
            raise ValueError("schema name must be non-empty")
        if "#" in name:
            raise ValueError("schema name must not contain '#'")
        attrs = tuple(sorted(set(attributes)))
        if not attrs:
            raise ValueError(f"schema {name!r} needs at least one attribute")
        for attr in attrs:
            if not attr or "#" in attr:
                raise ValueError(f"bad attribute name {attr!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "domain", domain)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Schema is immutable")

    def __reduce__(self):
        # Constructor round-trip: immutability blocks slot-state
        # unpickling, and schemas cross sharded worker pipes.
        return (Schema, (self.name, self.attributes, self.domain))

    def predicate(self, attribute: str) -> URI:
        """The predicate URI of one of this schema's attributes."""
        if attribute not in self.attributes:
            raise KeyError(f"{self.name} has no attribute {attribute!r}")
        return URI(f"{self.name}#{attribute}")

    def predicates(self) -> list[URI]:
        """All predicate URIs, in sorted attribute order."""
        return [URI(f"{self.name}#{a}") for a in self.attributes]

    def owns_predicate(self, predicate: URI) -> bool:
        """Whether ``predicate`` belongs to this schema."""
        return (predicate.namespace == self.name
                and predicate.local_name in self.attributes)

    def _key(self) -> tuple:
        return (self.name, self.attributes, self.domain)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(("Schema", self._key()))

    def __repr__(self) -> str:
        return (f"Schema({self.name!r}, {list(self.attributes)!r}, "
                f"domain={self.domain!r})")
