"""User-defined schemas shared at the mediation layer.

"GridVine supports the sharing of user-defined schemas to structure the
data shared at the mediation layer.  For the sake of this
demonstration, schemas are composed of sets of attributes that are used
as predicates in the triples.  Each schema is associated with a unique
key at the overlay layer" (§2.2).
"""

from repro.schema.model import Schema

__all__ = ["Schema"]
