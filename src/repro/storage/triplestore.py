"""The per-peer triple database with three positional hash indexes.

Triples are indexed on subject, predicate *and* object so that a
constraint search on any position is an index probe, mirroring the
three overlay-level keys each triple is published under.  Pattern
evaluation follows the paper's local plan:

    Results = pi_pos(x) sigma_pos(const)=const (DB_dest)

i.e. probe the most selective available index, then filter remaining
constants (including LIKE literals) and bind variables.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.rdf.patterns import TriplePattern
from repro.rdf.terms import GroundTerm, Literal, Variable, is_ground
from repro.rdf.triples import ALL_POSITIONS, Position, Triple
from repro.stats.synopsis import StoreSynopsis
from repro.storage.relation import Relation


class TripleStore:
    """An in-memory triple table with per-position indexes.

    Index buckets are list-backed and served in *sorted order*:
    pattern matching iterates buckets directly, and with limit
    pushdown truncating result streams the iteration order is
    semantics — hash-set buckets would make the first-N rows vary
    with the process's hash seed.  Sorting is lazy (append on insert,
    sort on the first probe after a mutation), so bulk loads stay
    O(N) and the O(k log k) ordering cost is paid once per mutated
    bucket rather than per insert or per match.

    >>> store = TripleStore()
    >>> from repro.rdf.terms import URI, Literal
    >>> store.add(Triple(URI("s"), URI("p"), Literal("o")))
    True
    >>> store.count()
    1
    """

    def __init__(self) -> None:
        self._triples: set[Triple] = set()
        self._index: dict[Position, dict[GroundTerm, list[Triple]]] = {
            pos: {} for pos in ALL_POSITIONS
        }
        #: buckets appended to since their last sort
        self._unsorted: set[tuple[Position, GroundTerm]] = set()
        #: incrementally maintained statistics (per-predicate counts,
        #: distinct subjects/objects, top-k object sketch) — digested
        #: and disseminated by the statistics layer (:mod:`repro.stats`)
        self.synopsis = StoreSynopsis()

    # -- mutation ------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns False if it was already present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self.synopsis.add(triple)
        unsorted_ = self._unsorted
        index = self._index
        for pos, term in ((Position.SUBJECT, triple.subject),
                          (Position.PREDICATE, triple.predicate),
                          (Position.OBJECT, triple.object)):
            bucket = index[pos].get(term)
            if bucket is None:
                index[pos][term] = [triple]
            else:
                bucket.append(triple)
            unsorted_.add((pos, term))
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number actually added."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Delete a triple; returns False if it was absent."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self.synopsis.remove(triple)
        for pos in ALL_POSITIONS:
            term = triple.at(pos)
            bucket = self._index[pos].get(term)
            if bucket is not None:
                # add() guards duplicates, so exactly one copy exists;
                # a linear remove keeps relative order (and therefore
                # sortedness) intact.
                bucket.remove(triple)
                if not bucket:
                    del self._index[pos][term]
                    self._unsorted.discard((pos, term))
        return True

    def clear(self) -> None:
        """Drop everything."""
        self._triples.clear()
        self._unsorted.clear()
        self.synopsis.clear()
        for pos in ALL_POSITIONS:
            self._index[pos].clear()

    # -- lookups --------------------------------------------------------

    def count(self) -> int:
        """Number of stored triples."""
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def all_triples(self) -> list[Triple]:
        """All triples, sorted for deterministic output."""
        return sorted(self._triples)

    def by_position(self, position: Position, term: GroundTerm) -> set[Triple]:
        """Index probe: triples whose ``position`` equals ``term``."""
        return set(self._index[position].get(term, ()))

    def distinct_values(self, position: Position) -> set[GroundTerm]:
        """All distinct terms occurring at ``position``.

        Used by the automatic matcher to collect the value set of a
        predicate.
        """
        return set(self._index[position])

    # -- pattern evaluation -----------------------------------------------

    def _sorted_bucket(self, pos: Position,
                       term: GroundTerm) -> list[Triple]:
        """The index bucket at ``(pos, term)``, sorted (lazily)."""
        bucket = self._index[pos].get(term)
        if bucket is None:
            return []
        if (pos, term) in self._unsorted:
            bucket.sort()
            self._unsorted.discard((pos, term))
        return bucket

    def _candidates(self, pattern: TriplePattern) -> Iterable[Triple]:
        """Smallest index bucket among the pattern's exact constants.

        Always yields triples in sorted order: the chosen bucket is
        sorted on demand, and the no-exact-constant fallback sorts the
        full table (such patterns are unroutable and never reach the
        distributed search path, so the fallback is cold).
        """
        best: tuple[Position, GroundTerm] | None = None
        best_size = 0
        for pos in ALL_POSITIONS:
            term = pattern.at(pos)
            if not is_ground(term):
                continue
            if isinstance(term, Literal) and (term.is_like_pattern
                                              or term.is_prefix_pattern):
                continue  # pattern literals cannot be probed exactly
            size = len(self._index[pos].get(term, ()))
            if best is None or size < best_size:
                best = (pos, term)
                best_size = size
        if best is None:
            return sorted(self._triples)
        return self._sorted_bucket(*best)

    def match(self, pattern: TriplePattern) -> list[dict[Variable, GroundTerm]]:
        """All variable bindings of ``pattern`` against the store.

        Patterns with no variables return ``[{}]`` when a matching
        triple exists (boolean semantics) and ``[]`` otherwise.

        Bindings come back in sorted-triple order (see the class
        docstring): with limit pushdown truncating result streams,
        iteration order is semantics now, not cosmetics.
        """
        results = []
        # Hoist the compiled matcher out of the scan: going through
        # ``pattern.matches`` would pay an extra dispatch frame per
        # candidate triple (see TriplePattern._compile_matcher).
        try:
            matcher = pattern._matcher
        except AttributeError:
            matcher = pattern._compile_matcher()
            object.__setattr__(pattern, "_matcher", matcher)
        for triple in self._candidates(pattern):
            bindings = matcher(triple)
            if bindings is not None:
                results.append(bindings)
        variables = pattern.variables()
        if not variables:
            return [{}] if results else []
        # Deduplicate equal binding dicts (LIKE matches may repeat).
        # Every dict binds exactly the pattern's variables, so the
        # value tuple in a fixed variable order is a complete identity
        # — no repr round-trip needed.
        order = sorted(variables, key=lambda v: v.value)
        unique: dict[tuple, dict[Variable, GroundTerm]] = {}
        for b in results:
            unique[tuple(b[v] for v in order)] = b
        return list(unique.values())

    def matching_triples(self, pattern: TriplePattern) -> list[Triple]:
        """The triples (not bindings) satisfying ``pattern``."""
        return sorted(
            t for t in self._candidates(pattern)
            if pattern.matches(t) is not None
        )

    # -- relational view ------------------------------------------------------

    def as_relation(self) -> Relation:
        """The triple table as a ``(subject, predicate, object)`` relation.

        Materializes the paper's physical schema
        ``S_DB = (subject, predicate, object)`` so the generic algebra
        (π/σ/⋈) applies directly — conjunctive queries on one peer can
        be answered as self joins of this relation.
        """
        return Relation(
            ("subject", "predicate", "object"),
            (t.as_tuple() for t in sorted(self._triples)),
        )
