"""Local databases of the mediation layer.

"Each peer p maintains a local database DB_p ... the physical schemas
of the local databases can all be identical and consist of three
attributes S_DB = (subject, predicate, object).  The local databases
support three standard relational algebra operators: projection pi,
selection sigma and (self) join" (§2.2).

:class:`~repro.storage.relation.Relation` implements the generic
relational layer (projection / selection / natural & theta joins);
:class:`~repro.storage.triplestore.TripleStore` is the triple table
with hash indexes on all three positions, and it answers triple
patterns with exactly the paper's
``pi_pos(x) sigma_pos(const)=const (DB)`` plan.
"""

from repro.storage.relation import Relation
from repro.storage.triplestore import TripleStore

__all__ = ["Relation", "TripleStore"]
