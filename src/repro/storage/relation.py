"""A small in-memory relational engine: π, σ and ⋈.

Rows are tuples aligned with a tuple of column names.  Operators return
new relations (value semantics); selections accept either an equality
dict or an arbitrary row predicate.  Set semantics (duplicate
elimination) follow the relational model; :meth:`Relation.project`
deduplicates its output.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import Any


class Relation:
    """An immutable relation (named columns + rows of equal arity).

    >>> r = Relation(("a", "b"), [(1, 2), (3, 4)])
    >>> r.select_eq(a=3).rows
    ((3, 4),)
    >>> r.project(["b"]).rows
    ((2,), (4,))
    """

    __slots__ = ("columns", "rows", "_column_index")

    def __init__(self, columns: Sequence[str], rows: Iterable[tuple]) -> None:
        columns = tuple(columns)
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names: {columns}")
        materialized = tuple(tuple(row) for row in rows)
        for row in materialized:
            if len(row) != len(columns):
                raise ValueError(
                    f"row arity {len(row)} != schema arity {len(columns)}"
                )
        object.__setattr__(self, "columns", columns)
        object.__setattr__(self, "rows", materialized)
        object.__setattr__(
            self, "_column_index", {c: i for i, c in enumerate(columns)}
        )

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Relation is immutable")

    def __reduce__(self):
        # Constructor round-trip: immutability blocks slot-state
        # unpickling, and result relations cross sharded worker pipes.
        return (Relation, (self.columns, self.rows))

    # -- accessors ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column_position(self, column: str) -> int:
        """Index of ``column`` in the schema (raises KeyError if absent)."""
        return self._column_index[column]

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as column-keyed dicts (testing convenience)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    # -- unary operators --------------------------------------------------

    def project(self, columns: Sequence[str]) -> "Relation":
        """π: keep only ``columns``, eliminating duplicate rows."""
        indices = [self.column_position(c) for c in columns]
        seen: set[tuple] = set()
        out: list[tuple] = []
        for row in self.rows:
            projected = tuple(row[i] for i in indices)
            if projected not in seen:
                seen.add(projected)
                out.append(projected)
        return Relation(tuple(columns), out)

    def select(self, predicate: Callable[[dict[str, Any]], bool]) -> "Relation":
        """σ with an arbitrary predicate over a column-keyed row view."""
        kept = [
            row for row in self.rows
            if predicate(dict(zip(self.columns, row)))
        ]
        return Relation(self.columns, kept)

    def select_eq(self, **equalities: Any) -> "Relation":
        """σ with conjunctive equality conditions, e.g.
        ``select_eq(predicate=uri, object=value)``."""
        indices = [(self.column_position(c), v) for c, v in equalities.items()]
        kept = [
            row for row in self.rows
            if all(row[i] == v for i, v in indices)
        ]
        return Relation(self.columns, kept)

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """ρ: rename columns (unmentioned columns keep their names)."""
        new_columns = tuple(mapping.get(c, c) for c in self.columns)
        return Relation(new_columns, self.rows)

    def distinct(self) -> "Relation":
        """Duplicate elimination."""
        seen: set[tuple] = set()
        out = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return Relation(self.columns, out)

    # -- binary operators ---------------------------------------------------

    def natural_join(self, other: "Relation") -> "Relation":
        """⋈: hash join on all shared column names.

        With no shared columns this degenerates to the cross product,
        matching standard natural-join semantics.
        """
        shared = [c for c in self.columns if c in other.columns]
        other_only = [c for c in other.columns if c not in shared]
        result_columns = self.columns + tuple(other_only)
        if not shared:
            rows = [l + r for l in self.rows for r in other.rows]
            return Relation(result_columns, rows)
        left_keys = [self.column_position(c) for c in shared]
        right_keys = [other.column_position(c) for c in shared]
        right_rest = [other.column_position(c) for c in other_only]
        buckets: dict[tuple, list[tuple]] = {}
        for row in other.rows:
            key = tuple(row[i] for i in right_keys)
            buckets.setdefault(key, []).append(tuple(row[i] for i in right_rest))
        rows = []
        for row in self.rows:
            key = tuple(row[i] for i in left_keys)
            for rest in buckets.get(key, ()):
                rows.append(row + rest)
        return Relation(result_columns, rows)

    def union(self, other: "Relation") -> "Relation":
        """∪ with set semantics (schemas must match)."""
        if self.columns != other.columns:
            raise ValueError(
                f"union schema mismatch: {self.columns} vs {other.columns}"
            )
        return Relation(self.columns, self.rows + other.rows).distinct()

    # -- plumbing -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (self.columns == other.columns
                and sorted(map(repr, self.rows)) == sorted(map(repr, other.rows)))

    def __repr__(self) -> str:
        return f"Relation(columns={self.columns!r}, rows={len(self.rows)})"
