"""Command-line interface: ``python -m repro <command>``.

Three commands, mirroring what a demo visitor could do at the VLDB'07
booth:

``demo``
    Run the §4 storyline end to end (corpus generation, deployment,
    self-organization rounds, recall report).

``query``
    Deploy the bioinformatic corpus and run one ``SearchFor`` query
    under a chosen strategy, printing results and cost.  ``--limit``
    is pushed into the distributed execution (limit pushdown): the
    streaming pipeline cancels its remaining fan-out once enough
    distinct rows arrived, and the report shows what that saved.

``batch``
    Run a repeated-query workload through the query engine
    (:mod:`repro.engine`) and report plan-cache hit rate, pattern
    deduplication and messages — the engine's execution statistics.

``scenario``
    Run a scripted churn scenario (:mod:`repro.resilience`): peers
    fail and recover while a query workload runs, and the report
    shows recall vs ground truth, latency percentiles, exact
    per-query messages and failover activity.

``stats``
    Deploy the corpus, let synopsis gossip piggyback on maintenance
    for a while, then print one peer's statistics digest and how well
    the network-wide cardinality estimates match the true corpus.

``chaos``
    The deterministic fault lab (:mod:`repro.faultlab`): ``chaos run``
    executes one seeded fault schedule against a scripted scenario
    and checks every system invariant, ``chaos explore`` sweeps a
    budget of consecutive seeds, and ``chaos replay`` re-runs any
    failure from its printed seed alone — with ``--shrink`` it then
    minimizes the failing schedule to the smallest clause set that
    still fails.

``scaleout``
    Run one scale-out deployment (:mod:`repro.pgrid.scaleout`) on a
    chosen transport — the single-loop baseline or the windowed
    sharded engine at any shard count — and print the engine-
    comparable report (successes, hops, messages, wall clock, RSS).

``experiments``
    List the E1..E19 benchmark targets and how to run them.

``trace``
    Analyze a trace written by ``--trace out.jsonl`` (available on
    ``query``, ``batch``, ``scenario``, ``chaos run`` and
    ``scaleout``): per-trace
    summaries and slowest queries by default, ``--waterfall`` /
    ``--critical-path`` for one trace's hop-by-hop timeline, and
    ``--stats`` for per-op-tag message attribution with per-kind
    splits and drop causes.
"""

from __future__ import annotations

import argparse
import sys

from repro import GridVineNetwork
from repro.datagen import BioDatasetGenerator, QueryWorkloadGenerator
from repro.rdf.parser import ParseError, parse_search_for
from repro.selforg import CreationPolicy, SelfOrganizationController

_EXPERIMENTS = [
    ("E1", "Figure 2 reformulation", "bench_e1_reformulation.py"),
    ("E2", "340-peer latency CDF (40%/75% anchors)",
     "bench_e2_latency_cdf.py"),
    ("E3", "connectivity indicator vs giant component",
     "bench_e3_connectivity.py"),
    ("E4", "recall growth under self-organization",
     "bench_e4_recall_growth.py"),
    ("E5", "Bayesian deprecation precision/recall",
     "bench_e5_deprecation.py"),
    ("E6", "O(log n) routing scaling", "bench_e6_routing_scaling.py"),
    ("E7", "triple index fan-out & routing-key rule",
     "bench_e7_index_fanout.py"),
    ("E8", "iterative vs recursive reformulation",
     "bench_e8_strategies.py"),
    ("E9", "matcher measure-combination ablation",
     "bench_e9_matcher.py"),
    ("E10", "exchange-based vs top-down construction",
     "bench_e10_construction.py"),
    ("E11", "order-preserving range queries", "bench_e11_range_queries.py"),
    ("E12", "parallel vs bound conjunctive joins",
     "bench_e12_join_modes.py"),
    ("E13", "plan-cache warm/cold + batched dedup",
     "bench_e13_plan_cache.py"),
    ("E14", "churn recall with replica failover on/off",
     "bench_e14_churn_recall.py"),
    ("E15", "limit pushdown: messages saved by early stop",
     "bench_e15_limit_pushdown.py"),
    ("E16", "cost-based auto strategy vs static choices",
     "bench_e16_optimizer.py"),
    ("E17", "partition recall with anti-entropy repair on/off",
     "bench_e17_partition_recall.py"),
    ("E18", "10k-peer scale-out: sharded vs single-loop transport",
     "bench_e18_scaleout.py"),
    ("E19", "sharded mediation: bit-identical GridVine queries",
     "bench_e19_sharded_mediation.py"),
]


def _deploy(args) -> tuple[GridVineNetwork, object]:
    """Build the corpus and deployment shared by demo/query."""
    dataset = BioDatasetGenerator(
        num_schemas=args.schemas,
        num_entities=args.entities,
        entities_per_schema=max(5, args.entities // 5),
        seed=args.seed,
    ).generate()
    net = GridVineNetwork.build(num_peers=args.peers, seed=args.seed,
                                replication=2)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    # seed mappings pair the schemas off: every schema touches a
    # mapping, but the graph starts far from strongly connected, so
    # the self-organization loop has work to do
    names = [s.name for s in dataset.schemas]
    for i in range(0, len(names) - 1, 2):
        net.insert_mapping(
            dataset.ground_truth_mapping(names[i], names[i + 1]))
    net.settle()
    return net, dataset


def _warm_statistics(net, seconds: float, interval: float = 20.0) -> None:
    """Run maintenance for a while so synopsis gossip converges.

    Synopses piggyback on the probes and sync pushes the maintenance
    process sends anyway, so warming costs exactly the maintenance
    traffic — zero messages are spent on statistics themselves.
    """
    import random as _random

    from repro.pgrid.maintenance import MaintenanceProcess

    maintenance = MaintenanceProcess(net.peers, interval=interval,
                                     rng=_random.Random(9))
    maintenance.start()
    net.loop.run_until(net.loop.now + seconds)
    maintenance.stop()
    net.loop.run_until(net.loop.now + 2 * interval)


def _maybe_install_tracer(net, args):
    """Install a span recorder when the command got ``--trace PATH``."""
    if getattr(args, "trace", None):
        net.install_tracer()


def _maybe_export_trace(net, args) -> None:
    path = getattr(args, "trace", None)
    if path:
        count = net.export_trace(path)
        print(f"trace    : {count} record(s) -> {path} "
              f"(inspect with: python -m repro trace {path})")


def cmd_demo(args) -> int:
    net, dataset = _deploy(args)
    print(f"{len(dataset.schemas)} schemas, {len(dataset.triples)} "
          f"triples on {args.peers} peers")
    workload = QueryWorkloadGenerator(dataset, seed=args.seed)
    query = workload.concept_query(dataset.schemas[0].name, "organism",
                                   "Aspergillus")
    controller = SelfOrganizationController(
        net, domain=dataset.domain,
        policy=CreationPolicy(mappings_per_round=3))
    before = net.search_for(query, strategy="iterative", max_hops=8)
    print(f"before self-organization: ci="
          f"{net.connectivity_indicator(dataset.domain):+.3f}, "
          f"probe query answers {before.result_count}")
    for report in controller.run(max_rounds=args.rounds):
        print(f"  round {report.round_index}: "
              f"ci {report.ci_before:+.3f} -> {report.ci_after:+.3f}, "
              f"+{len(report.created)} mappings, "
              f"-{len(report.deprecated)} deprecated")
    after = net.search_for(query, strategy="iterative", max_hops=8)
    print(f"after: ci={net.connectivity_indicator(dataset.domain):+.3f}, "
          f"probe query answers {after.result_count}")
    return 0


def cmd_query(args) -> int:
    try:
        query = parse_search_for(args.query)
    except ParseError as exc:
        print(f"query does not parse: {exc}", file=sys.stderr)
        return 2
    limit = args.limit if args.limit > 0 else None
    net, dataset = _deploy(args)
    controller = SelfOrganizationController(
        net, domain=dataset.domain,
        policy=CreationPolicy(mappings_per_round=3))
    controller.run(max_rounds=args.rounds)
    if args.strategy == "auto":
        _warm_statistics(net, seconds=args.warm_stats)
    _maybe_install_tracer(net, args)
    if args.strategy == "engine":
        engine = net.create_engine(domain=dataset.domain,
                                   max_hops=args.max_hops)
        outcome = engine.search_for(query, limit=limit)
    else:
        outcome = net.search_for(query, strategy=args.strategy,
                                 max_hops=args.max_hops, limit=limit)
    print(f"query    : {query}")
    strategy_note = "" if limit is None else f", limit {limit} pushed down"
    print(f"strategy : {args.strategy}{strategy_note}")
    decision = outcome.decision
    if decision is not None:
        if decision.fallback:
            print("optimizer: no statistics propagated yet; static "
                  f"{decision.strategy} fallback")
        else:
            estimated = ("?" if decision.estimated_messages is None
                         else f"{decision.estimated_messages:.0f}")
            rows = ("?" if decision.estimated_rows is None
                    else f"{decision.estimated_rows:.1f}")
            print(f"optimizer: chose {decision.strategy} "
                  f"({decision.reason})")
            print(f"           estimated {rows} rows / ~{estimated} "
                  f"messages; actual {outcome.result_count} rows / "
                  f"{outcome.messages} messages; "
                  f"{decision.reformulations_pruned} reformulation(s) "
                  f"pruned")
    print(f"results  : {outcome.result_count}")
    for row in outcome.sorted_results():
        print("  " + ", ".join(str(t) for t in row))
    print(f"latency  : {outcome.latency:.2f}s (simulated), "
          f"{outcome.messages} messages, "
          f"{outcome.reformulations_explored} reformulation(s)")
    if limit is not None:
        if outcome.limit_hit:
            print(f"early stop: limit reached after "
                  f"{outcome.first_result_latency:.2f}s to first result; "
                  f"cancelled remaining fan-out "
                  f"({outcome.fetches_skipped} planned fetches skipped, "
                  f"~{outcome.estimated_messages_saved} messages saved; "
                  f"{outcome.rows_after_cancel} late rows discarded)")
        else:
            print(f"early stop: limit {limit} not reached "
                  f"({outcome.result_count} total results); "
                  f"full fan-out executed")
    if outcome.result_count == 0:
        sample = sorted(
            str(schema.predicate(attr))
            for schema in dataset.schemas[:3]
            for attr in schema.attributes[:3]
        )[:6]
        print("hint     : 0 results — the generated corpus uses "
              "randomized attribute names; try predicates like:")
        for predicate in sample:
            print(f"             {predicate}")
    _maybe_export_trace(net, args)
    return 0


def cmd_batch(args) -> int:
    net, dataset = _deploy(args)
    controller = SelfOrganizationController(
        net, domain=dataset.domain,
        policy=CreationPolicy(mappings_per_round=3))
    controller.run(max_rounds=args.rounds)
    _maybe_install_tracer(net, args)
    engine = net.create_engine(domain=dataset.domain,
                               max_hops=args.max_hops)
    workload = QueryWorkloadGenerator(dataset, seed=args.seed)
    distinct = workload.queries(args.queries)
    # Interleave repeats the way concurrent users would issue them.
    batch = [q for _ in range(args.repeat) for q in distinct]
    print(f"batch of {len(batch)} queries "
          f"({args.queries} distinct x {args.repeat} repeats) "
          f"on {args.peers} peers")
    for label in ("cold", "warm"):
        result = engine.execute_batch(batch)
        answered = sum(1 for o in result.outcomes if o.result_count)
        print(f"{label:<5}: {answered}/{len(batch)} queries answered, "
              f"{result.patterns_total} pattern lookups -> "
              f"{result.patterns_fetched} fetched "
              f"({result.lookups_saved} saved by dedup), "
              f"{result.messages} messages")
    stats = engine.stats.snapshot()
    print(f"plan cache: {stats['cache']['hits']} hits / "
          f"{stats['cache']['lookups']} lookups "
          f"(hit rate {stats['cache']['hit_rate']:.1%}), "
          f"{stats['planner_invocations']} planner invocation(s)")
    print(f"engine    : {stats['lookups_saved']} total lookups saved "
          f"(dedup rate {stats['dedup_rate']:.1%}), "
          f"{stats['messages']} messages")
    _maybe_export_trace(net, args)
    return 0


def cmd_scenario(args) -> int:
    from repro.resilience import ScenarioRunner, ScenarioSpec

    spec = ScenarioSpec(
        num_peers=args.peers,
        replication=args.replication,
        refs_per_level=args.replication,
        seed=args.seed,
        failover=not args.no_failover,
        num_schemas=args.schemas,
        num_entities=args.entities,
        selforg_rounds=args.selforg_rounds,
        mean_uptime=args.uptime,
        mean_downtime=args.downtime,
        num_queries=args.queries,
        strategy=args.strategy,
        max_hops=args.max_hops,
        limit=args.limit if args.limit > 0 else None,
    )
    print(f"scenario: {spec.num_peers} peers (replication "
          f"{spec.replication}), {spec.num_schemas} schemas, "
          f"churn up/down {spec.mean_uptime:.0f}s/"
          f"{spec.mean_downtime:.0f}s, {spec.num_queries} queries "
          f"({spec.strategy}), failover "
          f"{'on' if spec.failover else 'off'}")
    runner = ScenarioRunner.from_spec(spec)
    _maybe_install_tracer(runner.network, args)
    report = runner.run()
    for line in report.summary():
        print(line)
    _maybe_export_trace(runner.network, args)
    return 0


def cmd_stats(args) -> int:
    net, dataset = _deploy(args)
    controller = SelfOrganizationController(
        net, domain=dataset.domain,
        policy=CreationPolicy(mappings_per_round=3))
    controller.run(max_rounds=args.rounds)
    _warm_statistics(net, seconds=args.warm_stats)
    node_id = args.node if args.node else net.peer_ids()[0]
    peer = net.peer(node_id)
    digest = peer.synopsis_digest()
    print(f"peer {node_id}: {digest.triples} local triples, "
          f"{len(digest.predicates)} predicates, "
          f"{len(digest.mappings)} mapping edge(s), "
          f"digest version {digest.version}")
    ranked = sorted(digest.predicates,
                    key=lambda d: (-d.triples, d.predicate))
    for entry in ranked[:args.top]:
        sketch = ", ".join(f"{value!r}x{count}"
                           for value, count in entry.top_objects[:3])
        print(f"  {entry.predicate:<28} {entry.triples:>5} triples, "
              f"{entry.distinct_subjects} subj / "
              f"{entry.distinct_objects} obj distinct"
              + (f"  top: {sketch}" if sketch else ""))
    estimator = peer.optimizer.estimator
    coverage = ("full" if estimator.full_coverage() else "partial")
    print(f"registry : digests of {len(peer.synopses)} other peer(s) "
          f"(of {len(net.peers) - 1}), {coverage} key-space coverage, "
          f"{estimator.known_edge_count()} mapping edge(s) known "
          f"network-wide")
    # Network-wide estimate error vs the generator's ground truth.
    actual: dict[str, int] = {}
    for triple in dataset.triples:
        key = triple.predicate.value
        actual[key] = actual.get(key, 0) + 1
    errors = []
    worst: tuple[float, str] | None = None
    for predicate, true_count in sorted(actual.items()):
        estimate = estimator.predicate_estimate(predicate)
        estimated = estimate.triples if estimate is not None else 0
        error = abs(estimated - true_count) / true_count
        errors.append(error)
        if worst is None or error > worst[0]:
            worst = (error, predicate)
    mean_error = sum(errors) / len(errors) if errors else 0.0
    print(f"estimates: {len(actual)} true predicates, mean relative "
          f"error {mean_error:.1%}"
          + (f", worst {worst[0]:.1%} on {worst[1]}"
             if worst is not None else ""))
    return 0


def _chaos_explorer(args):
    from dataclasses import replace as _replace

    from repro.faultlab import ScenarioExplorer
    from repro.faultlab.explorer import default_spec

    spec = _replace(default_spec(),
                    num_peers=args.peers,
                    num_queries=args.queries)
    return ScenarioExplorer(spec=spec, intensity=args.intensity,
                            min_recall=args.min_recall,
                            min_live_recall=args.min_live_recall)


def _print_trial(trial, show_plan: bool) -> None:
    if show_plan:
        print("fault schedule:")
        for line in trial.plan.describe():
            print("  " + line)
    for line in trial.report.summary():
        print(line)
    if trial.ok:
        print("invariants: all hold")
    else:
        print("invariants VIOLATED:")
        for violation in trial.invariants.violations:
            print(f"  {violation}")


def cmd_chaos(args) -> int:
    explorer = _chaos_explorer(args)
    if args.chaos_command == "explore":
        trials = explorer.explore(args.budget, start_seed=args.start_seed)
        for trial in trials:
            for line in trial.summary():
                print(line)
        failed = [t for t in trials if not t.ok]
        print(f"explored {len(trials)} seed(s) "
              f"({args.intensity}): {len(trials) - len(failed)} passed, "
              f"{len(failed)} failed")
        if failed:
            # The full flag set: replay must rebuild the exact spec
            # and floors this exploration ran, not the defaults.
            print("replay any failure with: python -m repro chaos replay "
                  f"--seed {failed[0].seed} --intensity {args.intensity} "
                  f"--peers {args.peers} --queries {args.queries} "
                  f"--min-recall {args.min_recall:g} "
                  f"--min-live-recall {args.min_live_recall:g} [--shrink]")
        return 1 if failed else 0
    # run / replay: one seeded trial (replay is the explicit
    # reproduce-from-printed-seed entry point; both derive everything
    # from the seed alone)
    trace_path = getattr(args, "trace", None)
    trial = explorer.run_trial(args.seed, trace_path=trace_path)
    if trace_path:
        print(f"trace: written to {trace_path} "
              f"(inspect with: python -m repro trace {trace_path})")
    print(f"seed {args.seed} ({args.intensity}): "
          + ("PASS" if trial.ok else "FAIL"))
    _print_trial(trial, show_plan=True)
    if args.chaos_command == "replay" and args.shrink:
        if trial.ok:
            print("nothing to shrink: all invariants hold")
            return 0
        # Reuse the trial already run above as the reproduction step
        # (a scenario run is the expensive unit of the whole tool).
        result = explorer.shrink(args.seed, trial=trial)
        for line in result.summary():
            print(line)
    return 0 if trial.ok else 1


def cmd_scaleout(args) -> int:
    from repro.pgrid.scaleout import (
        ScaleoutSpec,
        run_inprocess,
        run_sharded,
    )

    spec = ScaleoutSpec(
        num_peers=args.peers,
        num_shards=args.shards,
        mode=args.mode,
        seed=args.seed,
        num_keys=args.keys,
        ops_per_wave=args.ops,
        num_waves=args.waves,
        churn=args.churn,
        workload=args.workload,
        trace_path=getattr(args, "trace", None),
    )
    engine = run_inprocess if args.engine == "inprocess" else run_sharded
    shards = "" if args.engine == "inprocess" else \
        f" x {spec.num_shards} shards ({spec.mode})"
    ops = ("SearchFor queries" if spec.workload == "mediation"
           else f"retrieves over {spec.num_keys} keys")
    print(f"scaleout: {spec.num_peers} peers{shards}, "
          f"{spec.num_waves} waves x {spec.ops_per_wave} {ops}, "
          f"churn {'on' if spec.churn else 'off'}")
    report = engine(spec)
    for key, value in report.summary().items():
        print(f"  {key:<22} {value}")
    if spec.trace_path:
        print(f"trace: written to {spec.trace_path} "
              f"(inspect with: python -m repro trace {spec.trace_path})")
    return 0


def cmd_trace(args) -> int:
    from repro.obs import analysis

    try:
        records = analysis.load_any(args.file)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    if not records:
        print("trace is empty")
        return 1
    if args.waterfall:
        for line in analysis.waterfall(records, args.waterfall):
            print(line)
        return 0
    if args.critical_path:
        path = analysis.critical_path(records, args.critical_path)
        if not path:
            print(f"trace {args.critical_path!r}: no spans",
                  file=sys.stderr)
            return 2
        print(f"critical path of {args.critical_path} "
              f"({len(path)} span(s)):")
        for line in analysis.critical_path_lines(path):
            print(line)
        return 0
    if args.stats:
        print("per-operation message attribution "
              "(trace id == op tag):")
        for line in analysis.format_stats(
                analysis.attribution_stats(records)):
            print("  " + line)
        return 0
    summaries = analysis.trace_summaries(records)
    print(f"{len(summaries)} trace(s), {len(records)} record(s):")
    for line in analysis.summary_lines(summaries):
        print("  " + line)
    slowest = analysis.top_slowest(records, k=args.top)
    if len(summaries) > 1:
        print(f"slowest {len(slowest)}:")
        for line in analysis.summary_lines(slowest):
            print("  " + line)
    if summaries:
        print("drill down with: --waterfall "
              f"{slowest[0]['trace']} | --critical-path "
              f"{slowest[0]['trace']} | --stats")
    return 0


def cmd_experiments(_args) -> int:
    print("experiment benchmarks (see EXPERIMENTS.md for recorded "
          "paper-vs-measured results):\n")
    for exp_id, title, module in _EXPERIMENTS:
        print(f"  {exp_id:<4} {title:<46} benchmarks/{module}")
    print("\nrun all:   pytest benchmarks/ --benchmark-only -s")
    print("full scale: REPRO_BENCH_SCALE=full pytest benchmarks/ "
          "--benchmark-only -s")
    return 0


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a causal trace of every query "
                             "(spans per message/retry/join, fault "
                             "annotations) and write it as sorted "
                             "JSONL; analyze with 'repro trace PATH'")


def _add_profile_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", action="store_true",
                        help="run the command under cProfile and "
                             "print the top-20 functions by "
                             "cumulative time (the same harness as "
                             "benchmarks/profile.py)")


def _add_deploy_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--peers", type=int, default=100)
    parser.add_argument("--schemas", type=int, default=10)
    parser.add_argument("--entities", type=int, default=100)
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GridVine reproduction (VLDB 2007) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the §4 demonstration storyline")
    _add_deploy_args(demo)
    demo.set_defaults(func=cmd_demo)

    query = sub.add_parser("query", help="run one SearchFor query")
    query.add_argument("query", help='e.g. "SearchFor(x? : (x?, '
                                     'EMBL#Organism, %%Aspergillus%%))"')
    query.add_argument("--strategy", default="iterative",
                       choices=["local", "iterative", "recursive",
                                "engine", "auto"],
                       help="local: no reformulation; iterative: the "
                            "origin reformulates; recursive: schema "
                            "peers reformulate; engine: cached plans "
                            "+ batched execution; auto: the cost-based "
                            "optimizer picks per query from gossiped "
                            "statistics")
    query.add_argument("--limit", type=int, default=10,
                       help="result-row cap pushed into distributed "
                            "execution (limit pushdown): the query "
                            "stops spending messages once this many "
                            "distinct rows arrived; 0 = unlimited")
    query.add_argument("--max-hops", type=int, default=8,
                       help="mapping-path exploration depth (BFS "
                            "depth / recursive TTL)")
    query.add_argument("--warm-stats", type=float, default=600.0,
                       help="virtual seconds of maintenance gossip "
                            "before an --strategy auto query")
    _add_deploy_args(query)
    _add_profile_arg(query)
    _add_trace_arg(query)
    query.set_defaults(func=cmd_query)

    batch = sub.add_parser(
        "batch", help="run a repeated-query workload through the "
                      "query engine and report its statistics")
    batch.add_argument("--queries", type=int, default=8,
                       help="distinct queries in the workload")
    batch.add_argument("--repeat", type=int, default=5,
                       help="how many times each query recurs")
    batch.add_argument("--max-hops", type=int, default=8,
                       help="reformulation planning depth")
    _add_deploy_args(batch)
    _add_profile_arg(batch)
    _add_trace_arg(batch)
    batch.set_defaults(func=cmd_batch)

    scenario = sub.add_parser(
        "scenario", help="run a scripted churn scenario and report "
                         "recall, latency and failover activity")
    scenario.add_argument("--peers", type=int, default=48)
    scenario.add_argument("--replication", type=int, default=3,
                          help="replica-group size (and refs per level)")
    scenario.add_argument("--schemas", type=int, default=6)
    scenario.add_argument("--entities", type=int, default=60)
    scenario.add_argument("--seed", type=int, default=42)
    scenario.add_argument("--queries", type=int, default=18)
    scenario.add_argument("--uptime", type=float, default=120.0,
                          help="mean seconds a peer stays online")
    scenario.add_argument("--downtime", type=float, default=45.0,
                          help="mean seconds a failed peer stays offline")
    scenario.add_argument("--selforg-rounds", type=int, default=0,
                          help="self-organization rounds before churn "
                               "(0: pre-insert the ground-truth chain)")
    scenario.add_argument("--strategy", default="iterative",
                          choices=["local", "iterative", "recursive",
                                   "engine", "auto"])
    scenario.add_argument("--max-hops", type=int, default=8,
                          help="mapping-path exploration depth")
    scenario.add_argument("--limit", type=int, default=0,
                          help="per-query result cap pushed into "
                               "execution (0 = unlimited)")
    scenario.add_argument("--no-failover", action="store_true",
                          help="disable replica-aware failover (A/B "
                               "baseline)")
    _add_profile_arg(scenario)
    _add_trace_arg(scenario)
    scenario.set_defaults(func=cmd_scenario)

    stats = sub.add_parser(
        "stats", help="print a peer's synopsis digest and the "
                      "network-wide cardinality estimate error")
    stats.add_argument("--node", default=None,
                       help="peer to inspect (default: first peer)")
    stats.add_argument("--warm-stats", type=float, default=600.0,
                       help="virtual seconds of maintenance gossip "
                            "before reading the registry")
    stats.add_argument("--top", type=int, default=8,
                       help="predicates to list from the digest")
    _add_deploy_args(stats)
    stats.set_defaults(func=cmd_stats)

    chaos = sub.add_parser(
        "chaos", help="deterministic fault lab: seeded fault "
                      "schedules, invariant checks, replay and "
                      "shrinking")
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--intensity", default="light",
                            choices=["light", "heavy", "extreme"],
                            help="fault-schedule generation profile "
                                 "(extreme adds a kill-every-reply "
                                 "clause)")
        parser.add_argument("--peers", type=int, default=20)
        parser.add_argument("--queries", type=int, default=6,
                            help="queries issued while faults run")
        parser.add_argument("--min-recall", type=float, default=0.9,
                            help="post-heal recall floor (invariant)")
        parser.add_argument("--min-live-recall", type=float, default=0.4,
                            help="under-faults mean recall floor "
                                 "(invariant)")

    chaos_run = chaos_sub.add_parser(
        "run", help="run one seeded fault schedule and check "
                    "invariants")
    chaos_run.add_argument("--seed", type=int, default=0)
    _add_chaos_args(chaos_run)
    _add_trace_arg(chaos_run)
    chaos_run.set_defaults(func=cmd_chaos)

    chaos_explore = chaos_sub.add_parser(
        "explore", help="sweep a budget of consecutive seeds; exit 1 "
                        "if any invariant broke")
    chaos_explore.add_argument("--budget", type=int, default=8,
                               help="number of seeded scenarios to run")
    chaos_explore.add_argument("--start-seed", type=int, default=0)
    _add_chaos_args(chaos_explore)
    chaos_explore.set_defaults(func=cmd_chaos)

    chaos_replay = chaos_sub.add_parser(
        "replay", help="reproduce one explored scenario from its "
                       "printed seed alone")
    chaos_replay.add_argument("--seed", type=int, required=True)
    chaos_replay.add_argument("--shrink", action="store_true",
                              help="minimize a failing fault schedule "
                                   "to the smallest clause set that "
                                   "still fails")
    _add_chaos_args(chaos_replay)
    chaos_replay.set_defaults(func=cmd_chaos)

    scaleout = sub.add_parser(
        "scaleout", help="run one scale-out deployment on the sharded "
                         "or single-loop transport and report "
                         "engine-comparable numbers")
    scaleout.add_argument("--engine", default="sharded",
                          choices=["inprocess", "sharded"],
                          help="inprocess: one event loop (the E18 "
                               "baseline); sharded: windowed shards "
                               "over the trie key space")
    scaleout.add_argument("--peers", type=int, default=2000)
    scaleout.add_argument("--shards", type=int, default=4,
                          help="shard count (sharded engine only)")
    scaleout.add_argument("--mode", default="inline",
                          choices=["inline", "process"],
                          help="run shards in-process or as forked "
                               "workers (identical results either way)")
    scaleout.add_argument("--seed", type=int, default=0)
    scaleout.add_argument("--keys", type=int, default=200,
                          help="distinct preloaded needle keys")
    scaleout.add_argument("--ops", type=int, default=100,
                          help="retrieve operations per wave")
    scaleout.add_argument("--waves", type=int, default=3)
    scaleout.add_argument("--churn", action="store_true",
                          help="replay the seeded exponential outage "
                               "trace while the waves run")
    scaleout.add_argument("--workload", default="retrieve",
                          choices=["retrieve", "mediation"],
                          help="retrieve: raw P-Grid lookups; "
                               "mediation: GridVine peers running "
                               "SearchFor query waves over a generated "
                               "corpus with a ground-truth mapping "
                               "chain")
    _add_trace_arg(scaleout)
    scaleout.set_defaults(func=cmd_scaleout)

    experiments = sub.add_parser("experiments",
                                 help="list benchmark targets")
    experiments.set_defaults(func=cmd_experiments)

    trace = sub.add_parser(
        "trace", help="analyze a --trace JSONL export: summaries, "
                      "waterfalls, critical paths, per-op message "
                      "attribution")
    trace.add_argument("file", help="JSONL file written by --trace")
    trace.add_argument("--waterfall", metavar="TRACE", default=None,
                       help="render one trace's hop-by-hop timeline")
    trace.add_argument("--critical-path", metavar="TRACE", default=None,
                       help="print the span chain bounding one "
                            "trace's makespan")
    trace.add_argument("--stats", action="store_true",
                       help="per-op-tag message attribution with "
                            "per-kind splits and drop causes")
    trace.add_argument("--top", type=int, default=5,
                       help="slowest traces to list in the summary")
    trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "profile", False):
        from repro.util.profiling import print_profile, profile_call

        status, profile_report = profile_call(lambda: args.func(args))
        print_profile(profile_report)
        return status
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
