"""The streaming core of the operator runtime: batches, operators,
pipeline context.

Execution is organized as a DAG of :class:`Operator` nodes through
which :class:`Batch` es of rows are *pushed* as soon as they exist —
there is no materialize-everything-then-return step.  The push
discipline is what makes limit pushdown work: the moment a downstream
``Limit`` has enough rows it fires the pipeline's
:class:`~repro.simnet.events.CancelToken`, and every upstream operator
checks that token before issuing new overlay fetches or reformulation
fan-out.

Mechanics
---------

* An operator *emits* batches to its downstream edges; an edge may
  carry a ``transform`` (e.g. re-expressing a shared scan's canonical
  bindings in the consumer's variables — with columnar batches that is
  one :meth:`Batch.renamed` schema remap, not a per-row rewrite).
* Each edge occupies a distinct input *slot* on the downstream
  operator, so the same upstream may legally feed one consumer twice
  (a reformulation using the same canonical pattern in two positions).
* An operator with inputs closes automatically once every input slot
  has closed; :meth:`Operator.on_finish` runs just before closing and
  may still emit (joins flush there).  Source operators (no inputs)
  close themselves when their asynchronous work completes.
* Per-operator counters (:class:`OperatorStats`) record rows in/out
  and the overlay fetches issued vs skipped — the raw material for
  the "messages saved by early stop" accounting.

Everything runs single-threaded on the simulation's event loop;
callbacks fire synchronously, so emission order (and therefore every
measurement) is deterministic under a fixed seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.simnet.events import CancelToken, Future

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.mediation.peer import GridVinePeer
    from repro.rdf.patterns import ConjunctiveQuery, TriplePattern


class OperatorStats:
    """Row / fetch counters of one operator."""

    __slots__ = ("name", "rows_in", "rows_out", "batches_out",
                 "fetches_issued", "fetches_skipped", "rows_dropped")

    def __init__(self, name: str) -> None:
        self.name = name
        #: rows received from upstream
        self.rows_in = 0
        #: rows emitted downstream
        self.rows_out = 0
        #: batches emitted downstream
        self.batches_out = 0
        #: overlay operations this operator started (each costs
        #: network messages)
        self.fetches_issued = 0
        #: overlay operations skipped because the pipeline was
        #: cancelled first — the "messages saved by early stop"
        self.fetches_skipped = 0
        #: rows discarded after the operator stopped accepting
        #: (e.g. arriving once a limit was already satisfied)
        self.rows_dropped = 0

    def snapshot(self) -> dict:
        """A plain-dict copy for outcomes and reports."""
        return {
            "name": self.name,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "batches_out": self.batches_out,
            "fetches_issued": self.fetches_issued,
            "fetches_skipped": self.fetches_skipped,
            "rows_dropped": self.rows_dropped,
        }

    def register_into(self, registry, name: str | None = None) -> None:
        """Expose these counters as a lazily-evaluated registry view.

        The counters stay plain attributes (the hot path never goes
        through the registry); the view snapshots them on demand (see
        :meth:`repro.obs.registry.MetricsRegistry.register_view`).
        """
        registry.register_view(name if name is not None
                               else f"operator:{self.name}", self.snapshot)


class Batch:
    """One columnar unit of streamed data: a schema plus value columns.

    A batch carries its variable schema *once* — ``schema`` is a tuple
    of :class:`~repro.rdf.terms.Variable` — and the values either as
    parallel columns (one list per schema variable) or as row tuples
    (one value per schema position).  Both representations are
    materialized lazily and cached, so a ``Project`` is column slicing,
    a ``Dedup`` is tuple-set membership, and renaming an edge's
    variables (:meth:`renamed`) is one schema remap per batch instead
    of a dict copy per row.

    ``count`` is the number of rows; it is explicit because the
    zero-variable relation (``schema == ()``) still distinguishes the
    empty result from the unit row ``()``.  ``source`` is the
    (original or reformulated) query that produced the rows — the
    attribution key for :attr:`~repro.mediation.query.QueryOutcome.
    results_by_query`.
    """

    __slots__ = ("schema", "source", "count", "_columns", "_tuples")

    def __init__(self, schema: tuple = (), *,
                 columns: tuple | None = None,
                 tuples: list | None = None,
                 count: int | None = None,
                 source: "ConjunctiveQuery | None" = None) -> None:
        self.schema = schema
        self.source = source
        self._columns = columns
        self._tuples = tuples
        if count is not None:
            self.count = count
        elif tuples is not None:
            self.count = len(tuples)
        elif columns is not None and columns:
            self.count = len(columns[0])
        else:
            self.count = 0

    @classmethod
    def from_bindings(cls, rows: list, schema: tuple | None = None,
                      source: "ConjunctiveQuery | None" = None) -> "Batch":
        """Build a batch from homogeneous binding dicts.

        ``schema`` defaults to the first row's insertion order; every
        row must bind exactly the schema's variables.
        """
        if schema is None:
            schema = tuple(rows[0]) if rows else ()
        if not schema:
            return cls((), tuples=[() for _ in rows], source=source)
        tuples = [tuple(row[v] for v in schema) for row in rows]
        return cls(schema, tuples=tuples, source=source)

    @classmethod
    def from_tuples(cls, schema: tuple, tuples: list,
                    source: "ConjunctiveQuery | None" = None) -> "Batch":
        """Build a batch from row tuples in ``schema`` position order."""
        return cls(schema, tuples=tuples, source=source)

    def tuples(self) -> list:
        """Row-major view (cached): one value tuple per row."""
        tuples = self._tuples
        if tuples is None:
            if self._columns:
                tuples = list(zip(*self._columns))
            else:
                tuples = [()] * self.count
            self._tuples = tuples
        return tuples

    def columns(self) -> tuple:
        """Column-major view (cached): one value list per variable."""
        columns = self._columns
        if columns is None:
            if self._tuples and self.schema:
                columns = tuple(map(list, zip(*self._tuples)))
            else:
                columns = tuple([] for _ in self.schema)
            self._columns = columns
        return columns

    def column(self, variable) -> list:
        """The value column of one schema variable."""
        return self.columns()[self.schema.index(variable)]

    def to_bindings(self) -> list:
        """Per-row binding dicts (compatibility / reference view)."""
        schema = self.schema
        return [dict(zip(schema, row)) for row in self.tuples()]

    def renamed(self, renaming: dict) -> "Batch":
        """A view of this batch with schema variables renamed.

        Shares the underlying columns/tuples — the whole point: an
        edge transform costs one tuple rebuild of the schema, not a
        dict copy per row.
        """
        if not renaming:
            return self
        schema = tuple(renaming.get(v, v) for v in self.schema)
        return Batch(schema, columns=self._columns, tuples=self._tuples,
                     count=self.count, source=self.source)


class Operator:
    """Base class of every node in an execution DAG."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = OperatorStats(name)
        #: the pipeline this operator runs in (set by
        #: :meth:`PipelineContext.register`); lets non-source operators
        #: (joins) reach the peer/tracer without threading state
        self.ctx: "PipelineContext | None" = None
        #: outgoing edges: (downstream, transform, downstream slot)
        self._edges: list[tuple["Operator",
                                Callable[[Batch], Batch] | None, int]] = []
        self._input_slots = 0
        self._open_inputs = 0
        self._closed = False
        self._closing = False
        self._close_listeners: list[Callable[["Operator"], None]] = []

    # -- wiring ---------------------------------------------------------

    def connect(self, downstream: "Operator",
                transform: Callable[[Batch], Batch] | None = None
                ) -> "Operator":
        """Add an edge to ``downstream``; returns ``downstream``.

        Each call claims a fresh input slot on the consumer, so
        connecting the same pair twice creates two independent inputs.
        """
        slot = downstream._add_input()
        self._edges.append((downstream, transform, slot))
        return downstream

    def _add_input(self) -> int:
        slot = self._input_slots
        self._input_slots += 1
        self._open_inputs += 1
        return slot

    def on_closed(self, listener: Callable[["Operator"], None]) -> None:
        """Run ``listener(self)`` when this operator closes."""
        if self._closed:
            listener(self)
        else:
            self._close_listeners.append(listener)

    @property
    def closed(self) -> bool:
        """Whether the operator's output stream has ended."""
        return self._closed

    # -- data flow ------------------------------------------------------

    def emit(self, batch: Batch) -> None:
        """Push one batch to every downstream edge."""
        if self._closed:
            return
        self.stats.rows_out += batch.count
        self.stats.batches_out += 1
        for downstream, transform, slot in self._edges:
            downstream._receive(
                batch if transform is None else transform(batch), slot
            )

    def _receive(self, batch: Batch, slot: int) -> None:
        if self._closed:
            self.stats.rows_dropped += batch.count
            return
        self.stats.rows_in += batch.count
        self.on_batch(batch, slot)

    def close(self) -> None:
        """End the output stream (idempotent).

        Runs :meth:`on_finish` first — which may still emit final
        batches — then propagates the close to every downstream slot.
        """
        if self._closed or self._closing:
            return
        self._closing = True
        self.on_finish()
        self._closed = True
        for downstream, _transform, slot in self._edges:
            downstream._input_closed(slot)
        listeners, self._close_listeners = self._close_listeners, []
        for listener in listeners:
            listener(self)

    def _input_closed(self, slot: int) -> None:
        self._open_inputs -= 1
        self.on_input_closed(slot)
        if self._open_inputs <= 0 and self._input_slots > 0:
            self.close()

    # -- hooks ----------------------------------------------------------

    def start(self, ctx: "PipelineContext") -> None:
        """Begin a source operator's asynchronous work (no-op here)."""

    def on_batch(self, batch: Batch, slot: int) -> None:
        """Handle one incoming batch (default: pass through)."""
        self.emit(batch)

    def on_input_closed(self, slot: int) -> None:
        """React to one input stream ending (default: nothing)."""

    def on_finish(self) -> None:
        """Flush before closing (default: nothing)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PipelineContext:
    """Shared state of one pipeline run.

    Holds the executing peer, the run's cancellation token, and the
    registry of operators (for stats aggregation).  Operators issue
    their overlay work through :meth:`fetch_pattern` so skip/issue
    accounting stays in one place.
    """

    def __init__(self, peer: "GridVinePeer",
                 cancel: CancelToken | None = None) -> None:
        self.peer = peer
        self.cancel = cancel if cancel is not None else CancelToken()
        self.operators: list[Operator] = []
        self._registered: set[int] = set()
        self.issued_at = peer.loop.now
        #: the optimizer's :class:`~repro.optimizer.core.PlanDecision`
        #: steering this pipeline (``None`` on static strategies);
        #: subplans spawned per reformulation inherit it via the
        #: shared context
        self.decision = None

    @property
    def cancelled(self) -> bool:
        """Whether the pipeline's cancel token has fired."""
        return self.cancel.cancelled

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.peer.loop.now

    def register(self, *operators: Operator) -> None:
        """Track operators for stats aggregation (idempotent)."""
        for op in operators:
            if id(op) not in self._registered:
                self._registered.add(id(op))
                self.operators.append(op)
                op.ctx = self

    def start_source(self, op: Operator) -> None:
        """Register and start one source operator."""
        self.register(op)
        op.start(self)

    def fetch_pattern(self, op: Operator,
                      pattern: "TriplePattern") -> Future:
        """Issue one pattern fetch on behalf of ``op``.

        When the pipeline is already cancelled the fetch is skipped
        (counted on the operator) and an empty binding list resolves
        immediately — zero messages spent.
        """
        if self.cancel.cancelled:
            op.stats.fetches_skipped += 1
            future: Future = Future()
            future.set_result([])
            return future
        op.stats.fetches_issued += 1
        network = self.peer.network
        tracer = network.tracer if network is not None else None
        if tracer is None or not tracer._stack:
            return self.peer._search_pattern(pattern, cancel=self.cancel)
        # Traced fetch: a shared-scan span covers the whole overlay
        # search this operator kicked off; the span's context is active
        # during issue so the search's messages parent under it, and it
        # closes when the search future resolves.
        span = tracer.begin(f"scan:{op.name}", peer=self.peer.node_id,
                            kind="scan", start=network.loop._now,
                            pattern=repr(pattern))
        with tracer.activate(tracer.context_of(span)):
            future = self.peer._search_pattern(pattern, cancel=self.cancel)
        future.add_done_callback(
            lambda _f: tracer.finish(span, network.loop._now))
        return future

    # -- aggregation ----------------------------------------------------

    def fetches_issued(self) -> int:
        """Total overlay fetches issued across all operators."""
        return sum(op.stats.fetches_issued for op in self.operators)

    def fetches_skipped(self) -> int:
        """Total overlay fetches skipped due to cancellation."""
        return sum(op.stats.fetches_skipped for op in self.operators)

    def operator_snapshots(self) -> list[dict]:
        """Per-operator stats in registration order."""
        return [op.stats.snapshot() for op in self.operators]
