"""Shared binding-set helpers used across the execution layer.

Binding dicts (``Variable -> GroundTerm``) are the currency of query
execution: pattern scans produce them, joins combine them, projections
turn them into result rows.  Three recurring manipulations used to be
reimplemented ad hoc by the bound-join closure in
``mediation/peer.py`` and the batch executor in ``engine/executor.py``;
they live here once:

* **identity** — :func:`binding_key` / :func:`dedup_bindings` give a
  binding dict a hashable identity so duplicate bindings (the same
  row fetched through two substituted pattern variants, or through
  two replicas) collapse;
* **vocabulary changes** — :func:`remap_bindings` re-expresses
  bindings produced under canonical (alpha-renamed) variables in a
  consumer pattern's own variables, and :func:`restore_variables`
  re-attaches the variables a bound-join substitution erased;
* **joins** — :func:`hash_join_bindings`, a hash-based natural join
  that replaces the nested-loop :func:`~repro.rdf.patterns.
  join_bindings` on the hot path (same join semantics, O(n + m)
  instead of O(n * m) for equi-joins on shared variables).

Since the columnar batch rewrite the operator runtime moves data as
:class:`~repro.exec.stream.Batch` objects; :func:`pattern_schema` and
:func:`join_batches` are the columnar counterparts of the dict-row
helpers.  The dict-row functions stay as the *reference
implementation*: the Hypothesis property suite in
``tests/strategies/`` checks the columnar operators against them, and
:func:`hash_join_bindings` still serves heterogeneous inputs.
"""

from __future__ import annotations

from typing import Iterable

from repro.exec.stream import Batch
from repro.rdf.patterns import TriplePattern, join_bindings
from repro.rdf.terms import GroundTerm, Variable
from repro.rdf.triples import ALL_POSITIONS

#: variable -> variable substitution (as produced by
#: :func:`repro.engine.signature.canonicalize_pattern`)
Renaming = dict[Variable, Variable]


def binding_key(bindings: dict[Variable, GroundTerm]) -> tuple:
    """A hashable, order-insensitive identity for one binding dict.

    Two binding dicts with the same variable-to-value assignment get
    the same key regardless of insertion order.
    """
    return tuple(sorted(
        (variable.value, repr(term))
        for variable, term in bindings.items()
    ))


def dedup_bindings(
    rows: Iterable[dict[Variable, GroundTerm]],
    seen: set[tuple] | None = None,
) -> list[dict[Variable, GroundTerm]]:
    """Order-preserving dedup of binding dicts by :func:`binding_key`.

    ``seen`` (when given) carries keys across calls, so a streaming
    consumer can dedup against everything it has already accepted.
    """
    if seen is None:
        seen = set()
    out: list[dict[Variable, GroundTerm]] = []
    for bindings in rows:
        key = binding_key(bindings)
        if key not in seen:
            seen.add(key)
            out.append(bindings)
    return out


def remap_bindings(
    bindings: list[dict[Variable, GroundTerm]],
    renaming: Renaming,
) -> list[dict[Variable, GroundTerm]]:
    """Re-express bindings through a variable renaming.

    Used when a shared (canonicalized) pattern scan feeds a consumer
    that phrased the pattern in its own variables; bindings of fully
    ground patterns pass through unchanged.
    """
    if not renaming:
        return bindings
    return [
        {renaming.get(var, var): term for var, term in b.items()}
        for b in bindings
    ]


def restore_variables(
    pattern: TriplePattern,
    variant: TriplePattern,
    bindings: dict[Variable, GroundTerm],
) -> dict[Variable, GroundTerm]:
    """Re-attach the variables a substitution erased.

    A bound join fetches ``variant`` (= ``pattern`` with earlier
    bindings substituted in); the bindings that come back only cover
    ``variant``'s remaining variables.  This re-adds ``pattern``'s
    substituted variables with their ground values so the join sees
    them again.
    """
    restored = dict(bindings)
    for pos in ALL_POSITIONS:
        term = pattern.at(pos)
        variant_term = variant.at(pos)
        if isinstance(term, Variable) and not isinstance(variant_term,
                                                        Variable):
            restored[term] = variant_term
    return restored


def hash_join_bindings(
    left: Iterable[dict[Variable, GroundTerm]],
    right: Iterable[dict[Variable, GroundTerm]],
) -> list[dict[Variable, GroundTerm]]:
    """Natural join of two binding sets, hash-based on the hot path.

    Semantically identical to :func:`repro.rdf.patterns.join_bindings`
    (per-pair agreement on shared variables, cross product when none
    are shared) but builds a hash table over the right side keyed by
    the shared variables, so the common homogeneous case — every row
    of a side binds the same variable set, which is what pattern scans
    produce — runs in O(n + m).  Heterogeneous or variable-free inputs
    fall back to the nested-loop join.
    """
    left = list(left)
    right = list(right)
    if not left or not right:
        return []
    left_vars = set(left[0])
    right_vars = set(right[0])
    if (any(set(b) != left_vars for b in left)
            or any(set(b) != right_vars for b in right)):
        return join_bindings(left, right)
    shared = tuple(sorted(left_vars & right_vars,
                          key=lambda v: v.value))
    if not shared:
        return join_bindings(left, right)  # cross product
    buckets: dict[tuple, list[dict[Variable, GroundTerm]]] = {}
    for rb in right:
        buckets.setdefault(tuple(rb[v] for v in shared), []).append(rb)
    joined: list[dict[Variable, GroundTerm]] = []
    for lb in left:
        for rb in buckets.get(tuple(lb[v] for v in shared), ()):
            merged = dict(lb)
            merged.update(rb)
            joined.append(merged)
    return joined


def pattern_schema(pattern: TriplePattern) -> tuple[Variable, ...]:
    """The batch schema a scan of ``pattern`` produces.

    Unique variables in subject, predicate, object order — exactly the
    insertion order of the binding dicts
    :meth:`~repro.rdf.patterns.TriplePattern.matches` builds, so
    columnar and dict-row scans agree on column order.
    """
    out: list[Variable] = []
    for pos in ALL_POSITIONS:
        term = pattern.at(pos)
        if isinstance(term, Variable) and term not in out:
            out.append(term)
    return tuple(out)


def join_batches(left: Batch, right: Batch) -> Batch:
    """Natural join of two columnar batches.

    The columnar counterpart of :func:`hash_join_bindings`, and
    row-for-row order-identical to it: shared variables are compared
    in sorted-by-name order, the hash table is built over the right
    side in arrival order, and output rows stream left-outer (each
    left row against its bucket in bucket order).  The output schema
    is the left schema followed by the right-only variables — the
    merge order of ``dict(lb); merged.update(rb)``.

    The unit relation (``schema == ()``, one row) is the join
    identity, so executors seed folds with ``Batch((), count=1)``.
    """
    lschema, rschema = left.schema, right.schema
    lset = set(lschema)
    out_schema = lschema + tuple(v for v in rschema if v not in lset)
    if not left.count or not right.count:
        return Batch(out_schema, tuples=[])
    shared = sorted(lset & set(rschema), key=lambda v: v.value)
    ltuples, rtuples = left.tuples(), right.tuples()
    out: list[tuple]
    if not shared:
        # Cross product, left-outer order (matches ``join_bindings``).
        out = [lt + rt for lt in ltuples for rt in rtuples]
        return Batch(out_schema, tuples=out)
    l_idx = [lschema.index(v) for v in shared]
    r_idx = [rschema.index(v) for v in shared]
    r_keep = [i for i, v in enumerate(rschema) if v not in lset]
    buckets: dict[tuple, list] = {}
    for rt in rtuples:
        buckets.setdefault(tuple(rt[i] for i in r_idx), []).append(
            tuple(rt[i] for i in r_keep))
    out = []
    get = buckets.get
    for lt in ltuples:
        bucket = get(tuple(lt[i] for i in l_idx))
        if bucket:
            for tail in bucket:
                out.append(lt + tail)
    return Batch(out_schema, tuples=out)
