"""Plan builders: from (query, strategy) to a wired operator DAG.

The three ``SearchFor`` strategies of §4 are expressed as different
*shapes* of the same operator algebra:

``local``
    one execution subplan for the original query —
    ``PatternScan*/BoundJoin -> HashJoin -> Project -> Dedup`` —
    feeding ``Union -> Limit -> Collect``;

``iterative``
    a :class:`~repro.exec.operators.Reformulate` source that walks
    mapping paths through the overlay and spawns one such subplan per
    distinct reformulation, all feeding the same
    ``Union -> Limit -> Collect`` tail;

``recursive``
    a :class:`~repro.exec.operators.RecursiveFanout` source streaming
    already-projected rows back from the schema peers into the same
    tail.

The shared tail is where limit pushdown lives: a satisfied ``Limit``
fires the pipeline's cancel token, upstream operators stop issuing
fetches, and the outcome records what that saved.  The batched engine
executor (:mod:`repro.engine.executor`) builds its own multi-query DAG
with shared scan operators but reuses the same operator classes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exec.operators import (
    BoundJoin,
    Collect,
    Dedup,
    HashJoin,
    Limit,
    PatternScan,
    Project,
    RecursiveFanout,
    Reformulate,
    Union,
)
from repro.exec.stream import Operator, PipelineContext
from repro.rdf.patterns import ConjunctiveQuery
from repro.simnet.events import CancelToken, Future

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.mediation.peer import GridVinePeer

#: strategies :func:`run_query_plan` knows how to build (``"auto"``
#: resolves to one of the other three via the peer's optimizer)
STRATEGIES = ("local", "iterative", "recursive", "auto")


def attach_execution_subplan(ctx: PipelineContext,
                             query: ConjunctiveQuery,
                             downstream: Operator) -> None:
    """Wire and start the execution subplan of one (reformulated)
    query, feeding ``downstream``.

    Honours the peer's :attr:`~repro.mediation.peer.GridVinePeer.
    join_mode`: parallel mode scans every pattern independently and
    hash-joins at the origin; bound mode runs the sequential
    substituting join.  Either way the subplan ends in
    ``Project -> Dedup`` so exactly one attributable row stream per
    reformulation reaches ``downstream``.

    When the pipeline carries an optimizer decision (``ctx.decision``,
    set by ``strategy="auto"``), the join mode may be overridden per
    query and pattern scans / bound-join steps run in the optimizer's
    estimated-cardinality order; otherwise the historical static
    behaviour applies unchanged.
    """
    peer = ctx.peer
    decision = ctx.decision
    join_mode = peer.join_mode
    ordered = None
    if decision is not None:
        if decision.join_mode is not None:
            join_mode = decision.join_mode
        optimizer = getattr(peer, "optimizer", None)
        if optimizer is not None:
            ordered = optimizer.scan_order(query)
    sources: list[Operator] = []
    tail: Operator
    if join_mode == "bound" and len(query.patterns) > 1:
        tail = BoundJoin(query, peer.bound_join_fanout_cap,
                         ordered=ordered)
        sources.append(tail)
    else:
        join = HashJoin()
        for pattern in (ordered if ordered is not None
                        else query.patterns):
            scan = PatternScan(pattern)
            scan.connect(join)
            sources.append(scan)
        tail = join
    project = Project(query)
    dedup = Dedup()
    tail.connect(project)
    project.connect(dedup)
    dedup.connect(downstream)
    ctx.register(tail, project, dedup)
    # Start only after the chain is fully wired: a scan whose key the
    # origin owns completes synchronously.
    for source in sources:
        ctx.start_source(source)


def execute_query_rows(peer: "GridVinePeer", query: ConjunctiveQuery,
                       cancel: CancelToken | None = None) -> Future:
    """Resolve one query's rows from ``peer`` (no reformulation).

    Resolves to the set of projected result tuples — the data-layer
    primitive used both by the local strategy's building blocks and by
    schema peers executing received reformulations on the recursive
    path.
    """
    ctx = PipelineContext(peer, cancel=cancel)
    union = Union()
    collect = Collect(ctx)
    union.connect(collect)
    ctx.register(union, collect)
    attach_execution_subplan(ctx, query, union)
    return collect.future


def run_query_plan(peer: "GridVinePeer", query: ConjunctiveQuery,
                   strategy: str, max_hops: int,
                   limit: int | None = None) -> Future:
    """Build, wire and start the operator DAG of one ``SearchFor``.

    ``strategy="auto"`` consults the peer's cost-based optimizer: the
    executed strategy, join mode, scan order and reformulation pruning
    are chosen from propagated statistics (falling back to the static
    iterative path when none exist), and the
    :class:`~repro.optimizer.core.PlanDecision` is recorded on the
    outcome.

    Returns a future resolving to the :class:`~repro.mediation.query.
    QueryOutcome`, with streaming statistics (first-result latency,
    limit/cancellation accounting, per-operator counters) filled in.
    """
    # Imported here, not at module top: repro.mediation's package init
    # imports the peer, which imports this module — a lazy import keeps
    # either entry point (mediation first or exec first) working.
    from repro.mediation.query import QueryOutcome

    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}")
    ctx = PipelineContext(peer)
    outcome = QueryOutcome(query=query, strategy=strategy,
                           issued_at=peer.loop.now, limit=limit)
    decision = None
    if strategy == "auto":
        decision = peer.optimizer.choose_strategy(query, max_hops)
        outcome.decision = decision
        strategy = decision.strategy
        if not decision.fallback:
            ctx.decision = decision
    union = Union()
    limit_op = Limit(limit)
    collect = Collect(ctx, outcome=outcome)
    union.connect(limit_op)
    limit_op.connect(collect)
    ctx.register(union, limit_op, collect)

    reformulate: Reformulate | None = None
    fanout: RecursiveFanout | None = None

    def _finalize() -> None:
        outcome.latency = peer.loop.now - outcome.issued_at
        if collect.first_rows_at is not None:
            outcome.first_result_latency = (collect.first_rows_at
                                            - outcome.issued_at)
        outcome.limit_hit = limit_op.satisfied
        outcome.fetches_issued = ctx.fetches_issued()
        outcome.fetches_skipped = ctx.fetches_skipped()
        outcome.rows_after_cancel = (limit_op.late_rows
                                     + collect.stats.rows_dropped)
        outcome.operator_stats = ctx.operator_snapshots()
        if reformulate is not None:
            # Pruned translations were derived but never executed —
            # they count as pruned, not as explored.
            outcome.reformulations_explored = (
                len(reformulate.seen) - 1 - reformulate.pruned)
            if decision is not None:
                decision.reformulations_pruned = reformulate.pruned
        elif fanout is not None:
            outcome.reformulations_explored = max(
                0, len(outcome.results_by_query) - 1)
            outcome.complete = fanout.complete

    collect.finalize = _finalize

    def _on_satisfied() -> None:
        # Cooperative early stop: cancel upstream work first (pending
        # overlay ops resolve immediately, nothing new is issued),
        # then resolve the outcome.
        ctx.cancel.cancel()
        collect.resolve()

    limit_op.on_satisfied = _on_satisfied

    if strategy == "local":
        attach_execution_subplan(ctx, query, union)
    elif strategy == "iterative":
        prune = None
        if ctx.decision is not None:
            prune = peer.optimizer.keep_reformulation
        reformulate = Reformulate(
            query, max_hops,
            lambda c, q: attach_execution_subplan(c, q, union),
            prune=prune)
        reformulate.connect(union)
        ctx.start_source(reformulate)
    else:  # "recursive"
        fanout = RecursiveFanout(query, max_hops)
        fanout.connect(union)
        ctx.start_source(fanout)
    return collect.future
