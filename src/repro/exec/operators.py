"""The operator algebra: sources, joins, and streaming modifiers.

Each class is one node type of the execution DAG (see
:mod:`repro.exec.stream` for the streaming mechanics and
:mod:`repro.exec.plans` for how strategies assemble them):

* sources — :class:`PatternScan` (one overlay pattern fetch),
  :class:`BoundJoin` (the sequential substituting join, which issues
  its own fetches step by step), :class:`Reformulate` (the iterative
  strategy's overlay-driven BFS over mapping paths, spawning one
  subplan per reformulation) and :class:`RecursiveFanout` (the
  origin-side accounting of the recursive strategy's delegated
  reformulation protocol);
* relational operators — :class:`HashJoin`, :class:`Project`,
  :class:`Dedup`, :class:`Union`;
* control — :class:`Limit` (limit pushdown: fires the pipeline's
  cancel token the moment enough distinct rows have passed) and
  :class:`Collect` (the sink resolving a future with a
  :class:`~repro.mediation.query.QueryOutcome` or a bare row set).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.exec.bindings import join_batches, pattern_schema
from repro.exec.stream import Batch, Operator, PipelineContext
from repro.mapping.unfolding import query_schemas, translate_query
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.terms import Variable
from repro.rdf.triples import ALL_POSITIONS, Position
from repro.simnet.events import Future, gather

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mediation.query import QueryOutcome


def selectivity_rank(pattern: TriplePattern) -> tuple:
    """Sort key: most selective pattern first.

    Exact subjects pin a single resource; exact objects a value;
    predicates an entire attribute extent.  More exact constants beat
    fewer.
    """
    constants = pattern.constants()
    return (
        0 if Position.SUBJECT in constants else 1,
        0 if Position.OBJECT in constants else 1,
        0 if Position.PREDICATE in constants else 1,
        str(pattern),
    )


class PatternScan(Operator):
    """Fetch one triple pattern's bindings from the overlay.

    Emits a single batch when the fetch resolves, then closes.  A scan
    started after the pipeline was cancelled skips the fetch entirely
    (zero messages) and emits nothing; :meth:`skip` lets a scheduler
    close a never-started scan explicitly.
    """

    def __init__(self, pattern: TriplePattern, name: str | None = None
                 ) -> None:
        super().__init__(name if name is not None else f"scan{pattern}")
        self.pattern = pattern

    def start(self, ctx: PipelineContext) -> None:
        ctx.fetch_pattern(self, self.pattern).add_done_callback(
            self._on_rows)

    def _on_rows(self, future: Future) -> None:
        # The overlay's wire format stays binding dicts; the scan is
        # the columnar boundary — one conversion per fetched batch.
        self.emit(Batch.from_bindings(future.result(),
                                      schema=pattern_schema(self.pattern)))
        self.close()

    def skip(self) -> None:
        """Close without ever fetching (counted as a saved fetch)."""
        if self._closed:
            return
        self.stats.fetches_skipped += 1
        self.close()


def _concat_batches(batches: list[Batch]) -> Batch:
    """One batch holding every row of ``batches``, in arrival order.

    Every batch of a slot comes from the same upstream operator, so
    their schemas agree; a mismatch would mean a mis-wired plan.
    """
    if not batches:
        return Batch((), tuples=[])
    if len(batches) == 1:
        return batches[0]
    schema = batches[0].schema
    if any(b.schema != schema for b in batches[1:]):
        raise ValueError("slot received batches with differing schemas")
    tuples: list[tuple] = []
    for b in batches:
        tuples.extend(b.tuples())
    return Batch(schema, tuples=tuples)


class HashJoin(Operator):
    """N-ary natural join at the origin (the paper's parallel mode).

    Buffers each input slot's batches and, once every input has
    closed, folds them left to right with
    :func:`~repro.exec.bindings.join_batches` — slot order is connect
    order, i.e. the query's pattern order.  The fold seeds with the
    unit relation, keying each step on precomputed column indices of
    the shared variables.
    """

    def __init__(self, name: str = "hash-join") -> None:
        super().__init__(name)
        self._batches_by_slot: dict[int, list[Batch]] = {}

    def on_batch(self, batch: Batch, slot: int) -> None:
        self._batches_by_slot.setdefault(slot, []).append(batch)

    def on_finish(self) -> None:
        ctx = self.ctx
        tracer = None
        if ctx is not None and ctx.peer.network is not None:
            tracer = ctx.peer.network.tracer
        span = None
        if tracer is not None and tracer._stack:
            # Zero-duration in virtual time (the fold is synchronous);
            # the span exists for its position in the waterfall and its
            # row accounting.
            span = tracer.begin(f"join:{self.name}",
                                peer=ctx.peer.node_id, kind="join",
                                start=ctx.now)
        joined = Batch((), count=1)  # the join identity
        for slot in range(self._input_slots):
            joined = join_batches(
                joined, _concat_batches(self._batches_by_slot.get(slot, [])))
            if not joined.count:
                break
        if span is not None:
            tracer.finish(span, ctx.now, rows=joined.count,
                          inputs=self._input_slots)
        self.emit(joined)


class BoundJoin(Operator):
    """Sequential bound join: substitute earlier bindings into later
    patterns before fetching them.

    A source operator (it issues its own overlay fetches): patterns
    are ordered most-selective-first; at each step the distinct
    substituted variants of the next pattern are fetched (capped at
    ``fanout_cap`` variants — beyond that the unbound pattern is
    cheaper) and joined into the running binding set.  Cancellation is
    checked before every step, so a satisfied limit stops all
    remaining fetches.
    """

    def __init__(self, query: ConjunctiveQuery, fanout_cap: int,
                 ordered: list[TriplePattern] | None = None) -> None:
        super().__init__("bound-join")
        self.query = query
        self.fanout_cap = fanout_cap
        #: step order: the optimizer's cardinality-based order when
        #: supplied, else the static constant-shape heuristic
        self.ordered = (list(ordered) if ordered is not None
                        else sorted(query.patterns, key=selectivity_rank))
        self._ctx: PipelineContext | None = None

    def start(self, ctx: PipelineContext) -> None:
        self._ctx = ctx
        self._step(0, Batch((), count=1))

    def _step(self, index: int, joined: Batch) -> None:
        ctx = self._ctx
        assert ctx is not None
        if index == len(self.ordered) or not joined.count:
            self.emit(joined)
            self.close()
            return
        if ctx.cancelled:
            # The remaining patterns were never verified against these
            # partial bindings, so no rows may be emitted.  Each
            # skipped step would have fetched one variant per distinct
            # substitution of the current bindings (capped), so count
            # skips at that scale to keep the saved-messages estimate
            # in the same units as fetches_issued.
            per_step = max(1, min(joined.count, self.fanout_cap))
            self.stats.fetches_skipped += (
                per_step * (len(self.ordered) - index))
            self.emit(Batch(joined.schema, tuples=[]))
            self.close()
            return
        pattern = self.ordered[index]
        # Distinct substituted variants, keyed on the columns the
        # pattern actually reads (first-occurrence order — the same
        # variant set and order the per-row substitution produced).
        pvars = pattern.variables()
        schema = joined.schema
        rel_idx = [i for i, v in enumerate(schema) if v in pvars]
        variants: list[TriplePattern] = []
        seen_variants: set[tuple] = set()
        for row in joined.tuples():
            key = tuple(row[i] for i in rel_idx)
            if key not in seen_variants:
                seen_variants.add(key)
                variants.append(pattern.substitute(
                    {schema[i]: row[i] for i in rel_idx}))
        if (len(variants) > self.fanout_cap
                or any(not v.variables() for v in variants)):
            # Too many variants (or fully ground ones, whose empty
            # binding dicts would not join back): fetch unbound.
            variants = [pattern]

        fetch_schema = pattern_schema(pattern)

        def _on_fetched(future: Future) -> None:
            # Restore the variables each substitution erased (their
            # ground values are read off the variant once per variant,
            # not once per row), dedup across variants by value tuple,
            # and join columnar.
            fetched: list[tuple] = []
            seen_keys: set[tuple] = set()
            for bindings_list, variant in zip(future.result(), variants):
                restored: dict = {}
                for pos in ALL_POSITIONS:
                    term = pattern.at(pos)
                    variant_term = variant.at(pos)
                    if (isinstance(term, Variable)
                            and not isinstance(variant_term, Variable)):
                        restored[term] = variant_term
                for b in bindings_list:
                    row = tuple(restored[v] if v in restored else b[v]
                                for v in fetch_schema)
                    if row not in seen_keys:
                        seen_keys.add(row)
                        fetched.append(row)
            self._step(index + 1, join_batches(
                joined, Batch(fetch_schema, tuples=fetched)))

        gather([ctx.fetch_pattern(self, v) for v in variants]
               ).add_done_callback(_on_fetched)


class Union(Operator):
    """Merge several streams (pass-through; closes when all inputs do)."""

    def __init__(self, name: str = "union") -> None:
        super().__init__(name)


class Project(Operator):
    """Slice out the columns of the query's distinguished variables.

    Column selection, not per-row dict rebuilds: the batch's schema is
    checked once, and the distinguished columns are re-bundled in
    projection order (rows of a batch missing a distinguished variable
    all miss it — schemas are batch-level).  Emitted batches are
    tagged with the producing query — the provenance :class:`Collect`
    uses for per-reformulation result attribution.
    """

    def __init__(self, query: ConjunctiveQuery) -> None:
        super().__init__("project")
        self.query = query

    def on_batch(self, batch: Batch, slot: int) -> None:
        query = self.query
        distinguished = query.distinguished
        schema = batch.schema
        if batch.count and all(v in schema for v in distinguished):
            columns = batch.columns()
            out = Batch(distinguished,
                        columns=tuple(columns[schema.index(v)]
                                      for v in distinguished),
                        count=batch.count, source=query)
        else:
            out = Batch(distinguished, tuples=[], source=query)
        self.emit(out)


class Dedup(Operator):
    """Drop rows already seen on this stream (order-preserving)."""

    def __init__(self, name: str = "dedup") -> None:
        super().__init__(name)
        self.seen: set = set()

    def on_batch(self, batch: Batch, slot: int) -> None:
        seen = self.seen
        fresh = []
        for row in batch.tuples():
            if row not in seen:
                seen.add(row)
                fresh.append(row)
        self.emit(Batch(batch.schema, tuples=fresh, source=batch.source))


class Limit(Operator):
    """Stop the stream after ``limit`` distinct rows (limit pushdown).

    Rows count toward the limit once each (duplicates pass through
    without counting, keeping per-reformulation attribution intact).
    The moment the limit is reached the operator truncates the
    current batch, stops accepting further input, and calls
    ``on_satisfied`` — which in a single-query plan fires the
    pipeline's cancel token, cooperatively stopping every upstream
    fetch still pending.  ``limit=None`` is a pure pass-through.
    """

    def __init__(self, limit: int | None,
                 on_satisfied: Callable[[], None] | None = None) -> None:
        super().__init__("limit" if limit is None else f"limit[{limit}]")
        self.limit = limit
        self.on_satisfied = on_satisfied
        self.satisfied = False
        self.seen: set = set()
        #: rows from batches arriving *after* satisfaction — true late
        #: arrivals, as opposed to the same-batch overshoot that
        #: triggered the limit (both count in ``stats.rows_dropped``)
        self.late_rows = 0

    def on_batch(self, batch: Batch, slot: int) -> None:
        if self.limit is None:
            self.emit(batch)
            return
        if self.satisfied:
            self.stats.rows_dropped += batch.count
            self.late_rows += batch.count
            return
        allowed: list = []
        rows = batch.tuples()
        for position, row in enumerate(rows):
            if row in self.seen:
                allowed.append(row)
                continue
            if len(self.seen) >= self.limit:
                self.stats.rows_dropped += len(rows) - position
                break
            self.seen.add(row)
            allowed.append(row)
        self.emit(Batch(batch.schema, tuples=allowed, source=batch.source))
        if len(self.seen) >= self.limit and not self.satisfied:
            self.satisfied = True
            if self.on_satisfied is not None:
                self.on_satisfied()


class Collect(Operator):
    """Sink: resolve a future with the stream's aggregated contents.

    With an ``outcome``, every batch is recorded into it (per-source
    attribution, first-result timestamp); without one, the future
    resolves to the bare set of rows.  ``finalize`` (when set) runs
    once, immediately before resolution — plans use it to stamp
    latency and streaming statistics onto the outcome.
    """

    def __init__(self, ctx: PipelineContext,
                 outcome: "QueryOutcome | None" = None) -> None:
        super().__init__("collect")
        self.ctx = ctx
        self.outcome = outcome
        self.future: Future = Future()
        self.rows: set = set()
        self.first_rows_at: float | None = None
        self.finalize: Callable[[], None] | None = None

    def on_batch(self, batch: Batch, slot: int) -> None:
        if self.future.done:
            # Late arrivals after an early (limit-driven) resolution.
            self.stats.rows_dropped += batch.count
            if self.outcome is not None:
                self.outcome.rows_after_cancel += batch.count
            return
        if batch.count and self.first_rows_at is None:
            self.first_rows_at = self.ctx.now
        if self.outcome is not None:
            self.outcome.record(batch.source or self.outcome.query,
                                set(batch.tuples()))
        else:
            self.rows |= set(batch.tuples())

    def on_finish(self) -> None:
        self.resolve()

    def resolve(self) -> None:
        """Resolve the future now (idempotent; used for early stop)."""
        if self.future.done:
            return
        if self.finalize is not None:
            self.finalize()
        self.future.set_result(
            self.outcome if self.outcome is not None else self.rows)


class Reformulate(Operator):
    """The iterative strategy's overlay-driven reformulation fan-out.

    The origin "iteratively looks for paths of mappings and
    reformulates the query by itself" (§4): schema key spaces are
    fetched to learn mappings, every distinct translation spawns one
    execution subplan (via the ``spawn`` callback the plan builder
    provides), and newly derived queries recurse up to ``max_hops``.

    The operator emits no batches itself — the spawned subplans feed
    the downstream union directly — but it holds its union input open
    until the BFS settles, and its fetch counters carry the schema-
    space lookups.  Cancellation stops new schema fetches; subplans
    spawned after cancellation skip their scans (each skip is counted
    where it happens, so the messages-saved accounting stays exact).
    """

    def __init__(self, query: ConjunctiveQuery, max_hops: int,
                 spawn: Callable[[PipelineContext, ConjunctiveQuery], None],
                 prune: Callable[[ConjunctiveQuery, float], bool] | None
                 = None) -> None:
        super().__init__("reformulate")
        self.query = query
        self.max_hops = max_hops
        self._spawn_subplan = spawn
        #: optimizer prune predicate ``keep(query, confidence)``; a
        #: pruned translation is neither executed nor BFS-extended, so
        #: its pattern fetches *and* schema-space fetches are saved
        self._prune = prune
        #: translations dropped by the prune predicate
        self.pruned = 0
        self.seen: set[ConjunctiveQuery] = {query}
        #: schema -> list of (query, hops) posed against it
        self._queries_by_schema: dict[
            str, list[tuple[ConjunctiveQuery, int]]] = {}
        #: schema -> fetched active mappings (present once fetched)
        self._mappings_cache: dict[str, list] = {}
        self._fetching: set[str] = set()
        self._pending = 0
        #: guards against closing mid-start (a fetch can complete
        #: synchronously when the origin owns the key)
        self._starting = False
        self._ctx: PipelineContext | None = None
        #: open reformulation span (traced runs only)
        self._span = None

    def start(self, ctx: PipelineContext) -> None:
        self._ctx = ctx
        tracer = (ctx.peer.network.tracer
                  if ctx.peer.network is not None else None)
        if tracer is not None and tracer._stack:
            # The reformulation span covers the whole BFS: schema-space
            # fetches issued from here carry its context, so translated
            # subplans hang under it in the waterfall.
            self._span = tracer.begin("reformulate",
                                      peer=ctx.peer.node_id,
                                      kind="reformulate", start=ctx.now)
            with tracer.activate(tracer.context_of(self._span)):
                self._starting = True
                self._spawn_subplan(ctx, self.query)
                self._register(self.query, 0)
                self._starting = False
        else:
            self._starting = True
            self._spawn_subplan(ctx, self.query)
            self._register(self.query, 0)
            self._starting = False
        self._maybe_close()

    def on_finish(self) -> None:
        if self._span is not None:
            ctx = self._ctx
            tracer = (ctx.peer.network.tracer
                      if ctx is not None and ctx.peer.network is not None
                      else None)
            if tracer is not None:
                tracer.finish(self._span, ctx.now,
                              translations=len(self.seen) - 1,
                              pruned=self.pruned)

    def _register(self, query: ConjunctiveQuery, hops: int) -> None:
        if hops >= self.max_hops:
            return
        for schema in sorted(query_schemas(query)):
            self._queries_by_schema.setdefault(schema, []).append(
                (query, hops))
            if schema in self._mappings_cache:
                self._translate(query, hops, schema)
            else:
                self._fetch_schema(schema)

    def _fetch_schema(self, schema: str) -> None:
        if schema in self._fetching or schema in self._mappings_cache:
            return
        ctx = self._ctx
        assert ctx is not None
        if ctx.cancelled:
            self.stats.fetches_skipped += 1
            return
        self._fetching.add(schema)
        self._pending += 1
        self.stats.fetches_issued += 1

        def _on_mappings(future: Future) -> None:
            self._mappings_cache[schema] = future.result()
            self._fetching.discard(schema)
            for query, hops in list(
                    self._queries_by_schema.get(schema, ())):
                self._translate(query, hops, schema)
            self._pending -= 1
            self._maybe_close()

        ctx.peer.fetch_mappings(schema, cancel=ctx.cancel
                                ).add_done_callback(_on_mappings)

    def _translate(self, query: ConjunctiveQuery, hops: int,
                   schema: str) -> None:
        ctx = self._ctx
        assert ctx is not None
        for mapping in self._mappings_cache.get(schema, ()):
            translated = translate_query(query, mapping)
            if translated is None or translated in self.seen:
                continue
            self.seen.add(translated)
            if (self._prune is not None
                    and not self._prune(translated, mapping.confidence)):
                self.pruned += 1
                continue
            self._spawn_subplan(ctx, translated)
            self._register(translated, hops + 1)

    def _maybe_close(self) -> None:
        if self._pending == 0 and not self._starting:
            self.close()


class RecursiveFanout(Operator):
    """Origin side of the recursive strategy, as a source operator.

    The query travels to the peer holding the source schema's
    mappings; schema peers reformulate, forward, execute and stream
    results straight back (the protocol handlers live on
    :class:`~repro.mediation.peer.GridVinePeer`).  This operator keeps
    the exact spawn-count termination accounting: each request
    eventually yields one report listing the ids of the sub-requests
    it spawned and, if it executed, one results message; the fan-out
    completes when every expected request has settled.  A
    virtual-time timeout guards against message loss under churn
    (closing with ``complete=False``); cooperative cancellation (limit
    satisfied) closes early with ``complete`` still true.
    """

    def __init__(self, query: ConjunctiveQuery, max_hops: int) -> None:
        super().__init__("recursive-fanout")
        self.query = query
        self.max_hops = max_hops
        #: request ids known to be part of this task
        self.expected: set[str] = set()
        #: request id -> its report, once received
        self.reports: dict[str, dict] = {}
        #: request ids whose results have arrived
        self.results_received: set[str] = set()
        self.finished = False
        self.complete = True
        self.timeout_handle = None
        self.task_id: str | None = None
        self.op_tag: str | None = None
        self.trace = None
        self._ctx: PipelineContext | None = None

    def start(self, ctx: PipelineContext) -> None:
        from repro.mediation.keys import schema_key

        self._ctx = ctx
        peer = ctx.peer
        #: attribution tag captured at issue time (a timeout-driven
        #: finish runs outside any delivery scope)
        self.op_tag = (peer.network.current_operation()
                       if peer.network is not None else None)
        tracer = (peer.network.tracer if peer.network is not None
                  else None)
        #: trace context captured at issue time, re-activated around
        #: the close cascade (mirrors ``op_tag`` above)
        self.trace = (tracer._stack[-1]
                      if tracer is not None and tracer._stack else None)
        self.task_id = f"{peer.node_id}:{next(peer._op_ids)}"
        peer._refo_tasks[self.task_id] = self
        self.timeout_handle = peer.loop.schedule(
            peer.query_timeout, self._finish, False)
        ctx.cancel.on_cancel(lambda: self._finish(True))
        primary_schema = min(query_schemas(self.query))
        self.stats.fetches_issued += 1
        root_id = peer._send_refo(schema_key(primary_schema), {
            "task_id": self.task_id,
            "task_origin": peer.node_id,
            "query": self.query,
            "visited": [primary_schema],
            "ttl": self.max_hops,
        })
        self.expected.add(root_id)

    # -- protocol callbacks (dispatched via peer._refo_tasks) ----------

    def on_report(self, request_id: str, report: dict) -> None:
        """A schema peer reported which sub-requests it spawned."""
        if self.finished:
            return
        self.reports[request_id] = report
        self.expected.add(request_id)
        self.expected.update(report.get("spawned", ()))
        self._check_done()

    def on_results(self, request_id: str, query: ConjunctiveQuery,
                   rows: set) -> None:
        """A schema peer streamed back one reformulation's results."""
        if self.finished:
            return
        self.results_received.add(request_id)
        # Sorted for determinism: set iteration order is not stable
        # across processes, and a downstream Limit truncates batches.
        self.emit(Batch.from_tuples(query.distinguished, sorted(rows),
                                    source=query))
        self._check_done()

    def _check_done(self) -> None:
        for request_id in self.expected:
            report = self.reports.get(request_id)
            if report is None:
                return
            if (report.get("executes")
                    and request_id not in self.results_received):
                return
        self._finish(True)

    def _finish(self, complete: bool) -> None:
        if self.finished:
            return
        self.finished = True
        self.complete = complete
        if self.timeout_handle is not None:
            self.timeout_handle.cancel()
        ctx = self._ctx
        assert ctx is not None
        peer = ctx.peer
        peer._refo_tasks.pop(self.task_id, None)
        tracer = (peer.network.tracer if peer.network is not None
                  else None)
        if tracer is not None and self.trace is not None:
            tracer._stack.append(self.trace)
        try:
            if self.op_tag is not None and peer.network is not None:
                # Close inside the operation's attribution scope: the
                # close cascade resolves the query future, whose
                # callbacks may still send attributable traffic.
                with peer.network.operation(self.op_tag):
                    self.close()
            else:
                self.close()
        finally:
            if tracer is not None and self.trace is not None:
                tracer._stack.pop()
