"""The streaming operator runtime of the query layer.

Distributed query execution is expressed as a DAG of small operators
through which binding batches *stream* as soon as they exist, instead
of the historical collect-everything-then-return callback chains:

:mod:`repro.exec.stream`
    The mechanics: :class:`~repro.exec.stream.Batch`,
    :class:`~repro.exec.stream.Operator` (push edges, input slots,
    close propagation, per-operator row/fetch counters) and
    :class:`~repro.exec.stream.PipelineContext` (the run's peer,
    cancel token and stats registry).

:mod:`repro.exec.operators`
    The algebra: ``PatternScan``, ``Reformulate``,
    ``RecursiveFanout``, ``HashJoin``, ``BoundJoin``, ``Union``,
    ``Dedup``, ``Project``, ``Limit``, ``Collect``.

:mod:`repro.exec.plans`
    Plan builders mapping the paper's three ``SearchFor`` strategies
    onto DAG shapes, plus the data-layer primitive schema peers use to
    execute received reformulations.

:mod:`repro.exec.bindings`
    Shared binding-set helpers (identity/dedup, vocabulary remapping,
    the hash-based natural join).

The headline capability is **limit pushdown with cooperative
cancellation**: a satisfied ``Limit`` fires the pipeline's
:class:`~repro.simnet.events.CancelToken`; in-flight overlay
operations stop retrying and resolve immediately, and operators check
the token before issuing anything new — so a selective query stops
spending messages the moment it has enough answers, and the outcome
reports exactly how much work the early stop skipped.
"""

from repro.exec.bindings import (
    binding_key,
    dedup_bindings,
    hash_join_bindings,
    join_batches,
    pattern_schema,
    remap_bindings,
    restore_variables,
)
from repro.exec.operators import (
    BoundJoin,
    Collect,
    Dedup,
    HashJoin,
    Limit,
    PatternScan,
    Project,
    RecursiveFanout,
    Reformulate,
    Union,
    selectivity_rank,
)
from repro.exec.plans import (
    attach_execution_subplan,
    execute_query_rows,
    run_query_plan,
)
from repro.exec.stream import Batch, Operator, OperatorStats, PipelineContext

__all__ = [
    "Batch",
    "BoundJoin",
    "Collect",
    "Dedup",
    "HashJoin",
    "Limit",
    "Operator",
    "OperatorStats",
    "PatternScan",
    "PipelineContext",
    "Project",
    "RecursiveFanout",
    "Reformulate",
    "Union",
    "attach_execution_subplan",
    "binding_key",
    "dedup_bindings",
    "execute_query_rows",
    "hash_join_bindings",
    "join_batches",
    "pattern_schema",
    "remap_bindings",
    "restore_variables",
    "run_query_plan",
    "selectivity_rank",
]
