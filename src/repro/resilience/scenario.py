"""Scripted churn scenarios with ground-truth recall accounting.

A *scenario* is one reproducible composition of everything the
simulator can throw at the mediation layer:

1. build a deployment and load the generated bioinformatic corpus
   (schemas, triples, ground-truth mappings);
2. optionally run self-organization rounds while the overlay is still
   healthy;
3. start :class:`~repro.pgrid.maintenance.MaintenanceProcess` and
   :class:`~repro.simnet.churn.ChurnProcess` as background processes;
4. issue a query workload from a churn-protected origin peer, pacing
   queries in virtual time so outages, repairs and queries genuinely
   interleave;
5. report recall against the generator's ground truth, latency
   percentiles, exact per-query messages (per-operation attribution —
   background traffic is never billed to a query) and failover
   activity.

Everything derives from ``spec.seed``, so a scenario is a fixed point:
the same spec always produces the same report.  Benchmarks compare
specs differing in exactly one knob (E14 flips ``failover``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.datagen.generator import BioDataset, BioDatasetGenerator
from repro.datagen.workload import QueryWorkloadGenerator
from repro.pgrid.maintenance import MaintenanceProcess
from repro.rdf.patterns import ConjunctiveQuery
from repro.simnet.churn import ChurnProcess
from repro.stats.gossip import StatsAntiEntropy
from repro.util.stats import percentile_or_none

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.faultlab.plan import FaultPlan
    from repro.mediation.network import GridVineNetwork

#: panel item: (query, set of expected ``Schema:Accession`` subjects)
Panel = list[tuple[ConjunctiveQuery, set[str]]]


@dataclass
class ScenarioSpec:
    """One scripted scenario, fully determined by its fields."""

    # -- deployment (used by :meth:`ScenarioRunner.from_spec`) ---------
    num_peers: int = 48
    replication: int = 2
    refs_per_level: int = 2
    seed: int = 0
    #: replica-aware retry steering (the E14 A/B knob)
    failover: bool = True
    # -- corpus --------------------------------------------------------
    num_schemas: int = 6
    num_entities: int = 60
    #: organism needles queried from the first schema's vocabulary
    needles: tuple[str, ...] = ("Aspergillus", "Saccharomyces",
                                "Escherichia")
    #: self-organization rounds run while the overlay is still healthy
    #: (0 = rely on the pre-inserted ground-truth mapping chain)
    selforg_rounds: int = 0
    # -- background processes ------------------------------------------
    churn: bool = True
    mean_uptime: float = 120.0
    mean_downtime: float = 45.0
    maintenance: bool = True
    maintenance_interval: float = 20.0
    # -- query workload ------------------------------------------------
    #: virtual seconds of churn before the first query
    warmup: float = 60.0
    num_queries: int = 18
    #: virtual seconds between consecutive queries
    query_interval: float = 30.0
    #: ``"local"`` / ``"iterative"`` / ``"recursive"`` / ``"engine"``
    #: / ``"auto"`` (cost-based per-query choice from synopses)
    strategy: str = "iterative"
    max_hops: int = 8
    #: whether the origin runs periodic synopsis anti-entropy pulls
    #: (piggybacked gossip alone converges slowly under churn);
    #: ``None`` = enabled exactly when the strategy needs statistics
    #: (``"auto"``)
    stats_pull: bool | None = None
    #: virtual seconds between anti-entropy pull rounds
    stats_pull_interval: float = 30.0
    #: per-query distinct-result cap pushed into the streaming
    #: pipeline (``None`` = unlimited); a satisfied limit
    #: cooperatively cancels the query's remaining fan-out even while
    #: failover retries are in flight
    limit: int | None = None
    # -- fault injection ----------------------------------------------
    #: deterministic fault schedule applied for the duration of the
    #: run (:class:`~repro.faultlab.plan.FaultPlan`): message drops /
    #: duplicates / jitter / reordering, partitions with scheduled
    #: heals, crash-restarts.  ``None`` (or an empty plan) keeps the
    #: run bit-identical to the pre-fault-lab behaviour.  Composes
    #: with ``churn``: the injector never crashes a node churn took
    #: down and vice versa.
    faults: "FaultPlan | None" = None


@dataclass
class ScenarioReport:
    """What one scenario run measured."""

    spec: ScenarioSpec
    queries_issued: int = 0
    #: queries whose protocol completed (no query-level timeout)
    queries_complete: int = 0
    #: mean per-query recall against ground truth
    recall: float = 0.0
    per_query_recall: list[float] = field(default_factory=list)
    #: latency percentiles; ``None`` only when the scenario issued
    #: zero queries — issued-but-incomplete queries still record
    #: their (timeout) latency, so any run with ``num_queries > 0``
    #: reports floats
    latency_p50: float | None = None
    latency_p90: float | None = None
    latency_p99: float | None = None
    #: messages attributed to the query workload (exact, per-operation)
    query_messages: int = 0
    #: all messages on the network, background traffic included
    total_messages: int = 0
    messages_dropped: int = 0
    #: drop counts by cause (``"offline"`` for churn's silent
    #: offline-destination drops, ``"in_flight"``, ``"fault"``,
    #: ``"partition"``) — run delta, see
    #: :attr:`repro.simnet.metrics.NetworkMetrics.drops_by_reason`
    drops_by_reason: dict = field(default_factory=dict)
    #: injected-fault counts by action (``spec.faults`` runs only)
    faults_injected: dict = field(default_factory=dict)
    failures: int = 0
    recoveries: int = 0
    #: retries that steered away from a dead first hop
    failovers: int = 0
    #: overlay operations that exhausted every retry
    ops_gave_up: int = 0
    # -- streaming statistics (limit pushdown) -------------------------
    #: median virtual seconds from issue to a query's first result
    #: (``None`` when no query returned any row)
    first_result_p50: float | None = None
    #: queries whose result limit was reached (cooperative cancel)
    limit_hits: int = 0
    #: overlay fetches skipped across all queries thanks to early stop
    fetches_skipped: int = 0
    #: result rows received after a query's limit had cancelled it
    rows_after_cancel: int = 0
    #: overlay operations torn down mid-flight by cancellation
    ops_cancelled: int = 0
    #: engine statistics snapshot (``strategy == "engine"`` only)
    engine_stats: dict | None = None
    # -- statistics / optimizer (strategy == "auto") -------------------
    #: synopsis digests the origin knew when the workload ended
    synopses_known: int = 0
    #: anti-entropy pull messages the origin sent
    stats_pulls: int = 0
    #: executed-strategy histogram of the optimizer's auto decisions
    auto_strategies: dict = field(default_factory=dict)
    #: reformulations pruned by expected yield across all queries
    reformulations_pruned: int = 0

    def summary(self) -> list[str]:
        """Human-readable report lines (CLI / bench output)."""

        def _sec(value: float | None) -> str:
            return "n/a" if value is None else f"{value:.2f}s"

        lines = [
            f"queries  : {self.queries_complete}/{self.queries_issued} "
            f"complete, mean recall {self.recall:.3f}",
            f"latency  : p50 {_sec(self.latency_p50)}  "
            f"p90 {_sec(self.latency_p90)}  p99 {_sec(self.latency_p99)} "
            f"(simulated)",
            f"messages : {self.query_messages} attributed to queries, "
            f"{self.total_messages} total on the wire, "
            f"{self.messages_dropped} dropped",
            f"churn    : {self.failures} failures, "
            f"{self.recoveries} recoveries",
            f"failover : {self.failovers} replica failovers, "
            f"{self.ops_gave_up} operations gave up",
        ]
        if self.drops_by_reason:
            breakdown = ", ".join(
                f"{count} {reason}"
                for reason, count in sorted(self.drops_by_reason.items())
            )
            lines.append(f"drops    : {breakdown}")
        if self.faults_injected:
            injected = ", ".join(
                f"{count} {action}"
                for action, count in sorted(self.faults_injected.items())
            )
            lines.append(f"faults   : {injected}")
        if self.spec.limit is not None:
            first = ("n/a" if self.first_result_p50 is None
                     else f"{self.first_result_p50:.2f}s")
            lines.append(
                f"limit    : {self.limit_hits}/{self.queries_issued} "
                f"queries hit limit {self.spec.limit}, first result "
                f"p50 {first}, "
                f"{self.fetches_skipped} fetches skipped, "
                f"{self.ops_cancelled} in-flight ops cancelled, "
                f"{self.rows_after_cancel} late rows discarded"
            )
        if self.spec.strategy == "auto":
            picks = ", ".join(
                f"{count}x {name}"
                for name, count in sorted(self.auto_strategies.items())
            ) or "none"
            lines.append(
                f"optimizer: picks {picks}; "
                f"{self.reformulations_pruned} reformulation(s) pruned; "
                f"origin knew {self.synopses_known} synopsis digest(s) "
                f"({self.stats_pulls} anti-entropy pulls)"
            )
        if self.engine_stats is not None:
            cache = self.engine_stats["cache"]
            lines.append(
                f"engine   : {cache['hits']}/{cache['lookups']} plan-cache "
                f"hits, {self.engine_stats['planner_invocations']} "
                f"planner run(s)"
            )
        return lines


def recall_hits(outcome) -> set[str]:
    """The ``Schema:Accession`` subjects a query outcome recalled.

    Result rows render subjects as bracketed URIs (``<EMBL:X1>``);
    ground-truth sets use the bare ``Schema:Accession`` form — this is
    the one place that strips the brackets, shared by scenario
    reporting, the fault lab's recall invariant and the recall
    benchmarks.
    """
    return {str(row[0]).strip("<>") for row in outcome.results}


def ground_truth_panel(dataset: BioDataset,
                       needles: tuple[str, ...]) -> Panel:
    """Recall panel: semantic queries in the first schema's vocabulary
    with full-corpus ground truth per query.

    A query's truth set contains every ``Schema:Accession`` subject
    whose organism value contains the needle — answers scattered
    across *all* schemas, reachable only through reformulation."""
    workload = QueryWorkloadGenerator(dataset, seed=7)
    panel: Panel = []
    for needle in needles:
        query = workload.concept_query(dataset.schemas[0].name,
                                       "organism", needle)
        truth = {
            f"{schema.name}:{entity.accession}"
            for schema in dataset.schemas
            for entity in dataset.coverage[schema.name]
            if needle in entity.value("organism")
        }
        panel.append((query, truth))
    return panel


class ScenarioRunner:
    """Executes one :class:`ScenarioSpec` against a deployment.

    Parameters
    ----------
    network:
        The deployment to exercise (build one with :meth:`from_spec`
        to get the corpus and recall panel set up automatically).
    panel:
        ``(query, ground-truth subjects)`` pairs; queries are issued
        round-robin.
    spec:
        The scenario script (deployment fields are ignored when the
        network is supplied ready-made).
    origin:
        Node id issuing every query; protected from churn.  Defaults
        to the first peer id.
    domain:
        Mapping domain, needed for the ``"engine"`` strategy's mirror
        backfill.
    """

    def __init__(self, network: "GridVineNetwork", panel: Panel,
                 spec: ScenarioSpec | None = None,
                 origin: str | None = None,
                 domain: str = "default") -> None:
        if not panel:
            raise ValueError("scenario needs a non-empty query panel")
        self.network = network
        self.panel = panel
        self.spec = spec if spec is not None else ScenarioSpec()
        self.origin = origin if origin is not None else network.peer_ids()[0]
        self.domain = domain
        self.dataset: BioDataset | None = None
        #: the engine the last ``strategy == "engine"`` run executed
        #: through (``None`` otherwise) — exposed so post-run audits
        #: (the fault lab's cache-coherence invariant) can inspect the
        #: very cache the workload exercised
        self.engine = None

    # ------------------------------------------------------------------
    # Construction from a spec
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "ScenarioRunner":
        """Build corpus + deployment + recall panel from ``spec``.

        Ground-truth mappings form a bidirectional chain
        ``S0 <-> S1 <-> ... `` (unless ``selforg_rounds`` asks the
        self-organization loop to densify a sparse pairing instead),
        so a healthy network can answer the whole panel and any recall
        shortfall is attributable to churn.
        """
        from repro.mediation.network import GridVineNetwork

        dataset = BioDatasetGenerator(
            num_schemas=spec.num_schemas,
            num_entities=spec.num_entities,
            entities_per_schema=max(5, spec.num_entities // 5),
            seed=spec.seed,
        ).generate()
        network = GridVineNetwork.build(
            num_peers=spec.num_peers,
            replication=spec.replication,
            refs_per_level=spec.refs_per_level,
            seed=spec.seed,
            failover=spec.failover,
        )
        for schema in dataset.schemas:
            network.insert_schema(schema)
        network.insert_triples(dataset.triples)
        names = [s.name for s in dataset.schemas]
        if spec.selforg_rounds > 0:
            # Sparse pairing; self-organization will densify it.
            for i in range(0, len(names) - 1, 2):
                network.insert_mapping(
                    dataset.ground_truth_mapping(names[i], names[i + 1]))
        else:
            for a, b in zip(names, names[1:]):
                network.insert_mapping(dataset.ground_truth_mapping(a, b),
                                       bidirectional=True)
        network.settle()
        runner = cls(network, ground_truth_panel(dataset, spec.needles),
                     spec, domain=dataset.domain)
        runner.dataset = dataset
        return runner

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> ScenarioReport:
        """Run the scripted scenario; returns its report."""
        spec = self.spec
        net = self.network
        loop = net.loop
        # Baselines, so repeated runs on the same deployment report
        # per-run deltas instead of lifetime cumulative counters.
        metrics = net.network.metrics
        messages_before = metrics.messages_sent
        dropped_before = metrics.messages_dropped
        drops_by_reason_before = dict(metrics.drops_by_reason)
        failover_before = sum(p.failover_stats["failovers"]
                              for p in net.peers.values())
        gave_up_before = sum(p.failover_stats["gave_up"]
                             for p in net.peers.values())
        cancelled_before = sum(p.failover_stats["cancelled"]
                               for p in net.peers.values())
        if spec.selforg_rounds > 0:
            from repro.selforg import (
                CreationPolicy,
                SelfOrganizationController,
            )
            controller = SelfOrganizationController(
                net, domain=self.domain,
                policy=CreationPolicy(mappings_per_round=3),
            )
            controller.run(max_rounds=spec.selforg_rounds)
        engine = None
        if spec.strategy == "engine":
            engine = net.create_engine(domain=self.domain,
                                       max_hops=spec.max_hops)
            self.engine = engine
        has_faults = (spec.faults is not None
                      and len(spec.faults.faults) > 0)
        maintenance = None
        if spec.maintenance:
            maintenance = MaintenanceProcess(
                net.peers,
                interval=spec.maintenance_interval,
                # Repair toward the deployment's own redundancy target
                # (spec.refs_per_level only shapes from_spec builds).
                refs_per_level=getattr(net, "refs_per_level",
                                       spec.refs_per_level),
                rng=random.Random(spec.seed + 101),
                # Partitions can empty whole routing levels; only the
                # thin-level repair mode can refill those, so faulted
                # runs enable it (fault-free runs keep the historical
                # bit-identical accounting).
                repair_thin_levels=has_faults,
            )
            maintenance.start()
        churn = None
        if spec.churn:
            churn = ChurnProcess(
                net.network,
                mean_uptime=spec.mean_uptime,
                mean_downtime=spec.mean_downtime,
                rng=random.Random(spec.seed + 202),
                protected={self.origin},
            )
            churn.start()
        anti_entropy = None
        pull = (spec.stats_pull if spec.stats_pull is not None
                else spec.strategy == "auto")
        if pull:
            # Piggybacked gossip alone converges slowly while peers
            # blink in and out; the origin pulls digests directly so
            # its optimizer keeps estimating through the churn.
            anti_entropy = StatsAntiEntropy(
                net.peers, self.origin,
                interval=spec.stats_pull_interval,
                rng=random.Random(spec.seed + 303),
            )
            anti_entropy.start()
        injector = None
        if has_faults:
            from repro.faultlab.injector import install_plan
            # The injector hooks into the transport layer (on_send
            # veto + dispatch), so the scenario is engine-agnostic:
            # the network's transport is whatever the runner attached
            # the peers to — a sharded transport gets one injector per
            # shard from the same plan (install_plan dispatches).
            injector = install_plan(net.network, spec.faults)
        loop.run_until(loop.now + spec.warmup)

        report = ScenarioReport(spec=spec)
        latencies: list[float] = []
        first_result_latencies: list[float] = []
        for index in range(spec.num_queries):
            query, truth = self.panel[index % len(self.panel)]
            if engine is not None:
                outcome = engine.search_for(query, origin=self.origin,
                                            limit=spec.limit)
            else:
                outcome = net.search_for(query, strategy=spec.strategy,
                                         max_hops=spec.max_hops,
                                         origin=self.origin,
                                         limit=spec.limit)
            report.queries_issued += 1
            if outcome.complete:
                report.queries_complete += 1
            hits = recall_hits(outcome)
            if truth:
                # Under a limit a query *by design* returns at most
                # ``limit`` rows, so recall is measured against what
                # it was asked for, not the full truth set — otherwise
                # every limited scenario would report collapsed recall
                # on a perfectly healthy network.
                denominator = (len(truth) if spec.limit is None
                               else min(len(truth), spec.limit))
                report.per_query_recall.append(len(hits & truth)
                                               / denominator)
            latencies.append(outcome.latency)
            report.query_messages += outcome.messages
            if outcome.first_result_latency is not None:
                first_result_latencies.append(
                    outcome.first_result_latency)
            if outcome.limit_hit:
                report.limit_hits += 1
            report.fetches_skipped += outcome.fetches_skipped
            report.rows_after_cancel += outcome.rows_after_cancel
            if outcome.decision is not None:
                executed = outcome.decision.strategy
                report.auto_strategies[executed] = (
                    report.auto_strategies.get(executed, 0) + 1)
                report.reformulations_pruned += (
                    outcome.decision.reformulations_pruned)
            loop.run_until(loop.now + spec.query_interval)
        if injector is not None:
            # Uninstalling heals everything the plan still holds
            # broken (releases reordered messages, restarts
            # injector-crashed nodes), so the post-run accounting and
            # any caller-side convergence checks see a fault-free net.
            injector.uninstall()
            report.faults_injected = dict(injector.injected)
        if churn is not None:
            churn.stop()
        if maintenance is not None:
            maintenance.stop()
        if anti_entropy is not None:
            anti_entropy.stop()
            report.stats_pulls = anti_entropy.pulls_sent
        report.synopses_known = len(net.peers[self.origin].synopses)

        if report.per_query_recall:
            report.recall = (sum(report.per_query_recall)
                             / len(report.per_query_recall))
        report.latency_p50 = percentile_or_none(latencies, 50)
        report.latency_p90 = percentile_or_none(latencies, 90)
        report.latency_p99 = percentile_or_none(latencies, 99)
        report.first_result_p50 = percentile_or_none(
            first_result_latencies, 50)
        report.total_messages = metrics.messages_sent - messages_before
        report.messages_dropped = (metrics.messages_dropped
                                   - dropped_before)
        report.drops_by_reason = {
            reason: count - drops_by_reason_before.get(reason, 0)
            for reason, count in sorted(metrics.drops_by_reason.items())
            if count - drops_by_reason_before.get(reason, 0) > 0
        }
        if churn is not None:
            report.failures = churn.failures
            report.recoveries = churn.recoveries
            churn.assert_consistent()
        report.failovers = sum(p.failover_stats["failovers"]
                               for p in net.peers.values()) - failover_before
        report.ops_gave_up = sum(p.failover_stats["gave_up"]
                                 for p in net.peers.values()) - gave_up_before
        report.ops_cancelled = sum(
            p.failover_stats["cancelled"] for p in net.peers.values()
        ) - cancelled_before
        if engine is not None:
            report.engine_stats = engine.stats.snapshot()
        return report
