"""Churn-resilient query execution: scripted scenarios and reporting.

This package turns the simulator's fault-injection pieces
(:class:`~repro.simnet.churn.ChurnProcess`,
:class:`~repro.pgrid.maintenance.MaintenanceProcess`, the peers'
replica-aware failover retries) into *reproducible experiments*: a
:class:`ScenarioSpec` describes one scripted run — deployment shape,
churn intensity, maintenance cadence, self-organization rounds and a
query workload — and :class:`ScenarioRunner` executes it and measures
recall against the generator's ground truth, latency percentiles,
exact per-query message counts (per-operation attribution) and
failover activity, summarized in a :class:`ScenarioReport`.
"""

from repro.resilience.scenario import (
    ScenarioReport,
    ScenarioRunner,
    ScenarioSpec,
    ground_truth_panel,
)

__all__ = [
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "ground_truth_panel",
]
