"""Connectivity analytics for the mediation layer (§3.1).

Rather than crawling the full graph of schemas and mappings, GridVine
estimates connectivity from the joint in/out-degree distribution of
schemas: each schema peer publishes ``(Schema, InDegree, OutDegree)``
under ``Hash(Domain)``, and the domain peer computes the connectivity
indicator

    ci = sum_{j,k} (j*k - k) * p_jk

(the directed Molloy–Reed criterion): ``ci >= 0`` signals the emergence
of a giant connected component; as long as ``ci < 0`` the mediation
layer is not strongly connected and more mappings are needed.

:mod:`repro.connectivity.indicator` implements the estimator;
:mod:`repro.connectivity.analysis` provides ground truth (Tarjan's
strongly connected components, plus weak components) used by tests and
by experiment E3 to validate the indicator's sign against reality.
"""

from repro.connectivity.indicator import (
    connectivity_indicator,
    indicator_from_degrees,
)
from repro.connectivity.analysis import (
    giant_scc_fraction,
    strongly_connected_components,
    weakly_connected_components,
)

__all__ = [
    "connectivity_indicator",
    "indicator_from_degrees",
    "strongly_connected_components",
    "weakly_connected_components",
    "giant_scc_fraction",
]
