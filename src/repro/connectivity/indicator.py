"""The connectivity indicator ``ci = sum_jk (jk - k) p_jk``.

This is the quantity of §3.1: ``p_jk`` is the probability for a schema
to have in-degree ``j`` and out-degree ``k``.  The criterion is the
directed-graph generalization of the Molloy–Reed condition [Cudré-
Mauroux & Aberer, ODBASE 2004]: in a random directed graph with the
given joint degree distribution, a giant (strongly) connected component
exists exactly when the expected number of second neighbours exceeds
the expected number of first neighbours, i.e. ``E[jk] >= E[k]`` (note
``E[j] = E[k]`` since every edge contributes one in- and one
out-stub).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.util.stats import joint_distribution


def indicator_from_degrees(degree_pairs: Iterable[tuple[int, int]]) -> float:
    """Compute ``ci`` from raw ``(in_degree, out_degree)`` pairs.

    >>> indicator_from_degrees([(1, 1), (1, 1)])  # a 2-cycle
    0.0
    >>> indicator_from_degrees([(0, 1), (1, 0)])  # a single edge
    -0.5
    """
    distribution = joint_distribution(degree_pairs)
    return connectivity_indicator(distribution)


def connectivity_indicator(p_jk: Mapping[tuple[int, int], float]) -> float:
    """``ci`` from a joint degree distribution ``{(j, k): probability}``.

    Returns 0.0 for an empty distribution (an empty mediation layer is
    vacuously connected — no creation pressure).
    """
    return sum((j * k - k) * p for (j, k), p in p_jk.items())


def is_fragmented(degree_pairs: Iterable[tuple[int, int]]) -> bool:
    """Convenience predicate: ``ci < 0`` means mappings are missing.

    "ci < 0 indicates that some of the schemas shared at the mediation
    layer cannot always be accessed by following series of mappings.
    In that case, more mappings are needed" (§3.2).
    """
    return indicator_from_degrees(degree_pairs) < 0.0
