"""Ground-truth graph connectivity: Tarjan SCCs and weak components.

The indicator of :mod:`repro.connectivity.indicator` is an estimate
from degree statistics; experiments E3/E4 compare it against the real
component structure of the mapping graph, computed here.  Tarjan's
algorithm is implemented iteratively (mapping graphs in E3 sweep to
thousands of nodes, beyond Python's recursion limit).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping


Graph = Mapping[str, Iterable[str]]


def _normalize(graph: Graph) -> dict[str, list[str]]:
    """Materialize adjacency and make every referenced node a key."""
    adjacency: dict[str, list[str]] = {}
    for node, neighbors in graph.items():
        adjacency.setdefault(node, [])
        for n in neighbors:
            adjacency[node].append(n)
            adjacency.setdefault(n, [])
    return adjacency


def strongly_connected_components(graph: Graph) -> list[set[str]]:
    """Tarjan's SCC algorithm, iterative formulation.

    ``graph`` maps node -> iterable of successor nodes.  Returns the
    SCCs as sets, largest first (ties broken by smallest member for
    determinism).

    >>> sccs = strongly_connected_components({"a": ["b"], "b": ["a"], "c": []})
    >>> sorted(len(c) for c in sccs)
    [1, 2]
    """
    adjacency = _normalize(graph)
    index_counter = 0
    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []

    for root in sorted(adjacency):
        if root in indices:
            continue
        # Each frame: (node, iterator over remaining successors).
        work = [(root, iter(adjacency[root]))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(adjacency[successor])))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    components.sort(key=lambda c: (-len(c), min(c)))
    return components


def weakly_connected_components(graph: Graph) -> list[set[str]]:
    """Connected components ignoring edge direction, largest first."""
    adjacency = _normalize(graph)
    undirected: dict[str, set[str]] = {n: set() for n in adjacency}
    for node, neighbors in adjacency.items():
        for n in neighbors:
            undirected[node].add(n)
            undirected[n].add(node)
    seen: set[str] = set()
    components: list[set[str]] = []
    for start in sorted(undirected):
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in undirected[node]:
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        seen |= component
        components.append(component)
    components.sort(key=lambda c: (-len(c), min(c)))
    return components


def giant_scc_fraction(graph: Graph) -> float:
    """Size of the largest SCC divided by the number of nodes.

    The operational meaning of "giant connected component" in E3: the
    indicator's sign should track whether this fraction is large
    (a constant fraction of all schemas) or vanishing.
    """
    adjacency = _normalize(graph)
    if not adjacency:
        return 0.0
    components = strongly_connected_components(adjacency)
    return len(components[0]) / len(adjacency)
