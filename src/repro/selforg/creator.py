"""The mapping-creation step of the self-organization loop.

Pure logic: given the current state (schemas, their instance value
sets, reference sets and the mapping graph), propose new automatic
mappings.  The distributed I/O — fetching value sets through the
overlay and inserting the created mappings — lives in
:mod:`repro.selforg.controller`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapping.graph import MappingGraph
from repro.mapping.model import SchemaMapping
from repro.schema.model import Schema
from repro.selforg.candidates import rank_candidate_pairs
from repro.selforg.matcher import MatcherConfig, ValueSets, match_attributes


@dataclass(frozen=True)
class CreationPolicy:
    """Policy knobs of the creation step.

    ``mappings_per_round`` bounds how aggressively a round densifies
    the graph (the paper creates mappings incrementally and re-checks
    ci, rather than saturating at once).  ``initial_confidence`` seeds
    the Bayesian analysis's prior belief in automatic mappings.
    """

    mappings_per_round: int = 3
    min_shared_references: int = 1
    min_correspondences: int = 1
    initial_confidence: float = 0.7
    #: insert pure-equivalence proposals in both directions ("at the
    #: key spaces corresponding to both schemas", §3) — densifies the
    #: graph twice as fast; set False for gradual directed growth
    bidirectional: bool = True
    matcher: MatcherConfig = field(default_factory=MatcherConfig)


def propose_mappings(
    schemas: dict[str, Schema],
    value_sets: dict[str, ValueSets],
    references: dict[str, set[str]],
    graph: MappingGraph,
    policy: CreationPolicy | None = None,
    id_prefix: str = "auto",
) -> list[SchemaMapping]:
    """Propose up to ``mappings_per_round`` new automatic mappings.

    Candidate pairs come from shared references; each pair is matched
    attribute-by-attribute, and pairs yielding at least
    ``min_correspondences`` survive.  Mapping ids are deterministic
    (``{id_prefix}:{source}->{target}``) so repeated proposals of the
    same pair collide instead of accumulating.
    """
    policy = policy if policy is not None else CreationPolicy()
    pairs = rank_candidate_pairs(
        references, graph, min_shared=policy.min_shared_references
    )
    proposals: list[SchemaMapping] = []
    for schema_a, schema_b, _shared in pairs:
        if len(proposals) >= policy.mappings_per_round:
            break
        source = schemas.get(schema_a)
        target = schemas.get(schema_b)
        if source is None or target is None:
            continue
        correspondences = match_attributes(
            source, target,
            value_sets.get(schema_a, {}),
            value_sets.get(schema_b, {}),
            policy.matcher,
        )
        if len(correspondences) < policy.min_correspondences:
            continue
        proposals.append(SchemaMapping(
            f"{id_prefix}:{schema_a}->{schema_b}",
            schema_a,
            schema_b,
            correspondences,
            provenance="auto",
            confidence=policy.initial_confidence,
        ))
    return proposals
