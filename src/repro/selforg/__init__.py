"""Self-organization of the mapping network (§3.2, §4).

The closed loop that is the paper's headline contribution:

1. monitor the connectivity indicator (``repro.connectivity``);
2. while ``ci < 0``, *create* mappings automatically —
   :mod:`repro.selforg.candidates` picks schema pairs through shared
   references to the same protein sequence, and
   :mod:`repro.selforg.matcher` induces attribute correspondences by
   combining lexicographic measures with set distances over instance
   values;
3. *assess* mapping quality with a Bayesian analysis comparing
   transitive closures (cycles) of mappings
   (:mod:`repro.selforg.deprecation`), deprecating mappings detected
   as incorrect;
4. repeat — deprecations reopen connectivity gaps, which the creation
   step fills along different paths.

:class:`~repro.selforg.controller.SelfOrganizationController` drives
the loop against a live :class:`~repro.mediation.network.GridVineNetwork`.

Every mapping this loop creates or deprecates flows through the
issuing peer's mapping-event hooks, so the version clock of any
attached :class:`~repro.engine.core.QueryEngine` advances and affected
cached reformulation plans are invalidated immediately; pass the
engine to the controller to get per-round invalidation counts in its
:class:`~repro.selforg.controller.RoundReport`.
"""

from repro.selforg.matcher import MatcherConfig, match_attributes
from repro.selforg.candidates import rank_candidate_pairs
from repro.selforg.creator import CreationPolicy, propose_mappings
from repro.selforg.deprecation import (
    DeprecationConfig,
    assess_mapping_quality,
    cycle_is_consistent,
)
from repro.selforg.controller import RoundReport, SelfOrganizationController

__all__ = [
    "MatcherConfig",
    "match_attributes",
    "rank_candidate_pairs",
    "CreationPolicy",
    "propose_mappings",
    "DeprecationConfig",
    "assess_mapping_quality",
    "cycle_is_consistent",
    "SelfOrganizationController",
    "RoundReport",
]
