"""Candidate schema-pair selection for automatic mapping creation.

§4: "We take advantage of shared references to the same protein
sequence to select pairs of candidate schemas."  Two schemas that
describe many of the same entities (same accession numbers appearing
as object values) are good mapping candidates: their attribute value
sets will overlap, giving the extensional matcher signal to work with.

The selector ranks unordered schema pairs by the number of shared
reference values, skipping pairs already joined by an active mapping
(in either direction) — creating a parallel mapping there would not
improve connectivity.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.mapping.graph import MappingGraph

#: per-schema reference sets: schema name -> set of reference values
ReferenceSets = Mapping[str, set[str]]


def shared_reference_count(refs_a: set[str], refs_b: set[str]) -> int:
    """How many references two schemas have in common."""
    return len(refs_a & refs_b)


def rank_candidate_pairs(
    references: ReferenceSets,
    graph: MappingGraph | None = None,
    min_shared: int = 1,
) -> list[tuple[str, str, int]]:
    """Rank schema pairs by shared references, best first.

    Parameters
    ----------
    references:
        Reference value sets per schema (typically the accession
        numbers observed among the schema's triple objects).
    graph:
        Current mapping graph; pairs already connected by an active
        mapping in either direction are skipped.
    min_shared:
        Minimum number of shared references for a pair to qualify.

    Returns ``(schema_a, schema_b, shared_count)`` triples sorted by
    descending count then names.
    """
    connected: set[frozenset[str]] = set()
    if graph is not None:
        for mapping in graph.mappings():
            connected.add(frozenset(
                (mapping.source_schema, mapping.target_schema)
            ))
    schemas = sorted(references)
    ranked: list[tuple[str, str, int]] = []
    for i, schema_a in enumerate(schemas):
        for schema_b in schemas[i + 1:]:
            if frozenset((schema_a, schema_b)) in connected:
                continue
            shared = shared_reference_count(
                references[schema_a], references[schema_b]
            )
            if shared >= min_shared:
                ranked.append((schema_a, schema_b, shared))
    ranked.sort(key=lambda t: (-t[2], t[0], t[1]))
    return ranked
