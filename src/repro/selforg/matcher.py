"""Automatic attribute matching between two schemas.

§4: "we ... create the automatic mappings using a combination of
lexicographical measures and set distance measures between the
predicates defined in both schemas."

For every attribute pair ``(a, b)`` the matcher scores:

* ``lexical(a, b)`` — the max of Jaro–Winkler and character-bigram
  similarity on the attribute names (two measures with complementary
  failure modes: JW favours shared prefixes, n-grams survive word
  reordering);
* ``extensional(a, b)`` — the Jaccard similarity of the value sets
  observed under the two predicates in the shared data.

The combined score is a weighted sum; pairs above ``threshold`` enter
a greedy one-to-one assignment (best score first), so each attribute
matches at most once.  A pair whose value sets overlap asymmetrically
(containment in one direction far above the other) is emitted as a
*subsumption* correspondence instead of an equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapping.model import (
    MappingKind,
    PredicateCorrespondence,
)
from repro.schema.model import Schema
from repro.util.similarity import (
    jaccard_similarity,
    jaro_winkler,
    ngram_similarity,
)

#: value sets keyed by attribute name
ValueSets = dict[str, set[str]]


@dataclass(frozen=True)
class MatcherConfig:
    """Tuning knobs of the automatic matcher.

    ``lexical_weight + extensional_weight`` should be 1; ``threshold``
    is the minimum combined score for a correspondence.
    ``subsumption_margin`` is how much one-directional containment must
    exceed the other direction's to call the pair a subsumption.
    """

    lexical_weight: float = 0.5
    extensional_weight: float = 0.5
    threshold: float = 0.55
    subsumption_margin: float = 0.4
    min_values_for_extension: int = 2
    #: a lexical score this high is accepted on its own (near-identical
    #: attribute names, e.g. "Organism" vs "OrganismName")
    strong_lexical: float = 0.85
    #: an extensional score this high is accepted on its own (almost
    #: identical value sets, e.g. "OS" vs "SystematicName" both holding
    #: organism names)
    strong_extensional: float = 0.7

    def __post_init__(self) -> None:
        if not 0 <= self.threshold <= 1:
            raise ValueError("threshold must be in [0, 1]")
        if self.lexical_weight < 0 or self.extensional_weight < 0:
            raise ValueError("weights must be non-negative")
        if self.lexical_weight + self.extensional_weight == 0:
            raise ValueError("at least one weight must be positive")


def lexical_similarity(a: str, b: str) -> float:
    """Name similarity: max of Jaro–Winkler and bigram Dice."""
    return max(jaro_winkler(a.lower(), b.lower()), ngram_similarity(a, b))


def _containment(a: set[str], b: set[str]) -> float:
    """|a ∩ b| / |a| (how much of ``a`` lies inside ``b``)."""
    if not a:
        return 0.0
    return len(a & b) / len(a)


def score_pair(
    attr_a: str,
    attr_b: str,
    values_a: set[str],
    values_b: set[str],
    config: MatcherConfig,
) -> float:
    """Combined matching score for one attribute pair.

    When either side has too few observed values for the extensional
    measure to be meaningful, the lexical score is used alone (with
    full weight) rather than diluting it with noise.  A sufficiently
    *strong* single signal (``strong_lexical`` / ``strong_extensional``)
    is accepted on its own: synonym pairs like ``OS`` vs
    ``SystematicName`` have no lexical similarity but near-identical
    value sets, and vice versa for key-like attributes whose value
    sets barely overlap across sources.
    """
    lexical = lexical_similarity(attr_a, attr_b)
    enough_values = (
        len(values_a) >= config.min_values_for_extension
        and len(values_b) >= config.min_values_for_extension
    )
    if not enough_values:
        return lexical
    extensional = jaccard_similarity(values_a, values_b)
    total_weight = config.lexical_weight + config.extensional_weight
    combined = (config.lexical_weight * lexical
                + config.extensional_weight * extensional) / total_weight
    if lexical >= config.strong_lexical:
        combined = max(combined, lexical)
    if extensional >= config.strong_extensional:
        combined = max(combined, extensional)
    return combined


def match_attributes(
    source: Schema,
    target: Schema,
    source_values: ValueSets,
    target_values: ValueSets,
    config: MatcherConfig | None = None,
) -> list[PredicateCorrespondence]:
    """Induce correspondences from ``source`` to ``target``.

    Returns a greedy one-to-one assignment of attribute pairs scoring
    above the threshold, as :class:`PredicateCorrespondence` objects
    whose ``score`` records the matcher's combined score.
    """
    config = config if config is not None else MatcherConfig()
    scored: list[tuple[float, str, str]] = []
    for attr_a in source.attributes:
        values_a = source_values.get(attr_a, set())
        for attr_b in target.attributes:
            values_b = target_values.get(attr_b, set())
            score = score_pair(attr_a, attr_b, values_a, values_b, config)
            if score >= config.threshold:
                scored.append((score, attr_a, attr_b))
    # Greedy best-first one-to-one assignment; ties broken by name for
    # determinism.
    scored.sort(key=lambda t: (-t[0], t[1], t[2]))
    used_a: set[str] = set()
    used_b: set[str] = set()
    correspondences: list[PredicateCorrespondence] = []
    for score, attr_a, attr_b in scored:
        if attr_a in used_a or attr_b in used_b:
            continue
        used_a.add(attr_a)
        used_b.add(attr_b)
        kind = _classify_kind(
            source_values.get(attr_a, set()),
            target_values.get(attr_b, set()),
            config,
        )
        correspondences.append(PredicateCorrespondence(
            source.predicate(attr_a),
            target.predicate(attr_b),
            kind=kind,
            score=min(1.0, score),
        ))
    return correspondences


def _classify_kind(values_a: set[str], values_b: set[str],
                   config: MatcherConfig) -> MappingKind:
    """Equivalence unless containment is strongly one-directional.

    If the target's values sit inside the source's but not vice versa
    (``b ⊆ a``), the target predicate is *subsumed* by the source —
    rewriting source-queries to it is sound but partial.
    """
    if (len(values_a) < config.min_values_for_extension
            or len(values_b) < config.min_values_for_extension):
        return MappingKind.EQUIVALENCE
    b_in_a = _containment(values_b, values_a)
    a_in_b = _containment(values_a, values_b)
    if b_in_a - a_in_b >= config.subsumption_margin:
        return MappingKind.SUBSUMPTION
    return MappingKind.EQUIVALENCE
