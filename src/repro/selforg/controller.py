"""The self-organization controller: the ci → create → assess loop.

§3.2: "Peers responsible for a schema periodically inquire about the
connectivity of the mediation layer by issuing a query to the
corresponding key space.  ci < 0 ... triggers the automatic creation of
additional schema mappings ...  The quality of the mappings created in
this way is periodically assessed ... A mapping detected as incorrect
is marked as deprecated."

In the real system every schema peer runs this loop for its own
schema; the controller here drives the identical sequence of overlay
operations from one vantage peer per round, which produces the same
record-level state evolution while keeping experiments deterministic
and debuggable.  All state the controller uses is obtained through the
overlay (``Retrieve``); nothing is read out-of-band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.connectivity.indicator import indicator_from_degrees
from repro.mapping.model import MappingKind
from repro.mediation.keys import term_key
from repro.mediation.network import GridVineNetwork
from repro.mediation.records import SchemaRecord, TripleRecord
from repro.schema.model import Schema
from repro.selforg.creator import CreationPolicy, propose_mappings
from repro.selforg.deprecation import (
    DeprecationConfig,
    assess_mapping_quality,
)


@dataclass
class RoundReport:
    """What one controller round observed and did."""

    round_index: int
    ci_before: float
    ci_after: float
    schemas_seen: int
    created: list[str] = field(default_factory=list)
    deprecated: list[str] = field(default_factory=list)
    posteriors: dict[str, float] = field(default_factory=dict)
    #: cached reformulation plans invalidated by this round's mapping
    #: mutations (0 unless the controller watches a query engine)
    plans_invalidated: int = 0

    @property
    def connected(self) -> bool:
        """Whether the layer looked connected when the round started."""
        return self.ci_before >= 0.0


class SelfOrganizationController:
    """Drives creation and deprecation rounds on a live network."""

    def __init__(
        self,
        network: GridVineNetwork,
        domain: str = "default",
        policy: CreationPolicy | None = None,
        deprecation: DeprecationConfig | None = None,
        reference_attribute_hint: str | None = None,
        engine=None,
    ) -> None:
        self.network = network
        self.domain = domain
        self.policy = policy if policy is not None else CreationPolicy()
        self.deprecation = (deprecation if deprecation is not None
                            else DeprecationConfig())
        #: substring selecting "reference" attributes (e.g. "Acc");
        #: None means every object value counts as a reference
        self.reference_attribute_hint = reference_attribute_hint
        #: optional :class:`~repro.engine.core.QueryEngine` whose
        #: plan-cache invalidations each round reports — the mapping
        #: mutations this loop issues flow through the peers'
        #: mapping-event hooks, so affected cached plans are dropped
        #: the moment a mapping is created or deprecated
        self.engine = engine
        self.rounds_run = 0

    # ------------------------------------------------------------------
    # State collection (all through the overlay)
    # ------------------------------------------------------------------

    def _fetch_schemas(self) -> dict[str, Schema]:
        """Schema definitions for every schema with a connectivity record."""
        schemas: dict[str, Schema] = {}
        for record in self.network.connectivity_records(self.domain):
            peer = self.network.random_peer()
            space = self.network.loop.run_until_complete(
                peer.fetch_schema_space(record.schema_name)
            )
            for item in space:
                if isinstance(item, SchemaRecord):
                    schemas[item.schema.name] = item.schema
                    break
        return schemas

    def _fetch_predicate_values(self, schema: Schema,
                                attribute: str) -> set[str]:
        """Object values observed under one predicate, via the overlay."""
        peer = self.network.random_peer()
        predicate = schema.predicate(attribute)
        result = self.network.loop.run_until_complete(
            peer.retrieve(term_key(predicate))
        )
        values: set[str] = set()
        for item in result.values or ():
            if (isinstance(item, TripleRecord)
                    and item.triple.predicate == predicate):
                values.add(item.triple.object.value)
        return values

    def _collect_instance_state(
        self, schemas: dict[str, Schema],
    ) -> tuple[dict[str, dict[str, set[str]]], dict[str, set[str]]]:
        """Per-schema value sets and reference sets."""
        value_sets: dict[str, dict[str, set[str]]] = {}
        references: dict[str, set[str]] = {}
        hint = self.reference_attribute_hint
        for name, schema in schemas.items():
            per_attr: dict[str, set[str]] = {}
            refs: set[str] = set()
            for attribute in schema.attributes:
                values = self._fetch_predicate_values(schema, attribute)
                per_attr[attribute] = values
                if hint is None or hint.lower() in attribute.lower():
                    refs |= values
            value_sets[name] = per_attr
            references[name] = refs
        return value_sets, references

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def step(self) -> RoundReport:
        """One round: check ci, create if fragmented, assess, deprecate."""
        round_index = self.rounds_run
        self.rounds_run += 1
        invalidations_before = (
            self.engine.cache.stats.invalidations
            if self.engine is not None else 0
        )
        records = self.network.connectivity_records(self.domain)
        ci_before = indicator_from_degrees([r.degree_pair for r in records])
        created: list[str] = []
        if ci_before < 0.0:
            schemas = self._fetch_schemas()
            value_sets, references = self._collect_instance_state(schemas)
            graph = self.network.mapping_graph(
                self.domain, include_deprecated=True
            )
            proposals = propose_mappings(
                schemas, value_sets, references, graph,
                policy=self.policy,
                id_prefix=f"auto:r{round_index}",
            )
            for mapping in proposals:
                # Pure-equivalence mappings are sound in both
                # directions; when the policy allows, insert them
                # bidirectionally ("at the key spaces corresponding to
                # both schemas", §3).
                bidirectional = self.policy.bidirectional and all(
                    c.kind is MappingKind.EQUIVALENCE
                    for c in mapping.correspondences
                )
                self.network.insert_mapping(mapping,
                                            bidirectional=bidirectional)
                created.append(mapping.mapping_id)
            self.network.settle()
        # Quality assessment over the (possibly grown) active graph.
        graph = self.network.mapping_graph(self.domain)
        posteriors = assess_mapping_quality(graph, self.deprecation)
        deprecated: list[str] = []
        for mapping in graph.mappings():
            if mapping.is_user_defined:
                continue
            if posteriors[mapping.mapping_id] < self.deprecation.threshold:
                self.network.deprecate_mapping(mapping)
                deprecated.append(mapping.mapping_id)
        if deprecated:
            self.network.settle()
        records = self.network.connectivity_records(self.domain)
        ci_after = indicator_from_degrees([r.degree_pair for r in records])
        plans_invalidated = 0
        if self.engine is not None:
            plans_invalidated = (self.engine.cache.stats.invalidations
                                 - invalidations_before)
        return RoundReport(
            round_index=round_index,
            ci_before=ci_before,
            ci_after=ci_after,
            schemas_seen=len(records),
            created=created,
            deprecated=deprecated,
            posteriors=posteriors,
            plans_invalidated=plans_invalidated,
        )

    def run(self, max_rounds: int = 10,
            stop_when_connected: bool = True) -> list[RoundReport]:
        """Run rounds until connected (ci >= 0) or the budget runs out."""
        reports: list[RoundReport] = []
        for _ in range(max_rounds):
            report = self.step()
            reports.append(report)
            if (stop_when_connected and report.ci_after >= 0.0
                    and not report.created and not report.deprecated):
                break
        return reports
