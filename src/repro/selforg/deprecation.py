"""Bayesian mapping-quality assessment via cycle analysis (§3.2).

"GridVine uses a Bayesian analysis comparing transitive closures of
mappings to assess the quality of the mappings [Cudré-Mauroux, Aberer
& Feher, ICDE 2006].  The mappings manually created by the users are
always considered as correct in this analysis, while probabilistic
correctness values are inferred for mappings that were created
automatically."

The analysis works on *cycles* in the mapping graph: composing the
correspondences around a cycle should map every attribute back to
itself.  Each cycle is an observation:

* ``consistent`` (composition is the identity on the attributes that
  survive it) — evidence that every mapping on the cycle is correct;
* ``inconsistent`` — evidence that at least one mapping on the cycle
  is wrong.

Generative model, following the ICDE'06 formulation: each mapping
``m`` has a latent correctness ``theta_m ∈ {0, 1}`` with prior
``P(theta_m = 1) = prior`` (pinned to 1 for user mappings).  A cycle
whose mappings are all correct is consistent with probability
``1 - epsilon`` (epsilon absorbs sampling noise in the consistency
check); a cycle containing at least one incorrect mapping is
*accidentally* consistent only with small probability ``delta``
(two errors compensating exactly).

Exact inference is exponential in the number of mappings, so we use
the standard mean-field / loopy iteration: each mapping's belief is
updated from the cycle likelihoods, with the other mappings' beliefs
held at their current values, damped and repeated for a fixed number
of rounds.  This converges quickly on the sparse cycle structures the
demo produces and reproduces the qualitative behaviour the paper
demonstrates: wrong automatic mappings sitting on inconsistent cycles
are driven below the deprecation threshold while correct ones recover
toward 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mapping.graph import MappingGraph
from repro.mapping.model import SchemaMapping


@dataclass(frozen=True)
class DeprecationConfig:
    """Parameters of the Bayesian cycle analysis."""

    #: prior correctness of an automatic mapping
    prior: float = 0.7
    #: P(cycle observed inconsistent | all mappings correct)
    epsilon: float = 0.05
    #: P(cycle observed consistent | >= 1 mapping incorrect)
    delta: float = 0.05
    #: posterior below which a mapping is deprecated
    threshold: float = 0.35
    #: longest cycles enumerated
    max_cycle_length: int = 4
    #: mean-field iterations
    iterations: int = 20
    #: damping factor for belief updates (0 = no damping)
    damping: float = 0.3


def cycle_is_consistent(cycle: list[SchemaMapping]) -> bool | None:
    """Check one cycle by composing its correspondences.

    Returns ``True``/``False`` for consistent/inconsistent, or ``None``
    when no attribute survives the whole composition (the cycle gives
    no evidence either way).
    """
    composed = MappingGraph.compose_correspondences(cycle)
    if not composed:
        return None
    return all(c.source == c.target for c in composed)


def _cycle_likelihood(consistent: bool, others_correct: float,
                      config: DeprecationConfig,
                      this_correct: bool) -> float:
    """P(cycle outcome | this mapping's correctness, others' belief)."""
    if this_correct:
        p_all_correct = others_correct
    else:
        p_all_correct = 0.0
    if consistent:
        return (p_all_correct * (1.0 - config.epsilon)
                + (1.0 - p_all_correct) * config.delta)
    return (p_all_correct * config.epsilon
            + (1.0 - p_all_correct) * (1.0 - config.delta))


def assess_mapping_quality(
    graph: MappingGraph,
    config: DeprecationConfig | None = None,
) -> dict[str, float]:
    """Posterior correctness probability for every active mapping.

    User-defined mappings are pinned at 1.0; automatic mappings start
    at the prior and are updated from the cycle evidence.  Mappings on
    no informative cycle keep their prior (no evidence, no change) —
    exactly the paper's behaviour where deprecation only kicks in once
    alternative mapping paths exist to compare against.
    """
    config = config if config is not None else DeprecationConfig()
    mappings = graph.mappings(include_deprecated=False)
    beliefs: dict[str, float] = {}
    for mapping in mappings:
        if mapping.is_user_defined:
            beliefs[mapping.mapping_id] = 1.0
        else:
            beliefs[mapping.mapping_id] = config.prior
    # Collect informative cycle observations once.
    observations: list[tuple[list[str], bool]] = []
    for cycle in graph.find_cycles(max_length=config.max_cycle_length):
        verdict = cycle_is_consistent(cycle)
        if verdict is None:
            continue
        observations.append(([m.mapping_id for m in cycle], verdict))
    if not observations:
        return beliefs

    by_mapping: dict[str, list[int]] = {}
    for index, (ids, _verdict) in enumerate(observations):
        for mapping_id in ids:
            by_mapping.setdefault(mapping_id, []).append(index)

    user_ids = {m.mapping_id for m in mappings if m.is_user_defined}
    for _round in range(config.iterations):
        updated: dict[str, float] = {}
        for mapping in mappings:
            mid = mapping.mapping_id
            if mid in user_ids:
                updated[mid] = 1.0
                continue
            log_odds = math.log(config.prior / (1.0 - config.prior))
            for index in by_mapping.get(mid, ()):
                ids, verdict = observations[index]
                others = 1.0
                for other_id in ids:
                    if other_id != mid:
                        others *= beliefs[other_id]
                p_if_correct = _cycle_likelihood(verdict, others, config, True)
                p_if_wrong = _cycle_likelihood(verdict, others, config, False)
                # Guard against log(0) when likelihoods saturate.
                p_if_correct = min(max(p_if_correct, 1e-9), 1.0 - 1e-9)
                p_if_wrong = min(max(p_if_wrong, 1e-9), 1.0 - 1e-9)
                log_odds += math.log(p_if_correct / p_if_wrong)
            posterior = 1.0 / (1.0 + math.exp(-log_odds))
            updated[mid] = (config.damping * beliefs[mid]
                            + (1.0 - config.damping) * posterior)
        beliefs = updated
    return beliefs


def mappings_to_deprecate(
    graph: MappingGraph,
    config: DeprecationConfig | None = None,
) -> list[SchemaMapping]:
    """The active automatic mappings whose posterior falls below the
    deprecation threshold, sorted by id."""
    config = config if config is not None else DeprecationConfig()
    beliefs = assess_mapping_quality(graph, config)
    doomed = [
        mapping for mapping in graph.mappings()
        if not mapping.is_user_defined
        and beliefs[mapping.mapping_id] < config.threshold
    ]
    return sorted(doomed, key=lambda m: m.mapping_id)
