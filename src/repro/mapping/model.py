"""Schema-mapping data model.

A :class:`SchemaMapping` is a *directed* bundle of predicate
correspondences from one source schema to one target schema.  The
paper's bidirectional mappings are represented as a pair of directed
mappings (one per direction) sharing provenance; this keeps the degree
bookkeeping of §3.1 (separate in- and out-degrees) straightforward.

Correspondence kinds:

``EQUIVALENCE``
    Source and target predicate have the same extension; a query over
    the source predicate may be rewritten to the target predicate (and
    a reversed mapping rewrites the other way).

``SUBSUMPTION``
    The target predicate's extension is *contained* in the source
    predicate's (``target ⊑ source``).  Rewriting a source-predicate
    query to the target predicate is sound (it only retrieves a subset
    of valid answers); the reverse rewriting would be unsound and is
    therefore not derivable from this correspondence.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from repro.rdf.terms import URI


class MappingKind(enum.Enum):
    """Semantic relationship between two mapped predicates."""

    EQUIVALENCE = "equivalence"
    SUBSUMPTION = "subsumption"

    def __str__(self) -> str:
        return self.value


class PredicateCorrespondence:
    """One mapped predicate pair inside a schema mapping.

    >>> c = PredicateCorrespondence(URI("EMBL#Organism"),
    ...                             URI("EMP#SystematicName"))
    >>> c.kind
    <MappingKind.EQUIVALENCE: 'equivalence'>
    """

    __slots__ = ("source", "target", "kind", "score")

    def __init__(self, source: URI, target: URI,
                 kind: MappingKind = MappingKind.EQUIVALENCE,
                 score: float = 1.0) -> None:
        if not isinstance(source, URI) or not isinstance(target, URI):
            raise TypeError("correspondence endpoints must be URIs")
        if not 0.0 <= score <= 1.0:
            raise ValueError("score must be in [0, 1]")
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "score", score)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("PredicateCorrespondence is immutable")

    def __reduce__(self):
        # Constructor round-trip: immutability blocks slot-state
        # unpickling, and mappings cross sharded worker pipes.
        return (PredicateCorrespondence,
                (self.source, self.target, self.kind, self.score))

    def reversed(self) -> "PredicateCorrespondence":
        """The opposite-direction correspondence.

        Only equivalences are reversible; reversing a subsumption
        would flip containment and produce unsound rewritings.
        """
        if self.kind is not MappingKind.EQUIVALENCE:
            raise ValueError("only equivalence correspondences reverse")
        return PredicateCorrespondence(
            self.target, self.source, self.kind, self.score
        )

    def _key(self) -> tuple:
        return (self.source, self.target, self.kind, self.score)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PredicateCorrespondence):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(("PredicateCorrespondence", self._key()))

    def __repr__(self) -> str:
        return (f"PredicateCorrespondence({self.source!r}, {self.target!r}, "
                f"{self.kind}, score={self.score})")


class SchemaMapping:
    """A directed mapping between two schemas.

    Parameters
    ----------
    mapping_id:
        Globally unique identifier (GUID minted by the creating peer).
    source_schema / target_schema:
        Schema *names*; every correspondence's source predicate must
        live in the source schema and its target predicate in the
        target schema.
    correspondences:
        The mapped predicate pairs.
    provenance:
        ``"user"`` for manually defined mappings (axiomatically correct
        in the Bayesian analysis) or ``"auto"`` for mappings created by
        the self-organization loop.
    deprecated:
        Deprecated mappings are ignored for query reformulation and for
        connectivity accounting (§3.2).
    confidence:
        Posterior correctness probability maintained by the Bayesian
        analysis (1.0 for user mappings).
    """

    __slots__ = ("mapping_id", "source_schema", "target_schema",
                 "correspondences", "provenance", "deprecated", "confidence")

    def __init__(
        self,
        mapping_id: str,
        source_schema: str,
        target_schema: str,
        correspondences: Iterable[PredicateCorrespondence],
        provenance: str = "user",
        deprecated: bool = False,
        confidence: float = 1.0,
    ) -> None:
        corr = tuple(correspondences)
        if not corr:
            raise ValueError("a mapping needs at least one correspondence")
        if source_schema == target_schema:
            raise ValueError("mapping endpoints must be distinct schemas")
        if provenance not in ("user", "auto"):
            raise ValueError(f"unknown provenance {provenance!r}")
        if not 0.0 <= confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
        for c in corr:
            if c.source.namespace != source_schema:
                raise ValueError(
                    f"{c.source} does not belong to source schema {source_schema}"
                )
            if c.target.namespace != target_schema:
                raise ValueError(
                    f"{c.target} does not belong to target schema {target_schema}"
                )
        object.__setattr__(self, "mapping_id", mapping_id)
        object.__setattr__(self, "source_schema", source_schema)
        object.__setattr__(self, "target_schema", target_schema)
        object.__setattr__(self, "correspondences", corr)
        object.__setattr__(self, "provenance", provenance)
        object.__setattr__(self, "deprecated", deprecated)
        object.__setattr__(self, "confidence", confidence)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("SchemaMapping is immutable")

    def __reduce__(self):
        return (SchemaMapping,
                (self.mapping_id, self.source_schema, self.target_schema,
                 self.correspondences, self.provenance, self.deprecated,
                 self.confidence))

    # -- lookups --------------------------------------------------------

    @property
    def is_user_defined(self) -> bool:
        """Whether this mapping was created manually."""
        return self.provenance == "user"

    @property
    def active(self) -> bool:
        """Whether the mapping participates in reformulation."""
        return not self.deprecated

    def translate(self, predicate: URI) -> URI | None:
        """The target predicate corresponding to ``predicate``, if any."""
        for c in self.correspondences:
            if c.source == predicate:
                return c.target
        return None

    def mapped_predicates(self) -> set[URI]:
        """Source predicates this mapping can rewrite."""
        return {c.source for c in self.correspondences}

    # -- derived mappings ---------------------------------------------------

    def reversed(self, mapping_id: str | None = None) -> "SchemaMapping":
        """The opposite-direction mapping over reversible correspondences.

        Raises :class:`ValueError` if no correspondence is reversible
        (a pure-subsumption mapping has no sound reverse).
        """
        reversible = [c.reversed() for c in self.correspondences
                      if c.kind is MappingKind.EQUIVALENCE]
        if not reversible:
            raise ValueError(f"mapping {self.mapping_id} is not reversible")
        return SchemaMapping(
            mapping_id if mapping_id is not None else f"{self.mapping_id}~rev",
            self.target_schema,
            self.source_schema,
            reversible,
            provenance=self.provenance,
            deprecated=self.deprecated,
            confidence=self.confidence,
        )

    def with_deprecated(self, deprecated: bool) -> "SchemaMapping":
        """A copy with the deprecation flag set/cleared."""
        return SchemaMapping(
            self.mapping_id, self.source_schema, self.target_schema,
            self.correspondences, provenance=self.provenance,
            deprecated=deprecated, confidence=self.confidence,
        )

    def with_confidence(self, confidence: float) -> "SchemaMapping":
        """A copy with an updated posterior correctness probability."""
        return SchemaMapping(
            self.mapping_id, self.source_schema, self.target_schema,
            self.correspondences, provenance=self.provenance,
            deprecated=self.deprecated, confidence=confidence,
        )

    # -- plumbing -----------------------------------------------------------

    def _key(self) -> tuple:
        return (self.mapping_id, self.source_schema, self.target_schema,
                self.correspondences, self.provenance, self.deprecated,
                self.confidence)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchemaMapping):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(("SchemaMapping", self._key()))

    def __repr__(self) -> str:
        flag = ", deprecated" if self.deprecated else ""
        return (f"SchemaMapping({self.mapping_id!r}, "
                f"{self.source_schema!r} -> {self.target_schema!r}, "
                f"{len(self.correspondences)} correspondence(s), "
                f"{self.provenance}{flag})")
