"""The directed graph of schemas and mappings.

This is the logical object whose connectivity §3.1 monitors.  The
graph is used in two places:

* *centrally* in tests, benches and the self-organization controller,
  where a :class:`MappingGraph` is reconstructed from records fetched
  through the overlay;
* *conceptually* in the distributed system, where no peer ever holds
  the full graph — each schema peer only knows its own in/out degree.

Besides adjacency bookkeeping it provides path search (for iterative
reformulation planning), mapping composition along a path, and simple
cycle enumeration (the raw material of the Bayesian deprecation
analysis).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.mapping.model import (
    MappingKind,
    PredicateCorrespondence,
    SchemaMapping,
)
from repro.rdf.terms import URI


class MappingGraph:
    """Directed multigraph: nodes are schema names, edges are mappings."""

    def __init__(self, mappings: Iterable[SchemaMapping] = ()) -> None:
        self._by_id: dict[str, SchemaMapping] = {}
        self._out: dict[str, set[str]] = {}  # schema -> mapping ids
        self._in: dict[str, set[str]] = {}
        for mapping in mappings:
            self.add(mapping)

    # -- mutation ------------------------------------------------------

    def add(self, mapping: SchemaMapping) -> None:
        """Insert (or overwrite by id) a mapping."""
        existing = self._by_id.get(mapping.mapping_id)
        if existing is not None:
            self.remove(mapping.mapping_id)
        self._by_id[mapping.mapping_id] = mapping
        self._out.setdefault(mapping.source_schema, set()).add(mapping.mapping_id)
        self._in.setdefault(mapping.target_schema, set()).add(mapping.mapping_id)
        # Make sure both endpoints exist as nodes.
        self._out.setdefault(mapping.target_schema, set())
        self._in.setdefault(mapping.source_schema, set())

    def add_schema(self, schema_name: str) -> None:
        """Register a schema node with no mappings yet."""
        self._out.setdefault(schema_name, set())
        self._in.setdefault(schema_name, set())

    def remove(self, mapping_id: str) -> SchemaMapping | None:
        """Delete a mapping by id; returns it (or None if absent)."""
        mapping = self._by_id.pop(mapping_id, None)
        if mapping is None:
            return None
        self._out.get(mapping.source_schema, set()).discard(mapping_id)
        self._in.get(mapping.target_schema, set()).discard(mapping_id)
        return mapping

    def deprecate(self, mapping_id: str) -> None:
        """Flip a mapping's deprecation flag on, keeping it in the graph."""
        mapping = self._by_id.get(mapping_id)
        if mapping is not None:
            self._by_id[mapping_id] = mapping.with_deprecated(True)

    # -- lookups --------------------------------------------------------

    def get(self, mapping_id: str) -> SchemaMapping | None:
        """The mapping with this id, if present."""
        return self._by_id.get(mapping_id)

    def schemas(self) -> list[str]:
        """All schema nodes, sorted."""
        return sorted(self._out.keys() | self._in.keys())

    def mappings(self, include_deprecated: bool = False) -> list[SchemaMapping]:
        """All mappings (active only by default), sorted by id."""
        return sorted(
            (m for m in self._by_id.values()
             if include_deprecated or m.active),
            key=lambda m: m.mapping_id,
        )

    def outgoing(self, schema: str,
                 include_deprecated: bool = False) -> list[SchemaMapping]:
        """Active mappings whose source is ``schema``."""
        return sorted(
            (self._by_id[mid] for mid in self._out.get(schema, ())
             if include_deprecated or self._by_id[mid].active),
            key=lambda m: m.mapping_id,
        )

    def incoming(self, schema: str,
                 include_deprecated: bool = False) -> list[SchemaMapping]:
        """Active mappings whose target is ``schema``."""
        return sorted(
            (self._by_id[mid] for mid in self._in.get(schema, ())
             if include_deprecated or self._by_id[mid].active),
            key=lambda m: m.mapping_id,
        )

    def degree(self, schema: str) -> tuple[int, int]:
        """``(in_degree, out_degree)`` over active mappings — the pair
        each schema peer publishes to ``Hash(Domain)``."""
        return (len(self.incoming(schema)), len(self.outgoing(schema)))

    def degree_pairs(self) -> list[tuple[int, int]]:
        """Degree pairs of every schema (input to the ci indicator)."""
        return [self.degree(s) for s in self.schemas()]

    # -- paths ------------------------------------------------------------

    def find_paths(self, source: str, target: str,
                   max_hops: int = 6) -> list[list[SchemaMapping]]:
        """All simple mapping paths from ``source`` to ``target``.

        Depth-limited DFS over active mappings; paths visit each schema
        at most once.  Sorted by length then ids for determinism.
        """
        paths: list[list[SchemaMapping]] = []

        def _dfs(current: str, visited: set[str],
                 trail: list[SchemaMapping]) -> None:
            if len(trail) > max_hops:
                return
            if current == target and trail:
                paths.append(list(trail))
                return
            for mapping in self.outgoing(current):
                nxt = mapping.target_schema
                if nxt in visited:
                    continue
                visited.add(nxt)
                trail.append(mapping)
                _dfs(nxt, visited, trail)
                trail.pop()
                visited.discard(nxt)

        _dfs(source, {source}, [])
        paths.sort(key=lambda p: (len(p), [m.mapping_id for m in p]))
        return paths

    def reachable_schemas(self, source: str,
                          max_hops: int | None = None) -> set[str]:
        """Schemas reachable from ``source`` via active mappings (BFS)."""
        frontier = [source]
        seen = {source}
        hops = 0
        while frontier and (max_hops is None or hops < max_hops):
            next_frontier: list[str] = []
            for schema in frontier:
                for mapping in self.outgoing(schema):
                    if mapping.target_schema not in seen:
                        seen.add(mapping.target_schema)
                        next_frontier.append(mapping.target_schema)
            frontier = next_frontier
            hops += 1
        seen.discard(source)
        return seen

    # -- composition & cycles ------------------------------------------------

    @staticmethod
    def compose_correspondences(
        path: list[SchemaMapping],
    ) -> list[PredicateCorrespondence]:
        """Follow each head predicate through a chain of mappings.

        Returns end-to-end correspondences for the predicates that
        survive every hop; predicates falling out of the mapped set at
        any hop are dropped.  A subsumption anywhere in the chain makes
        the composed correspondence a subsumption (containment
        composes).  Works for cycles too (``source == target`` schema),
        which is what the Bayesian consistency check needs.
        """
        if not path:
            return []
        for first, second in zip(path, path[1:]):
            if first.target_schema != second.source_schema:
                raise ValueError("path mappings do not chain")
        composed: list[PredicateCorrespondence] = []
        head = path[0]
        for corr in head.correspondences:
            current: URI | None = corr.target
            kind = corr.kind
            for hop in path[1:]:
                assert current is not None
                nxt = hop.translate(current)
                if nxt is None:
                    current = None
                    break
                for hop_corr in hop.correspondences:
                    if hop_corr.source == current:
                        if hop_corr.kind is MappingKind.SUBSUMPTION:
                            kind = MappingKind.SUBSUMPTION
                        break
                current = nxt
            if current is not None:
                composed.append(
                    PredicateCorrespondence(corr.source, current, kind)
                )
        return composed

    @staticmethod
    def compose_path(path: list[SchemaMapping],
                     mapping_id: str = "composed") -> SchemaMapping | None:
        """Compose an *acyclic* mapping path into one end-to-end mapping.

        Returns ``None`` when no predicate survives the whole chain.
        Raises :class:`ValueError` for cyclic paths (a mapping's
        endpoints must be distinct schemas); use
        :meth:`compose_correspondences` for cycle analysis.
        """
        composed = MappingGraph.compose_correspondences(path)
        if not composed:
            return None
        return SchemaMapping(
            mapping_id,
            path[0].source_schema,
            path[-1].target_schema,
            composed,
            provenance="auto",
        )

    def find_cycles(self, max_length: int = 4) -> list[list[SchemaMapping]]:
        """Simple directed cycles up to ``max_length`` mappings long.

        Each cycle is reported once, rooted at its lexicographically
        smallest schema.  These are the "transitive closures of
        mappings" the Bayesian quality analysis compares (§3.2).
        """
        cycles: list[list[SchemaMapping]] = []
        schemas = self.schemas()

        def _dfs(root: str, current: str, visited: set[str],
                 trail: list[SchemaMapping]) -> None:
            if len(trail) >= max_length:
                return
            for mapping in self.outgoing(current):
                nxt = mapping.target_schema
                if nxt == root and trail:
                    cycles.append(trail + [mapping])
                    continue
                if nxt in visited or nxt < root:
                    continue
                visited.add(nxt)
                trail.append(mapping)
                _dfs(root, nxt, visited, trail)
                trail.pop()
                visited.discard(nxt)

        for root in schemas:
            _dfs(root, root, {root}, [])
        cycles.sort(key=lambda c: (len(c), [m.mapping_id for m in c]))
        return cycles
