"""Pairwise GAV schema mappings and view unfolding.

"GridVine allows for the definition of both equivalence and inclusion
(subsumption) GAV mappings.  ...  mappings relate semantically similar
predicates defined in different schemas.  Queries are then reformulated
by replacing the predicates with the definition of their equivalent or
subsumed predicates (view unfolding)" (§3).
"""

from repro.mapping.model import (
    MappingKind,
    PredicateCorrespondence,
    SchemaMapping,
)
from repro.mapping.unfolding import translate_pattern, translate_query
from repro.mapping.graph import MappingGraph

__all__ = [
    "MappingKind",
    "PredicateCorrespondence",
    "SchemaMapping",
    "translate_pattern",
    "translate_query",
    "MappingGraph",
]
