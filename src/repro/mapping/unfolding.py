"""View unfolding: rewriting queries through schema mappings.

"Queries are then reformulated by replacing the predicates with the
definition of their equivalent or subsumed predicates (view
unfolding)" (§3).  Unfolding operates pattern-by-pattern: a pattern's
predicate is replaced by its corresponding predicate in the target
schema.  A query translates only if *every* pattern whose predicate
belongs to the mapping's source schema has a correspondence — partial
translations would silently drop join conditions and return wrong
answers, so they are rejected (``None``).
"""

from __future__ import annotations

from repro.mapping.model import SchemaMapping
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.terms import URI, Variable
from repro.rdf.triples import Position


def translate_pattern(pattern: TriplePattern,
                      mapping: SchemaMapping) -> TriplePattern | None:
    """Rewrite one pattern through ``mapping``.

    Returns ``None`` when the pattern's predicate belongs to the
    mapping's source schema but has no correspondence, or when the
    predicate is a variable (predicates bound at runtime cannot be
    statically unfolded).  Patterns over *other* schemas pass through
    unchanged, enabling multi-schema conjunctive queries.
    """
    predicate = pattern.predicate
    if isinstance(predicate, Variable):
        return None
    assert isinstance(predicate, URI)
    if predicate.namespace != mapping.source_schema:
        return pattern
    target = mapping.translate(predicate)
    if target is None:
        return None
    return pattern.replace(Position.PREDICATE, target)


def translate_query(query: ConjunctiveQuery,
                    mapping: SchemaMapping) -> ConjunctiveQuery | None:
    """Rewrite a whole query through ``mapping``.

    All patterns must translate (see :func:`translate_pattern`); at
    least one pattern must actually change, otherwise the mapping is
    irrelevant to this query and ``None`` is returned so callers do not
    chase no-op reformulations.
    """
    if mapping.deprecated:
        return None
    translated: list[TriplePattern] = []
    changed = False
    for pattern in query.patterns:
        new_pattern = translate_pattern(pattern, mapping)
        if new_pattern is None:
            return None
        changed = changed or (new_pattern != pattern)
        translated.append(new_pattern)
    if not changed:
        return None
    return ConjunctiveQuery(translated, query.distinguished)


def query_schemas(query: ConjunctiveQuery) -> set[str]:
    """The schema names referenced by a query's constant predicates."""
    schemas: set[str] = set()
    for pattern in query.patterns:
        if isinstance(pattern.predicate, URI):
            schemas.add(pattern.predicate.namespace)
    return schemas
