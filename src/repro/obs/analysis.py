"""Offline trace analysis: waterfalls, critical paths, slow queries.

Consumes the JSONL written by :meth:`~repro.obs.tracer.Tracer.
export_jsonl` (or the merged sharded export).  Everything here is
plain-data in, text out — the ``repro trace`` CLI subcommand is a thin
shell over these functions, and tests call them directly.
"""

from __future__ import annotations

import json
from typing import Any, Iterable


def load_jsonl(path: str) -> list[dict]:
    """Read one record dict per non-empty line."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def spans_of(records: Iterable[dict],
             trace_id: str | None = None) -> list[dict]:
    """The span records (optionally of one trace), in file order."""
    return [r for r in records if r["type"] == "span"
            and (trace_id is None or r["trace"] == trace_id)]


def events_of(records: Iterable[dict],
              trace_id: str | None = None) -> list[dict]:
    """The event records (optionally of one trace), in file order."""
    return [r for r in records if r["type"] == "event"
            and (trace_id is None or r["trace"] == trace_id)]


def _span_end(span: dict) -> float:
    return span["start"] if span["end"] is None else span["end"]


def trace_ids(records: Iterable[dict]) -> list[str]:
    """Distinct trace ids in first-appearance order."""
    seen: dict[str, None] = {}
    for record in records:
        seen.setdefault(record["trace"])
    return list(seen)


def trace_summaries(records: list[dict]) -> list[dict]:
    """Per-trace rollup: span counts, duration, message volume."""
    summaries: list[dict] = []
    for trace in trace_ids(records):
        spans = spans_of(records, trace)
        events = events_of(records, trace)
        if not spans:
            continue
        start = min(s["start"] for s in spans)
        end = max(_span_end(s) for s in spans)
        summaries.append({
            "trace": trace,
            "root": next((s["name"] for s in spans
                          if s["parent"] is None), None),
            "spans": len(spans),
            "messages": sum(1 for s in spans
                            if s["kind"] == "message"),
            "drops": sum(1 for e in events
                         if e["name"].startswith("drop:")),
            "events": len(events),
            "start": start,
            "end": end,
            "duration": round(end - start, 9),
            "peers": len({s["peer"] for s in spans}),
        })
    return summaries


def top_slowest(records: list[dict], k: int = 5) -> list[dict]:
    """The ``k`` longest traces, slowest first (ties by trace id)."""
    summaries = trace_summaries(records)
    summaries.sort(key=lambda s: (-s["duration"], s["trace"]))
    return summaries[:k]


def connected_components(spans: list[dict]) -> int:
    """Number of parent-link components among one trace's spans.

    1 means the trace is fully connected: every span reaches the root
    through recorded parents.  Spans whose parent is outside the span
    set each start a new component.
    """
    ids = {s["span"] for s in spans}
    return sum(1 for s in spans
               if s["parent"] is None or s["parent"] not in ids)


def critical_path(records: list[dict], trace_id: str) -> list[dict]:
    """Root-to-latest-span chain: the spans that bound the trace's
    makespan.  Walks parent links back from the span with the latest
    end time; the reversed chain reads top-down like the waterfall."""
    spans = spans_of(records, trace_id)
    if not spans:
        return []
    by_id = {s["span"]: s for s in spans}
    last = max(spans, key=lambda s: (_span_end(s), s["span"]))
    path = [last]
    while last["parent"] in by_id:
        last = by_id[last["parent"]]
        path.append(last)
    path.reverse()
    return path


def waterfall(records: list[dict], trace_id: str,
              width: int = 48) -> list[str]:
    """Hop-by-hop timeline of one trace as fixed-width text lines.

    Children render depth-indented under their parents in start-time
    order; each line carries a proportional ``[====]`` bar plus the
    span's peer, status and any drop/fault annotations.
    """
    spans = spans_of(records, trace_id)
    if not spans:
        return [f"trace {trace_id!r}: no spans"]
    events = events_of(records, trace_id)
    children: dict[str | None, list[dict]] = {}
    ids = {s["span"] for s in spans}
    for span in spans:
        parent = span["parent"] if span["parent"] in ids else None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s["start"], s["span"]))
    notes: dict[str, list[str]] = {}
    for event in events:
        notes.setdefault(event["parent"], []).append(event["name"])
    t0 = min(s["start"] for s in spans)
    t1 = max(_span_end(s) for s in spans)
    extent = (t1 - t0) or 1.0
    lines = [f"trace {trace_id}  ({len(spans)} spans, "
             f"{t1 - t0:.3f}s)"]

    def render(span: dict, depth: int) -> None:
        left = int(width * (span["start"] - t0) / extent)
        right = max(left + 1,
                    int(width * (_span_end(span) - t0) / extent))
        bar = " " * left + "=" * (right - left)
        bar = bar.ljust(width)
        label = "  " * depth + span["name"]
        suffix = "" if span["status"] in ("ok", "sent") else \
            f" [{span['status']}]"
        annotation = notes.get(span["span"])
        if annotation:
            suffix += " !" + ",".join(annotation)
        lines.append(f"|{bar}| {label} @{span['peer']}"
                     f" {span['start'] - t0:.3f}s"
                     f"+{_span_end(span) - span['start']:.3f}s{suffix}")
        for child in children.get(span["span"], ()):
            render(child, depth + 1)

    for root in children.get(None, ()):
        render(root, 0)
    return lines


def attribution_stats(records: list[dict]) -> list[dict]:
    """Per-trace (== per-op-tag) message attribution.

    Root traces use the operation's attribution tag as their trace id,
    so this table is the trace-plane mirror of
    :meth:`~repro.simnet.metrics.NetworkMetrics.operation_messages` —
    with per-kind splits and drop causes the counter never had.
    """
    table: list[dict] = []
    for summary in trace_summaries(records):
        trace = summary["trace"]
        by_kind: dict[str, int] = {}
        for span in spans_of(records, trace):
            if span["kind"] != "message":
                continue
            kind = span["name"].removeprefix("msg:")
            by_kind[kind] = by_kind.get(kind, 0) + 1
        drops: dict[str, int] = {}
        for event in events_of(records, trace):
            if event["name"].startswith("drop:"):
                reason = event["name"].removeprefix("drop:")
                drops[reason] = drops.get(reason, 0) + 1
        table.append({
            "trace": trace,
            "messages": summary["messages"],
            "by_kind": dict(sorted(by_kind.items())),
            "drops": dict(sorted(drops.items())),
            "duration": summary["duration"],
        })
    return table


def format_stats(table: list[dict]) -> list[str]:
    """Readable lines for :func:`attribution_stats` output."""
    lines = []
    for row in table:
        kinds = ", ".join(f"{count} {kind}" for kind, count in
                          row["by_kind"].items()) or "none"
        line = (f"{row['trace']}: {row['messages']} message(s) "
                f"({kinds}) in {row['duration']:.3f}s")
        if row["drops"]:
            drops = ", ".join(f"{c} {r}" for r, c in
                              row["drops"].items())
            line += f"; dropped: {drops}"
        lines.append(line)
    return lines


def summary_lines(summaries: list[dict]) -> list[str]:
    """Readable lines for :func:`trace_summaries` output."""
    return [
        (f"{s['trace']}: {s['root'] or '?'} — {s['spans']} spans "
         f"({s['messages']} messages, {s['drops']} drops) across "
         f"{s['peers']} peer(s), {s['duration']:.3f}s")
        for s in summaries
    ]


def critical_path_lines(path: list[dict]) -> list[str]:
    """Readable lines for :func:`critical_path` output."""
    if not path:
        return ["no spans"]
    t0 = path[0]["start"]
    return [
        (f"{i}. {span['name']} @{span['peer']} "
         f"+{span['start'] - t0:.3f}s "
         f"({_span_end(span) - span['start']:.3f}s, "
         f"{span['status']})")
        for i, span in enumerate(path)
    ]


def load_any(path: str) -> list[dict]:
    """Alias for :func:`load_jsonl` (single supported format today)."""
    return load_jsonl(path)


def trace_tree(records: list[dict], trace_id: str) -> dict[str, Any]:
    """Nested dict view of one trace (tests and programmatic use)."""
    spans = spans_of(records, trace_id)
    by_id = {s["span"]: dict(s, children=[]) for s in spans}
    roots = []
    for span in by_id.values():
        parent = by_id.get(span["parent"])
        if parent is None:
            roots.append(span)
        else:
            parent["children"].append(span)
    return {"trace": trace_id, "roots": roots,
            "spans": len(spans)}
