"""Observability plane: causal tracing + the unified metrics registry.

Two independent facilities, both strictly pay-for-what-you-use:

:mod:`repro.obs.tracer` / :mod:`repro.obs.context`
    Sim-time span recording with deterministic ids and causal context
    propagation over :class:`~repro.simnet.network.Message` envelopes.
    With no tracer installed every transport hot path reduces to one
    attribute load and a ``None`` check — the transport golden tests
    stay bit-identical.

:mod:`repro.obs.registry`
    :class:`~repro.obs.registry.MetricsRegistry` unifying the existing
    stat bags through lazily-evaluated views, plus
    :class:`~repro.obs.registry.CounterGroup` for typed counter sets.

:mod:`repro.obs.analysis`
    Offline trace analysis behind the ``repro trace`` subcommand.
"""

from repro.obs.context import TraceContext, derive_span_id
from repro.obs.registry import (
    CounterGroup,
    FailoverCounters,
    MetricsRegistry,
)
from repro.obs.tracer import Tracer, export_records_jsonl, merge_records

__all__ = [
    "TraceContext",
    "derive_span_id",
    "CounterGroup",
    "FailoverCounters",
    "MetricsRegistry",
    "Tracer",
    "export_records_jsonl",
    "merge_records",
]
