"""Sim-time span recorder with causal context propagation.

One :class:`Tracer` serves one transport (per-shard in sharded runs —
records merge at collection, see ``simnet/shard.py``).  It keeps two
pieces of state:

* an **activation stack** of ``(trace_id, span_id)`` contexts — the
  synchronous analogue of the transport's per-operation attribution
  stack.  Pushing a context makes it the parent of every span and
  every message sent until the matching pop.  The transport re-opens
  a delivered message's context around its handler, exactly as it
  re-opens the ``op_tag`` scope, so causal chains thread through
  asynchronous hops without any per-call bookkeeping;
* a **bounded record buffer** of span and event dicts.  Records past
  ``capacity`` are counted in :attr:`dropped`, never silently lost.

Record shapes (plain dicts, picklable, one JSON object per line on
export):

``span``
    ``{"type": "span", "trace", "span", "parent", "name", "kind",
    "peer", "start", "end", "status", "attrs"?}`` — ``end`` may be
    ``None`` for spans never finished (a run torn down mid-flight).

``event``
    ``{"type": "event", "trace", "parent", "name", "peer", "time",
    "attrs"?}`` — instantaneous annotations (message drops, failover
    steering, injected faults) attached to an enclosing span.

Message spans are recorded **at the sender**: the sender knows the
sampled latency, so the span's ``end`` is the delivery time and
cross-shard spans need no receiver-side amendment.  Recording a
message span re-points the envelope's context at the new span, so
work done in the delivery handler parents under the hop that caused
it — that is what makes a waterfall show hop-by-hop structure.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.obs.context import derive_span_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.network import Message


class Tracer:
    """Bounded sim-time span recorder for one transport."""

    __slots__ = ("seed", "capacity", "records", "dropped", "_stack",
                 "_seq")

    def __init__(self, seed: int = 0, capacity: int = 200_000) -> None:
        self.seed = seed
        self.capacity = capacity
        #: recorded span/event dicts, in creation order
        self.records: list[dict] = []
        #: records discarded because the buffer was full
        self.dropped = 0
        #: activation stack of ``(trace_id, span_id)`` contexts
        self._stack: list[tuple[str, str]] = []
        #: per-peer span sequence counters (see ``derive_span_id``)
        self._seq: dict[str, int] = {}

    # -- identity ------------------------------------------------------

    def next_span_id(self, peer: str) -> str:
        seq = self._seq.get(peer, 0)
        self._seq[peer] = seq + 1
        return derive_span_id(self.seed, peer, seq)

    def current(self) -> tuple[str, str] | None:
        """The innermost active ``(trace_id, span_id)`` context."""
        return self._stack[-1] if self._stack else None

    # -- span lifecycle ------------------------------------------------

    def _record(self, record: dict) -> None:
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(record)

    def start_trace(self, trace_id: str, name: str, *, peer: str,
                    start: float, kind: str = "op",
                    **attrs: Any) -> dict:
        """Open a trace's root span (no parent)."""
        record: dict = {
            "type": "span", "trace": trace_id,
            "span": self.next_span_id(peer), "parent": None,
            "name": name, "kind": kind, "peer": peer,
            "start": start, "end": None, "status": "open",
        }
        if attrs:
            record["attrs"] = attrs
        self._record(record)
        return record

    def begin(self, name: str, *, peer: str, kind: str, start: float,
              context: tuple[str, str] | None = None,
              **attrs: Any) -> dict:
        """Open a span under ``context`` (default: the active stack top).

        Callers must ensure a parent context exists — spans are never
        orphaned silently.
        """
        trace_id, parent_id = (context if context is not None
                               else self._stack[-1])
        record: dict = {
            "type": "span", "trace": trace_id,
            "span": self.next_span_id(peer), "parent": parent_id,
            "name": name, "kind": kind, "peer": peer,
            "start": start, "end": None, "status": "open",
        }
        if attrs:
            record["attrs"] = attrs
        self._record(record)
        return record

    def finish(self, record: dict, end: float, status: str = "ok",
               **attrs: Any) -> None:
        """Close an open span (idempotent on already-closed spans)."""
        if record["end"] is None:
            record["end"] = end
            record["status"] = status
            if attrs:
                record.setdefault("attrs", {}).update(attrs)

    def context_of(self, record: dict) -> tuple[str, str]:
        """The ``(trace_id, span_id)`` context a span defines."""
        return (record["trace"], record["span"])

    @contextmanager
    def activate(self, context: tuple[str, str]) -> Iterator[None]:
        """Make ``context`` the parent of spans/messages inside."""
        self._stack.append(context)
        try:
            yield
        finally:
            self._stack.pop()

    def event(self, name: str, *, peer: str, time: float,
              context: tuple[str, str] | None = None,
              **attrs: Any) -> None:
        """Record an instantaneous annotation under ``context`` (or the
        active stack top); dropped when no context is active."""
        if context is None:
            if not self._stack:
                return
            context = self._stack[-1]
        record: dict = {
            "type": "event", "trace": context[0], "parent": context[1],
            "name": name, "peer": peer, "time": time,
        }
        if attrs:
            record["attrs"] = attrs
        self._record(record)

    # -- transport hooks (called from the gated send/deliver paths) ----

    def message_sent(self, message: "Message", now: float,
                     delay: float) -> None:
        """Record the hop span of a message that passed the send checks.

        The span ends at delivery time (sender-known latency).  The
        envelope's context is re-pointed at this span so the delivery
        handler's work parents under the hop.
        """
        trace_id, parent_id = message.trace
        span_id = self.next_span_id(message.src)
        self._record({
            "type": "span", "trace": trace_id, "span": span_id,
            "parent": parent_id, "name": f"msg:{message.kind}",
            "kind": "message", "peer": message.src,
            "start": now, "end": now + delay, "status": "sent",
            "attrs": {"src": message.src, "dst": message.dst},
        })
        message.trace = (trace_id, span_id)

    def message_dropped(self, message: "Message", now: float,
                        reason: str) -> None:
        """Record a drop annotation under the envelope's context.

        Send-time drops (offline destination, injected fault) parent
        under the sender's span; in-flight drops parent under the
        message's own hop span (recorded when it was sent).
        """
        trace_id, parent_id = message.trace
        self._record({
            "type": "event", "trace": trace_id, "parent": parent_id,
            "name": f"drop:{reason}", "peer": message.src, "time": now,
            "attrs": {"dst": message.dst, "kind": message.kind,
                      "reason": reason},
        })

    # -- export --------------------------------------------------------

    def snapshot(self) -> dict:
        """Buffer occupancy summary (for registry views / CLI)."""
        spans = sum(1 for r in self.records if r["type"] == "span")
        return {
            "records": len(self.records),
            "spans": spans,
            "events": len(self.records) - spans,
            "dropped": self.dropped,
            "traces": len({r["trace"] for r in self.records}),
        }

    def export_jsonl(self, path: str,
                     extra_records: list[dict] | None = None) -> int:
        """Write records (plus ``extra_records``) as JSONL; returns the
        record count.  Sorted by ``(time, peer, span id)`` so exports
        are identical regardless of shard count or worker mode."""
        records = list(self.records)
        if extra_records:
            records.extend(extra_records)
        records.sort(key=record_sort_key)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return len(records)


def record_sort_key(record: dict) -> tuple:
    """Deterministic global order for merged multi-tracer records."""
    time = record["start"] if record["type"] == "span" else record["time"]
    return (time, record["peer"], record.get("span") or record["parent"]
            or "", record["type"], record["name"])


def merge_records(per_tracer: list[list[dict]]) -> list[dict]:
    """Merge per-shard record lists into one deterministic stream."""
    merged: list[dict] = []
    for records in per_tracer:
        merged.extend(records)
    merged.sort(key=record_sort_key)
    return merged


def export_records_jsonl(records: list[dict], path: str) -> int:
    """Write already-merged records as sorted JSONL."""
    ordered = sorted(records, key=record_sort_key)
    with open(path, "w", encoding="utf-8") as handle:
        for record in ordered:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(ordered)
