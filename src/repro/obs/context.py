"""Trace identity: deterministic span ids and the context tuple.

A *trace context* is the pair ``(trace_id, span_id)`` — the trace a
piece of work belongs to and the span that caused it.  Contexts ride
on :class:`~repro.simnet.network.Message` envelopes as plain tuples
(picklable, so sharded transports ship them across process boundaries
unchanged) and on the tracer's activation stack for synchronous work.

Span ids are **derived, never drawn**: :func:`derive_span_id` is a
pure function of ``(trace seed, peer, per-peer sequence number)``.
Because each peer's event order is deterministic under a fixed seed
(the property the transport golden tests pin), the ids — and therefore
whole traces — are bit-identical across runs and across
:class:`~repro.simnet.shard.ShardedTransport` shard counts: sharding
changes *which tracer* numbers a peer's spans, not the numbers
themselves.
"""

from __future__ import annotations

import hashlib
from typing import NamedTuple


class TraceContext(NamedTuple):
    """One causal position inside a trace.

    ``parent_id`` is ``None`` for a trace's root span.  The tuple
    degrades to plain data everywhere it travels — message envelopes
    carry ``(trace_id, span_id)`` pairs and re-derive the rest.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None


def derive_span_id(seed: int, peer: str, seq: int) -> str:
    """Deterministic span id from ``(trace seed, peer, sequence)``.

    The readable ``peer.seq`` prefix keeps waterfalls greppable; the
    blake2s suffix binds the id to the trace seed so spans from runs
    with different seeds can never be confused for one another.
    """
    digest = hashlib.blake2s(
        f"{seed}|{peer}|{seq}".encode(), digest_size=4
    ).hexdigest()
    return f"{peer}.{seq}.{digest}"
