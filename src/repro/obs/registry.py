"""Unified metrics plane: one registry over the repo's stat bags.

Before this module the simulator had four disjoint, hand-rolled stat
containers — :class:`~repro.simnet.metrics.NetworkMetrics`,
:class:`~repro.engine.core.EngineStats`,
:class:`~repro.exec.stream.OperatorStats` and the bare
``failover_stats`` dict on :class:`~repro.pgrid.peer.PGridPeer` — each
with its own snapshot idiom.  The registry unifies them without
touching their hot paths:

* native **counters / gauges / histograms** with optional label
  tuples, for new instrumentation;
* **views** — lazily evaluated snapshot callables the existing bags
  register (``metrics.register_into(registry)``).  The bags keep their
  plain-attribute increments (the inlined hot paths in
  ``simnet/network.py`` depend on them); the registry evaluates the
  view only when a snapshot is taken;
* a ``snapshot()`` / ``diff()`` API consumed by ``benchmarks/record.py``
  and the CLI.

:class:`CounterGroup` is the typed replacement for stringly-keyed
counter dicts: fields are declared once, increments are attribute
writes (faster than dict item writes on slot classes), and the full
mapping interface is preserved so existing ``stats["key"]`` readers
keep working unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator


class CounterGroup:
    """A fixed set of named integer counters with dict-style access.

    Subclasses declare ``_fields`` (and normally mirror it in
    ``__slots__``).  Attribute access is the hot path
    (``group.retries += 1``); the mapping interface exists for the
    callers that historically read a plain dict.
    """

    _fields: tuple[str, ...] = ()
    __slots__ = ()

    def __init__(self) -> None:
        for name in self._fields:
            setattr(self, name, 0)

    # -- mapping compatibility -----------------------------------------

    def __getitem__(self, key: str) -> int:
        if key not in self._fields:
            raise KeyError(key)
        return getattr(self, key)

    def __setitem__(self, key: str, value: int) -> None:
        if key not in self._fields:
            raise KeyError(key)
        setattr(self, key, value)

    def __contains__(self, key: object) -> bool:
        return key in self._fields

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def keys(self) -> tuple[str, ...]:
        return self._fields

    def values(self) -> list[int]:
        return [getattr(self, name) for name in self._fields]

    def items(self) -> list[tuple[str, int]]:
        return [(name, getattr(self, name)) for name in self._fields]

    def get(self, key: str, default: Any = None) -> Any:
        return getattr(self, key) if key in self._fields else default

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CounterGroup):
            return self.items() == other.items()
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.items())
        return f"{type(self).__name__}({inner})"

    def snapshot(self) -> dict:
        """A plain-dict copy (registry view / report payloads)."""
        return dict(self.items())

    def reset(self) -> None:
        for name in self._fields:
            setattr(self, name, 0)


class FailoverCounters(CounterGroup):
    """Typed counters of replica-failover activity on one peer.

    The former ``PGridPeer.failover_stats`` bare dict; the old
    attribute survives as a property view returning this group, so
    every historical ``peer.failover_stats["retries"]`` read still
    works.
    """

    _fields = ("failovers", "retries", "gave_up", "cancelled")
    __slots__ = _fields


def _series_key(name: str, labels: tuple) -> tuple:
    return (name, labels)


class MetricsRegistry:
    """Counters, gauges, histograms and registered snapshot views."""

    def __init__(self) -> None:
        self._counters: dict[tuple, int | float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, list[float]] = {}
        self._views: dict[str, Callable[[], Any]] = {}

    # -- native series -------------------------------------------------

    def inc(self, name: str, value: int | float = 1,
            labels: tuple = ()) -> None:
        """Increment a labeled counter series."""
        key = _series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float,
                  labels: tuple = ()) -> None:
        """Set a labeled gauge to its current value."""
        self._gauges[_series_key(name, labels)] = value

    def observe(self, name: str, value: float,
                labels: tuple = ()) -> None:
        """Add one observation to a labeled histogram series."""
        self._histograms.setdefault(_series_key(name, labels),
                                    []).append(value)

    def counter_value(self, name: str, labels: tuple = ()) -> int | float:
        return self._counters.get(_series_key(name, labels), 0)

    # -- views over existing stat bags ---------------------------------

    def register_view(self, name: str,
                      snapshot_fn: Callable[[], Any]) -> None:
        """Register a lazily-evaluated snapshot under ``name``.

        The callable runs only when :meth:`snapshot` is taken, so
        registering a view costs the instrumented object nothing on
        its hot path.  Re-registering a name replaces the view (a
        rebuilt engine supersedes its predecessor).
        """
        self._views[name] = snapshot_fn

    def view_names(self) -> list[str]:
        return sorted(self._views)

    # -- snapshot / diff -----------------------------------------------

    @staticmethod
    def _render(series: dict) -> dict:
        rendered: dict[str, Any] = {}
        for (name, labels), value in sorted(series.items(),
                                            key=lambda kv: kv[0]):
            key = name if not labels else (
                name + "{" + ",".join(map(str, labels)) + "}")
            rendered[key] = value
        return rendered

    def snapshot(self) -> dict:
        """Full plain-data state: native series + evaluated views."""
        histograms = {}
        for (name, labels), values in sorted(self._histograms.items(),
                                             key=lambda kv: kv[0]):
            key = name if not labels else (
                name + "{" + ",".join(map(str, labels)) + "}")
            histograms[key] = {
                "count": len(values),
                "sum": sum(values),
                "min": min(values),
                "max": max(values),
            }
        return {
            "counters": self._render(self._counters),
            "gauges": self._render(self._gauges),
            "histograms": histograms,
            "views": {name: fn() for name, fn in
                      sorted(self._views.items())},
        }

    @staticmethod
    def diff(before: dict, after: dict) -> dict:
        """Structural numeric delta of two snapshots.

        Numeric leaves subtract (zero deltas dropped); non-numeric
        leaves keep the ``after`` value when it changed.  The shape
        mirrors the snapshots, so a diff can itself be recorded.
        """
        def walk(b: Any, a: Any) -> Any:
            if isinstance(b, dict) and isinstance(a, dict):
                out = {}
                for key in a:
                    if key in b:
                        delta = walk(b[key], a[key])
                        if delta not in (None, {}, 0):
                            out[key] = delta
                    else:
                        out[key] = a[key]
                return out
            if isinstance(b, bool) or isinstance(a, bool):
                return a if a != b else None
            if isinstance(b, (int, float)) and isinstance(a, (int, float)):
                delta = a - b
                return delta if delta else 0
            return a if a != b else None

        result = walk(before, after)
        return result if isinstance(result, dict) else {}
