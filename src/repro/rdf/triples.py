"""Triples and triple positions.

A :class:`Triple` is the storage unit of the mediation layer:
``t = (t_subject, t_predicate, t_object)`` where the subject is the
resource the statement is about, the predicate is a schema attribute
and the object is a resource or literal value (§2.2).
"""

from __future__ import annotations

import enum

from repro.rdf.terms import GroundTerm, Literal, URI


class Position(enum.Enum):
    """The three positions of a triple; values match the paper's
    ``pos(term)`` function which "either takes subject, predicate or
    object as value"."""

    SUBJECT = "subject"
    PREDICATE = "predicate"
    OBJECT = "object"

    def __str__(self) -> str:
        return self.value

    # Enum's default ``__hash__`` is a Python-level ``hash(self._name_)``
    # call; positions key the store's index dicts, so every index probe
    # pays it.  Members are singletons compared by identity, so the
    # identity-based C slot is equivalent (and hash order is never
    # observable: all Position-keyed mappings iterate insertion order).
    __hash__ = object.__hash__


#: Iteration order for "index each triple three times".
ALL_POSITIONS = (Position.SUBJECT, Position.PREDICATE, Position.OBJECT)


class Triple:
    """An immutable ground triple.

    >>> t = Triple(URI("EMBL:A78712"), URI("EMBL#Organism"),
    ...            Literal("Aspergillus niger"))
    >>> t.at(Position.PREDICATE)
    URI('EMBL#Organism')
    """

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: URI, predicate: URI, obj: GroundTerm) -> None:
        if not isinstance(subject, URI):
            raise TypeError("triple subject must be a URI")
        if not isinstance(predicate, URI):
            raise TypeError("triple predicate must be a URI")
        if not isinstance(obj, (URI, Literal)):
            raise TypeError("triple object must be a URI or Literal")
        object.__setattr__(self, "subject", subject)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "object", obj)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Triple is immutable")

    def __reduce__(self):
        # Constructor round-trip (drops the cached hash): triples
        # cross sharded worker pipes inside overlay messages.
        return (Triple, (self.subject, self.predicate, self.object))

    def at(self, position: Position) -> GroundTerm:
        """The term at ``position``."""
        if position is Position.SUBJECT:
            return self.subject
        if position is Position.PREDICATE:
            return self.predicate
        return self.object

    def as_tuple(self) -> tuple[GroundTerm, GroundTerm, GroundTerm]:
        """``(subject, predicate, object)`` as a plain tuple."""
        return (self.subject, self.predicate, self.object)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __lt__(self, other: "Triple") -> bool:
        return self.as_tuple() < other.as_tuple()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash((self.subject, self.predicate, self.object))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"
