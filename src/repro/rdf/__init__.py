"""RDF-style data model: terms, triples, patterns and the query parser.

GridVine "stores data as ternary relations called triples.  Triples are
a natural way to encode RDF information, but can also be used to encode
arbitrary relational structures" (§2.2).  This package implements the
fragment the paper uses:

* :class:`~repro.rdf.terms.URI`, :class:`~repro.rdf.terms.Literal` and
  :class:`~repro.rdf.terms.Variable` terms;
* :class:`~repro.rdf.triples.Triple` — ``(subject, predicate, object)``;
* :class:`~repro.rdf.patterns.TriplePattern` — the unit of querying,
  with SQL-LIKE ``%substring%`` literal matching (the paper's
  ``%Aspergillus%`` example) and most-specific-constant selection for
  overlay routing;
* :class:`~repro.rdf.patterns.ConjunctiveQuery` — several patterns
  joined on shared variables, resolved iteratively;
* :func:`~repro.rdf.parser.parse_search_for` — a parser for the
  paper's ``SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))``
  surface syntax.
"""

from repro.rdf.terms import URI, Literal, Term, Variable
from repro.rdf.triples import Position, Triple
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.parser import ParseError, parse_search_for

__all__ = [
    "URI",
    "Literal",
    "Variable",
    "Term",
    "Triple",
    "Position",
    "TriplePattern",
    "ConjunctiveQuery",
    "parse_search_for",
    "ParseError",
]
