"""Parser for the paper's ``SearchFor`` query syntax.

Grammar (whitespace-insensitive)::

    query    := "SearchFor(" heads ":" body ")"
    heads    := var ("," var)*
    body     := pattern ("AND" pattern)*
    pattern  := "(" term "," term "," term ")"
    term     := var | like | literal | uri
    var      := NAME "?"
    like     := "%" TEXT "%"
    literal  := '"' TEXT '"'
    uri      := TEXT          (anything else; may contain '#' or ':')

Examples from the paper::

    SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))
    SearchFor(x2? : (x2?, EMP#SystematicName, %Aspergillus%))

Conjunctive extension::

    SearchFor(x?, y? : (x?, EMBL#Organism, %Aspergillus%)
                   AND (x?, EMBL#SeqLength, y?))
"""

from __future__ import annotations

import re

from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.terms import Literal, Term, URI, Variable


class ParseError(ValueError):
    """Raised when a query string does not follow the grammar."""


_QUERY_RE = re.compile(r"^\s*SearchFor\s*\(\s*(?P<heads>.*?)\s*:\s*(?P<body>.*)\)\s*$",
                       re.DOTALL)
_VARIABLE_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\?$")


def _parse_term(text: str) -> Term:
    """Parse one term token."""
    token = text.strip()
    if not token:
        raise ParseError("empty term")
    var_match = _VARIABLE_RE.match(token)
    if var_match:
        return Variable(var_match.group(1))
    if token.startswith("%") and token.endswith("%") and len(token) >= 2:
        return Literal(token)
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return Literal(token[1:-1])
    if token.startswith("<") and token.endswith(">") and len(token) > 2:
        # Angle-bracketed URIs, as produced by str(URI(...)).
        return URI(token[1:-1])
    return URI(token)


def _split_top_level(text: str, separator: str) -> list[str]:
    """Split on ``separator`` outside parentheses and quotes."""
    parts: list[str] = []
    depth = 0
    in_quote = False
    current: list[str] = []
    i = 0
    sep_len = len(separator)
    while i < len(text):
        ch = text[i]
        if ch == '"':
            in_quote = not in_quote
        elif not in_quote:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth < 0:
                    raise ParseError("unbalanced parentheses")
            elif depth == 0 and text[i:i + sep_len] == separator:
                parts.append("".join(current))
                current = []
                i += sep_len
                continue
        current.append(ch)
        i += 1
    if in_quote:
        raise ParseError("unterminated string literal")
    if depth != 0:
        raise ParseError("unbalanced parentheses")
    parts.append("".join(current))
    return parts


def _parse_pattern(text: str) -> TriplePattern:
    token = text.strip()
    if not (token.startswith("(") and token.endswith(")")):
        raise ParseError(f"pattern must be parenthesized: {token!r}")
    inner = token[1:-1]
    fields = _split_top_level(inner, ",")
    if len(fields) != 3:
        raise ParseError(f"pattern needs exactly 3 terms: {token!r}")
    subject, predicate, obj = (_parse_term(f) for f in fields)
    try:
        return TriplePattern(subject, predicate, obj)
    except TypeError as exc:
        raise ParseError(str(exc)) from exc


def parse_search_for(text: str) -> ConjunctiveQuery:
    """Parse a ``SearchFor`` query string into a query object.

    >>> q = parse_search_for(
    ...     "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))")
    >>> str(q.distinguished[0])
    'x?'
    """
    match = _QUERY_RE.match(text)
    if not match:
        raise ParseError(f"not a SearchFor query: {text!r}")
    head_tokens = _split_top_level(match.group("heads"), ",")
    distinguished = []
    for token in head_tokens:
        term = _parse_term(token)
        if not isinstance(term, Variable):
            raise ParseError(f"distinguished term must be a variable: {token!r}")
        distinguished.append(term)
    body_tokens = _split_top_level(match.group("body"), "AND")
    patterns = [_parse_pattern(token) for token in body_tokens]
    try:
        return ConjunctiveQuery(patterns, distinguished)
    except ValueError as exc:
        raise ParseError(str(exc)) from exc
