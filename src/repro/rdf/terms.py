"""Terms of the triple data model: URIs, literals and variables.

All terms are immutable, hashable and totally ordered (URIs before
literals before variables, then by value), so they can live in sets,
serve as dict keys in store indexes, and sort deterministically in
test output.
"""

from __future__ import annotations

from typing import Union


class _BaseTerm:
    """Common plumbing for the three term kinds.

    Terms are the atoms of every hot data structure (index keys, batch
    tuples, binding sets), so their hash is computed once and cached in
    a slot — the cache fills lazily on first use, keeping construction
    as cheap as before.
    """

    __slots__ = ("value", "_hash")
    _order = 0  # subclass-specific sort rank

    def __init__(self, value: str) -> None:
        if not isinstance(value, str):
            raise TypeError(f"term value must be str, got {type(value).__name__}")
        if not value:
            raise ValueError("term value must be non-empty")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __reduce__(self):
        # Constructor round-trip: immutability blocks slot-state
        # unpickling, and the cached hash / pattern kind are caches —
        # terms must pickle cleanly (sharded worker pipes carry them
        # inside queries, plans and outcomes).
        return (type(self), (self.value,))

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.value == other.value

    def __lt__(self, other: "_BaseTerm") -> bool:
        if not isinstance(other, _BaseTerm):
            return NotImplemented
        return (self._order, self.value) < (other._order, other.value)

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash((type(self).__name__, self.value))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value!r})"


class URI(_BaseTerm):
    """A resource identifier, e.g. ``URI("EMBL#Organism")``.

    The reproduction treats URIs as opaque strings; schema attributes
    use the paper's ``Schema#Attribute`` convention.
    """

    __slots__ = ()
    _order = 0

    @property
    def namespace(self) -> str:
        """The part before ``#`` (the schema name), or the whole URI."""
        head, _sep, _tail = self.value.partition("#")
        return head

    @property
    def local_name(self) -> str:
        """The part after ``#`` (the attribute), or the whole URI."""
        _head, sep, tail = self.value.partition("#")
        return tail if sep else self.value

    def __str__(self) -> str:
        return f"<{self.value}>"


class Literal(_BaseTerm):
    """A literal value (always carried as a string).

    A literal whose value starts *and* ends with ``%`` is a SQL-LIKE
    substring pattern when used inside a triple pattern — matching the
    paper's ``%Aspergillus%`` example.  As stored data it is just a
    string.
    """

    __slots__ = ("_kind",)
    _order = 1

    def _pattern_kind(self) -> int:
        """0 = exact value, 1 = ``%substring%``, 2 = ``prefix%``.

        Computed once per literal (cached in a slot): the store's
        candidate picker and every LIKE match re-ask these questions
        for the same handful of pattern literals.
        """
        try:
            return self._kind
        except AttributeError:
            value = self.value
            if len(value) >= 2 and value.endswith("%"):
                kind = 1 if value.startswith("%") else 2
            else:
                kind = 0
            object.__setattr__(self, "_kind", kind)
            return kind

    @property
    def is_like_pattern(self) -> bool:
        """Whether this literal denotes a ``%substring%`` match."""
        return self._pattern_kind() == 1

    @property
    def is_prefix_pattern(self) -> bool:
        """Whether this literal denotes a ``prefix%`` match.

        Unlike ``%substring%`` patterns, prefix patterns *are*
        routable: the order-preserving hash keeps all values with a
        common prefix in one contiguous key interval, which the
        overlay's range query resolves.
        """
        return self._pattern_kind() == 2

    @property
    def like_needle(self) -> str:
        """The substring inside the ``%...%`` wrapper."""
        if not self.is_like_pattern:
            raise ValueError(f"{self!r} is not a LIKE pattern")
        return self.value[1:-1]

    @property
    def prefix_needle(self) -> str:
        """The prefix before the trailing ``%``."""
        if not self.is_prefix_pattern:
            raise ValueError(f"{self!r} is not a prefix pattern")
        return self.value[:-1]

    def matches_value(self, stored: "Literal | URI") -> bool:
        """Whether this (possibly LIKE/prefix) literal matches a term."""
        kind = self._pattern_kind()
        if kind == 1:
            return self.value[1:-1] in stored.value
        if kind == 2:
            return stored.value.startswith(self.value[:-1])
        return isinstance(stored, Literal) and stored.value == self.value

    def __str__(self) -> str:
        return f'"{self.value}"'


class Variable(_BaseTerm):
    """A query variable, e.g. ``Variable("x")`` (printed ``x?``)."""

    __slots__ = ()
    _order = 2

    def __str__(self) -> str:
        return f"{self.value}?"


#: Anything that may appear in a triple pattern.
Term = Union[URI, Literal, Variable]

#: Anything that may appear in a stored triple (no variables).
GroundTerm = Union[URI, Literal]


def is_ground(term: Term) -> bool:
    """True for URIs and literals, False for variables."""
    return not isinstance(term, Variable)
