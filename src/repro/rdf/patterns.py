"""Triple patterns and conjunctive queries.

"A triple pattern is an expression of the form (s, p, o) where s and p
are URIs or variables, and o is a URI, a literal or a variable" (§2.3,
after RDQL).  Queries return bindings of *distinguished variables*;
conjunctive queries join several patterns on their shared variables.

The module also implements the paper's routing-key choice: "A peer
issuing a triple pattern query q first has to determine the address
space key ... by taking a hash of one of the constant terms ... When
two constant terms appear in the triple pattern, the most specific one
should be used."  LIKE literals (``%...%``) are never routable — the
order-preserving hash of a wildcard tells us nothing about where the
matching values live — which is precisely why the paper's example
routes on the predicate even though the object is also constant.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from operator import attrgetter
from typing import Any

from repro.rdf.terms import (
    GroundTerm,
    Literal,
    Term,
    URI,
    Variable,
    is_ground,
)
from repro.rdf.triples import ALL_POSITIONS, Position, Triple

#: Tie-break order among routable constants, most specific first.
#: Subjects identify a single resource, objects a value, predicates an
#: entire attribute extent — so subject > object > predicate.
_SPECIFICITY_ORDER = (Position.SUBJECT, Position.OBJECT, Position.PREDICATE)

#: A variable-to-value assignment produced by pattern matching.
Bindings = Mapping[Variable, GroundTerm]


class TriplePattern:
    """One triple pattern, the unit of querying.

    >>> p = TriplePattern(Variable("x"), URI("EMBL#Organism"),
    ...                   Literal("%Aspergillus%"))
    >>> p.routing_position()
    <Position.PREDICATE: 'predicate'>
    """

    __slots__ = ("subject", "predicate", "object", "_hash", "_matcher")

    def __init__(self, subject: Term, predicate: Term, obj: Term) -> None:
        if isinstance(subject, Literal):
            raise TypeError("pattern subject must be a URI or variable")
        if isinstance(predicate, Literal):
            raise TypeError("pattern predicate must be a URI or variable")
        object.__setattr__(self, "subject", subject)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "object", obj)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("TriplePattern is immutable")

    def __reduce__(self):
        # Rebuild through the constructor: the lazily-cached hash and
        # compiled matcher closure are caches, not state, and closures
        # cannot cross process boundaries (sharded worker pipes).
        return (TriplePattern, (self.subject, self.predicate, self.object))

    # -- structure ------------------------------------------------------

    def at(self, position: Position) -> Term:
        """The term at ``position``."""
        if position is Position.SUBJECT:
            return self.subject
        if position is Position.PREDICATE:
            return self.predicate
        return self.object

    def replace(self, position: Position, term: Term) -> "TriplePattern":
        """A copy with the term at ``position`` replaced.

        This is the primitive that view unfolding uses to rewrite a
        pattern's predicate through a schema mapping.
        """
        parts = {pos: self.at(pos) for pos in ALL_POSITIONS}
        parts[position] = term
        return TriplePattern(
            parts[Position.SUBJECT],
            parts[Position.PREDICATE],
            parts[Position.OBJECT],
        )

    def variables(self) -> set[Variable]:
        """All variables appearing in the pattern."""
        return {t for t in (self.subject, self.predicate, self.object)
                if isinstance(t, Variable)}

    def substitute(self, bindings: "Bindings") -> "TriplePattern":
        """A copy with bound variables replaced by their values.

        The workhorse of bound-join execution: substituting the
        bindings produced by earlier patterns turns later patterns
        into (more) constant-constrained lookups.

        >>> p = TriplePattern(Variable("x"), URI("S#len"), Variable("y"))
        >>> str(p.substitute({Variable("x"): URI("S:e1")}))
        '(<S:e1>, <S#len>, y?)'
        """
        s, p, o = self.subject, self.predicate, self.object
        if isinstance(s, Variable) and s in bindings:
            s = bindings[s]
        if isinstance(p, Variable) and p in bindings:
            p = bindings[p]
        if isinstance(o, Variable) and o in bindings:
            o = bindings[o]
        return TriplePattern(s, p, o)

    def constants(self) -> dict[Position, GroundTerm]:
        """Ground terms by position."""
        return {
            pos: self.at(pos)
            for pos in ALL_POSITIONS
            if is_ground(self.at(pos))
        }

    # -- routing ----------------------------------------------------------

    def routing_position(self) -> Position:
        """Position of the most specific *routable* constant.

        ``%substring%`` literals are never routable (their hash says
        nothing about where matches live).  Exact constants rank
        subject > object > predicate; a ``prefix%`` literal is routable
        through a range query but less specific than any exact
        constant, so it is only chosen when nothing exact exists.
        Raises :class:`ValueError` for patterns with no routable
        constant.
        """
        exact: list[Position] = []
        prefix: list[Position] = []
        for pos in _SPECIFICITY_ORDER:
            term = self.at(pos)
            if not is_ground(term):
                continue
            if isinstance(term, Literal) and term.is_like_pattern:
                continue
            if isinstance(term, Literal) and term.is_prefix_pattern:
                prefix.append(pos)
                continue
            exact.append(pos)
        if exact:
            return exact[0]
        if prefix:
            return prefix[0]
        raise ValueError(f"pattern {self} has no routable constant")

    def routing_constant(self) -> GroundTerm:
        """The constant at :meth:`routing_position`."""
        return self.at(self.routing_position())  # type: ignore[return-value]

    def routing_mode(self) -> str:
        """``"exact"`` for a key lookup, ``"prefix"`` for a range query."""
        term = self.routing_constant()
        if isinstance(term, Literal) and term.is_prefix_pattern:
            return "prefix"
        return "exact"

    # -- matching ---------------------------------------------------------

    def matches(self, triple: Triple,
                bindings: Bindings | None = None) -> dict[Variable, GroundTerm] | None:
        """Match a ground triple, extending optional prior bindings.

        Returns the (possibly extended) bindings dict on success, or
        ``None`` on mismatch.  LIKE literals match by substring;
        repeated variables must bind consistently.

        This runs once per (pattern, candidate triple) on every local
        scan.  Patterns are immutable and long-lived (plans cache
        them), so the shape analysis — which positions are variables,
        which constants are LIKE literals — is done once and cached as
        a compiled matcher closure; the per-triple work is then just
        the constant checks plus one dict build for the bindings.
        """
        if bindings:
            return self._match_generic(triple, bindings)
        try:
            matcher = self._matcher
        except AttributeError:
            matcher = self._compile_matcher()
            object.__setattr__(self, "_matcher", matcher)
        return matcher(triple)

    def _compile_matcher(self):
        """Build the per-triple matcher closure for this pattern."""
        consts: list[tuple[Any, Term, bool]] = []
        var_binds: list[tuple[Variable, Any]] = []
        seen: set[Variable] = set()
        repeated = False
        for name, term in (("subject", self.subject),
                           ("predicate", self.predicate),
                           ("object", self.object)):
            get = attrgetter(name)
            if isinstance(term, Variable):
                if term in seen:
                    repeated = True
                seen.add(term)
                var_binds.append((term, get))
            elif isinstance(term, Literal):
                consts.append((get, term, True))
            else:
                consts.append((get, term, False))
        if repeated:
            # Repeated variables need consistency checks; rare enough
            # to keep on the generic path.
            return lambda triple: self._match_generic(triple, None)
        const_checks = tuple(consts)
        binds = tuple(var_binds)

        def matcher(triple: Triple) -> dict[Variable, GroundTerm] | None:
            for get, term, is_literal in const_checks:
                if is_literal:
                    if not term.matches_value(get(triple)):
                        return None
                elif term != get(triple):
                    return None
            return {var: get(triple) for var, get in binds}

        return matcher

    def _match_generic(self, triple: Triple,
                       bindings: Bindings | None
                       ) -> dict[Variable, GroundTerm] | None:
        """Reference matcher: position loop with consistency checks."""
        result: dict[Variable, GroundTerm] = dict(bindings) if bindings else {}
        for pattern_term, triple_term in (
            (self.subject, triple.subject),
            (self.predicate, triple.predicate),
            (self.object, triple.object),
        ):
            if isinstance(pattern_term, Variable):
                bound = result.get(pattern_term)
                if bound is None:
                    result[pattern_term] = triple_term
                elif bound != triple_term:
                    return None
            elif isinstance(pattern_term, Literal):
                if not pattern_term.matches_value(triple_term):
                    return None
            else:  # URI constant
                if pattern_term != triple_term:
                    return None
        return result

    # -- plumbing ----------------------------------------------------------

    def _key(self) -> tuple:
        return (self.subject, self.predicate, self.object)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TriplePattern):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash(("TriplePattern", self._key()))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:
        return (f"TriplePattern({self.subject!r}, {self.predicate!r}, "
                f"{self.object!r})")

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"


class ConjunctiveQuery:
    """A conjunction of triple patterns with distinguished variables.

    ``SearchFor(x? : (s, p, o))`` is the single-pattern case;
    conjunctive queries "can be resolved in a similar manner, by
    iteratively resolving each triple pattern contained in the query
    and aggregating the sets of results retrieved" (§2.3).

    >>> q = ConjunctiveQuery(
    ...     [TriplePattern(Variable("x"), URI("EMBL#Organism"),
    ...                    Literal("%Aspergillus%"))],
    ...     distinguished=[Variable("x")])
    >>> len(q.patterns)
    1
    """

    __slots__ = ("patterns", "distinguished", "_hash")

    def __init__(self, patterns: Iterable[TriplePattern],
                 distinguished: Iterable[Variable]) -> None:
        patterns = tuple(patterns)
        distinguished = tuple(distinguished)
        if not patterns:
            raise ValueError("a query needs at least one pattern")
        if not distinguished:
            raise ValueError("a query needs at least one distinguished variable")
        all_vars: set[Variable] = set()
        for pattern in patterns:
            all_vars |= pattern.variables()
        missing = [v for v in distinguished if v not in all_vars]
        if missing:
            raise ValueError(
                f"distinguished variable(s) {missing} do not appear in any pattern"
            )
        object.__setattr__(self, "patterns", patterns)
        object.__setattr__(self, "distinguished", distinguished)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("ConjunctiveQuery is immutable")

    def __reduce__(self):
        # Constructor round-trip (drops the lazily-cached hash), so
        # queries pickle cleanly across sharded worker pipes.
        return (ConjunctiveQuery, (self.patterns, self.distinguished))

    def variables(self) -> set[Variable]:
        """Union of all pattern variables."""
        result: set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result

    def is_single_pattern(self) -> bool:
        """True for plain triple-pattern queries."""
        return len(self.patterns) == 1

    def project(self, bindings: Bindings) -> tuple[GroundTerm, ...]:
        """Project a full bindings dict onto the distinguished variables."""
        return tuple(bindings[v] for v in self.distinguished)

    def _key(self) -> tuple:
        return (self.patterns, self.distinguished)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash(("ConjunctiveQuery", self._key()))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:
        return (f"ConjunctiveQuery({list(self.patterns)!r}, "
                f"distinguished={list(self.distinguished)!r})")

    def __str__(self) -> str:
        heads = ", ".join(str(v) for v in self.distinguished)
        body = " AND ".join(str(p) for p in self.patterns)
        return f"SearchFor({heads} : {body})"


def join_bindings(
    left: Iterable[dict[Variable, GroundTerm]],
    right: Iterable[dict[Variable, GroundTerm]],
) -> list[dict[Variable, GroundTerm]]:
    """Natural join of two binding sets on their shared variables.

    The building block of iterative conjunctive-query resolution: the
    bindings retrieved for each pattern are joined pairwise.
    """
    right_list = list(right)
    joined: list[dict[Variable, GroundTerm]] = []
    for lb in left:
        for rb in right_list:
            if all(lb[v] == rb[v] for v in lb.keys() & rb.keys()):
                merged = dict(lb)
                merged.update(rb)
                joined.append(merged)
    return joined
