"""GridVine reproduction: a self-organizing peer data management system.

This package reproduces *Self-Organizing Schema Mappings in the
GridVine Peer Data Management System* (Cudré-Mauroux et al., VLDB
2007).  It follows the paper's three-tier architecture:

``repro.simnet``
    The *Internet layer*: a deterministic discrete-event network
    simulator with configurable wide-area latency models and churn.

``repro.pgrid``
    The *structured overlay layer*: a from-scratch implementation of
    the P-Grid distributed access structure (binary trie, prefix
    routing, replica groups) exposing ``Retrieve(key)`` and
    ``Update(key, value)``.

``repro.mediation`` (with ``rdf``, ``storage``, ``schema``,
``mapping``, ``reformulation``, ``connectivity``, ``selforg``)
    The *semantic mediation layer*: triple storage indexed by subject,
    predicate and object; user-defined schemas; pairwise GAV schema
    mappings; query reformulation by view unfolding; and the
    self-organizing loop (connectivity indicator, automatic mapping
    creation, Bayesian mapping deprecation).

``repro.exec``
    The *streaming operator runtime*: every query executes as a DAG
    of small operators (scans, hash/bound joins, reformulation
    fan-out, project/dedup/union, limit) through which binding
    batches stream as they arrive.  Result limits are pushed into
    distributed execution — a satisfied ``Limit`` cooperatively
    cancels all remaining fetches and fan-out, so selective queries
    stop spending messages the moment they have enough answers.

``repro.engine``
    The *query engine* on top of the mediation layer: an
    invalidation-aware cache of reformulation plans (keyed by
    structural query signature and mapping-graph version) and a
    batched multi-query executor that runs whole batches as one
    shared-scan operator DAG, deduplicating triple-pattern lookups
    across the batch — the hot-path optimisation for repeated /
    multi-user query traffic.

``repro.stats`` / ``repro.optimizer``
    The *statistics and optimizer layer*: every peer incrementally
    summarizes its triple database into a compact versioned synopsis
    (per-predicate counts, distinct values, a top-k value sketch,
    known mapping edges), disseminated for free by piggybacking on
    overlay maintenance traffic and merged with CRDT semantics.  A
    cost-based optimizer turns the gossiped estimates into per-query
    decisions — join order and mode, reformulation pruning by
    expected yield, and the ``strategy="auto"`` choice among
    local/iterative/recursive — recorded on every outcome as a
    ``PlanDecision`` with estimated-vs-actual accounting.

``repro.resilience``
    Scripted churn scenarios on top of everything above: compose
    churn, overlay maintenance, self-organization and a query
    workload into one reproducible run, with recall measured against
    ground truth and per-query message counts kept exact by
    per-operation attribution.  Pairs with the peers' replica-aware
    failover to keep queries answering while peers crash and recover.

``repro.faultlab``
    The *deterministic fault lab* over all of the above: immutable,
    seeded fault schedules (message drops, duplicates, delay jitter,
    reordering, partitions with scheduled heals, crash-restarts)
    injected at the network's hook points, a library of system
    invariant checkers (routing coverage, replica agreement, synopsis
    CRDT convergence, engine cache coherence, recall bounds), and a
    randomized scenario explorer where every failure replays from its
    printed seed and shrinks to a minimal reproducer
    (``python -m repro chaos``).

``repro.datagen``
    Synthetic bioinformatic schemas, records and query workloads used
    by the examples and benchmarks (substituting the EBI/SRS data of
    the original demonstration).

Quickstart::

    from repro import GridVineNetwork
    net = GridVineNetwork.build(num_peers=32, seed=7)
    peer = net.random_peer()
    peer.insert_schema(my_schema)
    peer.insert_triples(my_triples)
    results = peer.search_for(my_query)
"""

from repro.rdf.terms import URI, Literal, Variable
from repro.rdf.triples import Triple
from repro.rdf.patterns import TriplePattern, ConjunctiveQuery
from repro.rdf.parser import parse_search_for
from repro.schema.model import Schema
from repro.mapping.model import MappingKind, PredicateCorrespondence, SchemaMapping
from repro.mediation.network import GridVineNetwork
from repro.mediation.peer import GridVinePeer
from repro.engine.core import QueryEngine

__version__ = "1.1.0"

__all__ = [
    "URI",
    "Literal",
    "Variable",
    "Triple",
    "TriplePattern",
    "ConjunctiveQuery",
    "parse_search_for",
    "Schema",
    "MappingKind",
    "PredicateCorrespondence",
    "SchemaMapping",
    "GridVineNetwork",
    "GridVinePeer",
    "QueryEngine",
    "__version__",
]
