"""Query outcomes: what a ``SearchFor`` returns to the caller.

Besides the result tuples themselves, outcomes carry the measurement
data the paper's evaluation is built on — virtual latency, number of
reformulations explored, per-schema recall accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rdf.patterns import ConjunctiveQuery
from repro.rdf.terms import GroundTerm


@dataclass
class QueryOutcome:
    """Aggregated answer of one ``SearchFor`` invocation.

    ``results`` are projections onto the distinguished variables.
    ``results_by_query`` attributes each result tuple to the (original
    or reformulated) query that produced it — Figure 2's per-schema
    answer sets (``x1 = {EMBL:...}``, ``x2 = NEN...``).
    """

    query: ConjunctiveQuery
    strategy: str
    results: set[tuple[GroundTerm, ...]] = field(default_factory=set)
    results_by_query: dict[ConjunctiveQuery, set[tuple[GroundTerm, ...]]] = (
        field(default_factory=dict)
    )
    reformulations_explored: int = 0
    latency: float = 0.0
    issued_at: float = 0.0
    complete: bool = True
    #: network messages attributable to this query (filled by the
    #: harness from metric deltas; 0 when issued peer-side directly)
    messages: int = 0
    # -- streaming statistics (filled by the operator runtime) ---------
    #: requested result cap (``None`` = unlimited)
    limit: int | None = None
    #: whether the limit was reached (triggering cooperative cancel)
    limit_hit: bool = False
    #: virtual seconds from issue to the first non-empty result batch
    first_result_latency: float | None = None
    #: result rows that arrived after the limit cancelled the pipeline
    #: (received but discarded)
    rows_after_cancel: int = 0
    #: overlay fetches the pipeline actually issued
    fetches_issued: int = 0
    #: overlay fetches skipped because the limit stopped the pipeline
    fetches_skipped: int = 0
    #: per-operator row/fetch counters, in plan order
    operator_stats: list = field(default_factory=list)
    # -- optimizer record (strategy="auto" / optimizing engines) -------
    #: the :class:`~repro.optimizer.core.PlanDecision` behind this
    #: execution — chosen strategy, join mode, scan order, pruning and
    #: the estimated rows/messages to compare against the measured
    #: ``result_count`` / ``messages`` (``None`` on static paths)
    decision: object | None = None

    @property
    def executed_strategy(self) -> str:
        """The strategy that actually ran (``auto`` resolves here)."""
        if self.decision is not None:
            return self.decision.strategy  # type: ignore[attr-defined]
        return self.strategy

    def record(self, produced_by: ConjunctiveQuery,
               rows: set[tuple[GroundTerm, ...]]) -> None:
        """Merge one reformulation's result set into the outcome."""
        self.results |= rows
        bucket = self.results_by_query.setdefault(produced_by, set())
        bucket |= rows

    @property
    def result_count(self) -> int:
        """Number of distinct result tuples."""
        return len(self.results)

    def sorted_results(self) -> list[tuple[GroundTerm, ...]]:
        """Results in deterministic order (for display and tests)."""
        return sorted(self.results)

    @property
    def estimated_messages_saved(self) -> int:
        """Messages the early stop avoided (estimate).

        Scales the query's measured per-fetch message cost by the
        number of fetches the cancelled pipeline skipped.  Zero when
        nothing was skipped or nothing was measured.
        """
        if not self.fetches_skipped or not self.fetches_issued:
            return 0
        return round(self.messages * self.fetches_skipped
                     / self.fetches_issued)
