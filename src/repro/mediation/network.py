"""The whole-system harness: build and drive a GridVine deployment.

:class:`GridVineNetwork` wires the three layers together (event loop,
latency model, P-Grid trie of :class:`GridVinePeer`s) and exposes a
*synchronous* façade over the asynchronous protocol: every call issues
the underlying operation(s) from some origin peer and runs the event
loop until the resulting future resolves.  Examples, tests and
benchmarks all talk to this class.

The harness view is deliberately omniscient (it can read any peer's
state directly) — that power is only used for ground-truth checks and
reporting, never inside protocol logic.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Sequence

from repro.connectivity.indicator import indicator_from_degrees
from repro.mapping.graph import MappingGraph
from repro.mapping.model import (
    MappingKind,
    PredicateCorrespondence,
    SchemaMapping,
)
from repro.mediation.peer import GridVinePeer
from repro.mediation.records import ConnectivityRecord
from repro.mediation.query import QueryOutcome
from repro.pgrid.construction import assign_paths, populate_routing_tables
from repro.rdf.parser import parse_search_for
from repro.rdf.patterns import ConjunctiveQuery
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.simnet.events import EventLoop, Future, SimulationError
from repro.simnet.latency import LatencyModel
from repro.simnet.network import SimNetwork
from repro.util.keys import Key


class GridVineNetwork:
    """A simulated GridVine deployment of N peers."""

    def __init__(self, network: SimNetwork,
                 peers: dict[str, GridVinePeer],
                 rng: random.Random,
                 failover: bool = True,
                 refs_per_level: int = 2) -> None:
        self.network = network
        self.peers = peers
        self.rng = rng
        #: whether peers created later (joins) use replica failover
        self.failover = failover
        #: the deployment's routing-table redundancy target (what
        #: maintenance repairs thin levels back up to)
        self.refs_per_level = refs_per_level
        #: monotonically increasing suffix for attribution tags
        self._op_tags = itertools.count()
        #: lazily-built unified metrics registry (see :attr:`registry`)
        self._registry = None
        #: deployment-wide mapping-event listeners ``fn(action,
        #: mapping)``; every peer's issuing-path hook relays here so a
        #: :class:`~repro.engine.core.QueryEngine` sees mutations from
        #: any origin (including the self-organization loop)
        self._mapping_listeners: list = []
        for peer in self.peers.values():
            peer.mapping_hooks.append(self._emit_mapping_event)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        num_peers: int,
        key_sample: Sequence[Key] | None = None,
        replication: int = 1,
        refs_per_level: int = 2,
        key_bits: int = 128,
        latency: LatencyModel | None = None,
        seed: int = 0,
        timeout: float = 15.0,
        max_retries: int = 2,
        query_timeout: float = 120.0,
        failover: bool = True,
    ) -> "GridVineNetwork":
        """Build a deployment; parameters mirror
        :meth:`repro.pgrid.overlay.PGridOverlay.build` plus
        ``failover`` (replica-aware retry steering, see
        :class:`~repro.pgrid.peer.PGridPeer`)."""
        rng = random.Random(seed)
        network = SimNetwork(
            loop=EventLoop(),
            latency=latency,
            rng=random.Random(rng.random()),
        )
        assignment = assign_paths(
            num_peers,
            key_sample=key_sample,
            replication=replication,
            key_bits=key_bits,
            rng=random.Random(rng.random()),
        )
        peers: dict[str, GridVinePeer] = {}
        for node_id, path in sorted(assignment.items()):
            peer = GridVinePeer(
                node_id, path,
                rng=random.Random(rng.random()),
                timeout=timeout,
                max_retries=max_retries,
                query_timeout=query_timeout,
                failover=failover,
            )
            network.attach(peer)
            peers[node_id] = peer
        populate_routing_tables(
            peers, refs_per_level=refs_per_level,
            rng=random.Random(rng.random()),
        )
        return cls(network, peers, rng, failover=failover,
                   refs_per_level=refs_per_level)

    # ------------------------------------------------------------------
    # Peer access
    # ------------------------------------------------------------------

    @property
    def loop(self) -> EventLoop:
        """The deployment's event loop."""
        return self.network.loop

    def peer_ids(self) -> list[str]:
        """All node ids, sorted."""
        return sorted(self.peers)

    def peer(self, node_id: str) -> GridVinePeer:
        """Look up a peer by id."""
        return self.peers[node_id]

    def random_peer(self) -> GridVinePeer:
        """A uniformly random *online* peer (from the harness RNG).

        Offline peers cannot originate operations — their messages
        would vanish and the whole query would spuriously fail — so
        under churn the draw skips them.  With every peer online the
        draw is identical to the historical uniform choice.
        """
        online = [node_id for node_id in self.peer_ids()
                  if self.network.is_online(node_id)]
        if not online:
            raise SimulationError("no online peer available as origin")
        return self.peers[self.rng.choice(online)]

    def _origin(self, origin: str | None) -> GridVinePeer:
        if origin is None:
            return self.random_peer()
        peer = self.peers[origin]
        if not self.network.is_online(origin):
            raise SimulationError(
                f"origin peer {origin!r} is offline; pick an online "
                "peer or protect the origin from churn"
            )
        return peer

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def join(self, node_id: str) -> GridVinePeer:
        """Add a new GridVine peer to the live deployment."""
        from repro.pgrid.membership import join_network

        def factory(new_id: str, path: Key) -> GridVinePeer:
            peer = GridVinePeer(new_id, path,
                                rng=random.Random(self.rng.random()),
                                failover=self.failover)
            peer.mapping_hooks.append(self._emit_mapping_event)
            return peer

        return join_network(self.network, self.peers, node_id, factory,
                            rng=random.Random(self.rng.random()))

    def leave(self, node_id: str) -> None:
        """Gracefully remove a peer (data handed to its replicas)."""
        from repro.pgrid.membership import graceful_leave
        graceful_leave(self.network, self.peers, node_id)

    def settle(self, max_events: int = 10_000_000) -> None:
        """Run the loop until quiescence (replication, republication
        and other background traffic finishes)."""
        self.loop.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------
    # Mapping events and the query engine
    # ------------------------------------------------------------------

    def _emit_mapping_event(self, action: str, mapping) -> None:
        for listener in self._mapping_listeners:
            listener(action, mapping)

    def add_mapping_listener(self, listener) -> None:
        """Subscribe ``fn(action, mapping)`` to every mapping mutation
        issued anywhere in the deployment (``action`` is one of
        ``"insert"``, ``"remove"``, ``"deprecate"``)."""
        self._mapping_listeners.append(listener)

    def create_engine(self, domain: str | None = None,
                      max_hops: int = 5,
                      cache_capacity: int = 256,
                      optimize: bool = False):
        """A new :class:`~repro.engine.core.QueryEngine` bound to this
        deployment (plan caching + batched execution).

        Pass ``domain`` to backfill the engine's mapping-graph mirror
        from the overlay when mappings were already inserted; engines
        created before any mapping stay in sync automatically.
        ``optimize=True`` enables cost-based reformulation pruning and
        scan ordering from propagated statistics.
        """
        from repro.engine.core import QueryEngine
        engine = QueryEngine(self, domain=domain, max_hops=max_hops,
                             cache_capacity=cache_capacity,
                             optimize=optimize)
        registry = self.registry
        name = "engine"
        if name in registry.view_names():
            index = 2
            while f"engine:{index}" in registry.view_names():
                index += 1
            name = f"engine:{index}"
        engine.stats.register_into(registry, name)
        return engine

    # ------------------------------------------------------------------
    # Synchronous mediation operations
    # ------------------------------------------------------------------

    def _run(self, future: Future):
        return self.loop.run_until_complete(future)

    def insert_schema(self, schema: Schema, origin: str | None = None) -> None:
        """Insert a schema definition from ``origin`` (random default)."""
        self._run(self._origin(origin).insert_schema(schema))

    def insert_schemas(self, schemas: Iterable[Schema],
                       origin: str | None = None) -> None:
        """Insert several schemas."""
        for schema in schemas:
            self.insert_schema(schema, origin)

    def insert_triples(self, triples: Sequence[Triple],
                       origin: str | None = None) -> None:
        """Insert data triples (each indexed under its three keys)."""
        self._run(self._origin(origin).insert_triples(list(triples)))

    def insert_mapping(self, mapping: SchemaMapping,
                       bidirectional: bool = False,
                       origin: str | None = None) -> None:
        """Insert a schema mapping."""
        self._run(self._origin(origin).insert_mapping(
            mapping, bidirectional=bidirectional
        ))

    def remove_mapping(self, mapping: SchemaMapping,
                       origin: str | None = None) -> None:
        """Remove a schema mapping entirely."""
        self._run(self._origin(origin).remove_mapping(mapping))

    def deprecate_mapping(self, mapping: SchemaMapping,
                          origin: str | None = None) -> None:
        """Flag a mapping as deprecated."""
        self._run(self._origin(origin).deprecate_mapping(mapping))

    def create_mapping(
        self,
        source: Schema,
        target: Schema,
        attribute_pairs: Iterable[tuple[str, str]],
        kind: MappingKind = MappingKind.EQUIVALENCE,
        provenance: str = "user",
        confidence: float = 1.0,
        origin: str | None = None,
    ) -> SchemaMapping:
        """Convenience: build a mapping from attribute-name pairs and
        insert it (directed, source -> target)."""
        creator = self._origin(origin)
        correspondences = [
            PredicateCorrespondence(source.predicate(a), target.predicate(b),
                                    kind=kind)
            for a, b in attribute_pairs
        ]
        mapping = SchemaMapping(
            creator.mint_guid(f"map:{source.name}->{target.name}"),
            source.name,
            target.name,
            correspondences,
            provenance=provenance,
            confidence=confidence,
        )
        self._run(creator.insert_mapping(mapping))
        return mapping

    # ------------------------------------------------------------------
    # Scenarios (resilience experiments)
    # ------------------------------------------------------------------

    def run_scenario(self, panel, spec=None, origin: str | None = None,
                     domain: str = "default"):
        """Run a scripted churn scenario against *this* deployment.

        ``panel`` is a list of ``(query, ground_truth_subjects)`` pairs
        (see :func:`repro.resilience.scenario.ground_truth_panel`);
        ``spec`` a :class:`~repro.resilience.scenario.ScenarioSpec`
        whose runtime knobs (churn, maintenance, workload pacing)
        apply — its deployment fields are ignored since the network
        already exists.  Returns the
        :class:`~repro.resilience.scenario.ScenarioReport`.

        To build deployment *and* corpus from the spec in one go, use
        :meth:`repro.resilience.scenario.ScenarioRunner.from_spec`.
        """
        from repro.resilience.scenario import ScenarioRunner
        return ScenarioRunner(self, panel, spec, origin=origin,
                              domain=domain).run()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def search_for(self, query: ConjunctiveQuery | str,
                   strategy: str = "iterative",
                   max_hops: int = 5,
                   origin: str | None = None,
                   limit: int | None = None) -> QueryOutcome:
        """Issue a ``SearchFor`` and block until its outcome.

        ``query`` may be a parsed query or the paper's surface syntax,
        e.g. ``"SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"``.

        ``strategy`` is one of:

        ``"local"``
            No reformulation — only data under the query's own schema.
        ``"iterative"``
            The origin fetches mapping records itself and issues every
            reformulation it can derive (§4).
        ``"recursive"``
            Reformulation is delegated hop-by-hop to the peers holding
            the mappings (§4).

        ``limit`` is pushed *into* the distributed execution: the
        streaming pipeline stops issuing pattern fetches and
        reformulation fan-out the moment ``limit`` distinct rows have
        arrived (cooperative cancellation), and the outcome's
        streaming statistics report the fetches skipped and the
        estimated messages saved.

        For repeated / high-volume workloads, prefer an engine from
        :meth:`create_engine`: it caches reformulation plans across
        calls and dedupes pattern lookups within a batch.
        """
        if isinstance(query, str):
            query = parse_search_for(query)
        origin_peer = self._origin(origin)
        op_tag = f"searchfor:{next(self._op_tags)}"
        metrics = self.network.metrics
        metrics.begin_operation(op_tag)
        tracer = self.network.tracer
        root = None
        if tracer is not None:
            # One trace per query, trace_id == op_tag: the trace's
            # message spans cover exactly the messages the metrics
            # attribute to the same tag.  The root wraps only the
            # synchronous kickoff, the same discipline as the
            # attribution scope below.
            root = tracer.start_trace(op_tag, op_tag,
                                      peer=origin_peer.node_id,
                                      start=self.network.loop.now,
                                      strategy=strategy)
        try:
            # The synchronous kickoff runs inside the attribution
            # scope; every asynchronous continuation inherits the tag
            # through the messages themselves, so concurrent
            # maintenance / churn / replication traffic is never
            # billed to this query.
            with self.network.operation(op_tag):
                if root is not None:
                    with tracer.activate(tracer.context_of(root)):
                        future = origin_peer.search_for(
                            query, strategy=strategy, max_hops=max_hops,
                            limit=limit,
                        )
                else:
                    future = origin_peer.search_for(
                        query, strategy=strategy, max_hops=max_hops,
                        limit=limit,
                    )
            outcome = self._run(future)
            outcome.messages = metrics.operation_messages(op_tag)
            if root is not None:
                tracer.finish(root, self.network.loop.now,
                              messages=outcome.messages)
            return outcome
        finally:
            metrics.end_operation(op_tag)

    def run_batch(self, peer, queries, plans, limit: int | None = None,
                  optimizer=None):
        """Run a pre-planned engine batch at *peer*, with attribution.

        The transport seam under
        :meth:`repro.engine.core.QueryEngine.execute_batch`: the
        engine owns planning (its mapping-graph mirror, plan cache and
        pruning), while this method owns everything transport-coupled
        — the ``batch:<n>`` operation tag, the trace root, and driving
        the loop to completion.  A sharded deployment swaps in
        :class:`repro.mediation.sharded.ShardedGridVine`'s
        ``run_batch``, which routes the same call through
        ``ShardedTransport.submit`` instead; the engine never notices.

        Returns ``(outcomes, fetch_stats, messages)``.
        """
        metrics = self.network.metrics
        # Per-operation attribution: the batch's pattern fetches (and
        # everything they cause downstream) carry this tag, so the
        # count stays exact even with maintenance or churn traffic
        # running in the background.
        op_tag = f"batch:{next(self._op_tags)}"
        metrics.begin_operation(op_tag)
        transport = self.network
        tracer = transport.tracer
        root = None
        if tracer is not None:
            # Root span of the batch's trace.  trace_id == op_tag, so
            # the trace's message spans correspond 1:1 with the
            # messages the metrics attribute to the same tag (the
            # exact-coverage invariant the obs tests pin).  The root
            # wraps only the synchronous kickoff below — exactly the
            # op_tag scope — so concurrent background traffic stays
            # outside the trace.
            root = tracer.start_trace(op_tag, op_tag, peer=peer.node_id,
                                      start=transport.loop.now,
                                      queries=len(queries))
        try:
            with transport.operation(op_tag):
                if root is not None:
                    with tracer.activate(tracer.context_of(root)):
                        batch_future = peer.execute_planned_batch(
                            queries, plans, limit=limit,
                            optimizer=optimizer)
                else:
                    batch_future = peer.execute_planned_batch(
                        queries, plans, limit=limit, optimizer=optimizer)
            outcomes, fetch_stats = self.loop.run_until_complete(
                batch_future
            )
            messages = metrics.operation_messages(op_tag)
            if root is not None:
                tracer.finish(root, transport.loop.now,
                              messages=messages)
        finally:
            metrics.end_operation(op_tag)
        return outcomes, fetch_stats, messages

    # ------------------------------------------------------------------
    # Connectivity (§3.1) and graph reconstruction
    # ------------------------------------------------------------------

    def connectivity_records(self, domain: str = "default",
                             origin: str | None = None) -> list[ConnectivityRecord]:
        """Fetch the domain's connectivity records through the overlay."""
        records = self._run(self._origin(origin).fetch_connectivity(domain))
        return sorted(records, key=lambda r: r.schema_name)

    def connectivity_indicator(self, domain: str = "default",
                               origin: str | None = None) -> float:
        """The indicator ``ci`` computed from published degree records."""
        records = self.connectivity_records(domain, origin)
        return indicator_from_degrees([r.degree_pair for r in records])

    def fetch_mappings(self, schema_name: str,
                       include_deprecated: bool = False,
                       origin: str | None = None) -> list[SchemaMapping]:
        """Active outgoing mappings of a schema, via the overlay."""
        return self._run(self._origin(origin).fetch_mappings(
            schema_name, include_deprecated=include_deprecated
        ))

    def mapping_graph(self, domain: str = "default",
                      include_deprecated: bool = False,
                      origin: str | None = None) -> MappingGraph:
        """Reconstruct the mapping graph by crawling schema key spaces.

        This is exactly the "repeatedly crawling a decentralized ...
        graph" the indicator exists to avoid; it is provided for ground
        truth in tests and experiments.
        """
        graph = MappingGraph()
        for record in self.connectivity_records(domain, origin):
            graph.add_schema(record.schema_name)
        for schema_name in list(graph.schemas()):
            for mapping in self.fetch_mappings(
                schema_name, include_deprecated=include_deprecated,
                origin=origin,
            ):
                graph.add(mapping)
        return graph

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def total_triples_stored(self) -> int:
        """Sum of local triple-database sizes (includes replication)."""
        return sum(peer.db.count() for peer in self.peers.values())

    def metrics_snapshot(self) -> dict:
        """Network counters, for bench reporting."""
        return self.network.metrics.snapshot()

    # ------------------------------------------------------------------
    # Observability (see repro.obs)
    # ------------------------------------------------------------------

    @property
    def registry(self):
        """The deployment's unified metrics registry (lazily built).

        The transport's :class:`~repro.simnet.metrics.NetworkMetrics`
        is registered as the ``network`` view on first access; engines
        created via :meth:`create_engine` add ``engine`` views.  Views
        snapshot the live stat bags on demand — nothing on the message
        path changes.
        """
        registry = self._registry
        if registry is None:
            from repro.obs.registry import MetricsRegistry
            registry = self._registry = MetricsRegistry()
            self.network.metrics.register_into(registry)
        return registry

    def install_tracer(self, seed: int = 0, capacity: int = 200_000):
        """Install a span recorder on the transport and return it.

        Every query issued afterwards produces one causal trace (root
        span per ``search_for`` / engine batch, hop span per attributed
        message).  The tracer also appears as the ``tracer`` registry
        view so snapshots report buffer occupancy.
        """
        from repro.obs.tracer import Tracer
        tracer = Tracer(seed=seed, capacity=capacity)
        self.network.install_tracer(tracer)
        self.registry.register_view("tracer", tracer.snapshot)
        return tracer

    def trace_records(self) -> list[dict]:
        """All recorded span/event dicts in deterministic order."""
        tracer = self.network.tracer
        if tracer is None:
            return []
        from repro.obs.tracer import merge_records
        return merge_records([tracer.records])

    def export_trace(self, path: str) -> int:
        """Write recorded spans/events as sorted JSONL; returns count."""
        from repro.obs.tracer import export_records_jsonl
        return export_records_jsonl(self.trace_records(), path)
