"""Typed records stored in the overlay by the mediation layer.

The overlay stores opaque values; the mediation layer wraps everything
it publishes in one of these record types so a peer receiving an
``insert`` can dispatch on the record kind (triples feed the local
triple database, mapping records feed the mapping registry and trigger
connectivity republication, and so on).

All records are immutable value objects: overlay ``remove`` operations
match stored values by equality, so replacing a record means removing
the exact old value and inserting the new one.
"""

from __future__ import annotations

from repro.mapping.model import SchemaMapping
from repro.rdf.triples import Triple
from repro.schema.model import Schema


class TripleRecord:
    """A data triple published under one of its three position keys."""

    __slots__ = ("triple",)

    def __init__(self, triple: Triple) -> None:
        object.__setattr__(self, "triple", triple)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("TripleRecord is immutable")

    def __reduce__(self):
        return (TripleRecord, (self.triple,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TripleRecord):
            return NotImplemented
        return self.triple == other.triple

    def __hash__(self) -> int:
        return hash(("TripleRecord", self.triple))

    def __repr__(self) -> str:
        return f"TripleRecord({self.triple!r})"


class SchemaRecord:
    """A schema definition published at ``Hash(Schema Name)``."""

    __slots__ = ("schema",)

    def __init__(self, schema: Schema) -> None:
        object.__setattr__(self, "schema", schema)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("SchemaRecord is immutable")

    def __reduce__(self):
        return (SchemaRecord, (self.schema,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchemaRecord):
            return NotImplemented
        return self.schema == other.schema

    def __hash__(self) -> int:
        return hash(("SchemaRecord", self.schema))

    def __repr__(self) -> str:
        return f"SchemaRecord({self.schema.name!r})"


class MappingRecord:
    """A directed mapping stored at its *source* schema's key space.

    "Schema mappings are inserted at the key space corresponding to the
    source schema at the overlay layer" (§3).
    """

    __slots__ = ("mapping",)

    def __init__(self, mapping: SchemaMapping) -> None:
        object.__setattr__(self, "mapping", mapping)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("MappingRecord is immutable")

    def __reduce__(self):
        return (MappingRecord, (self.mapping,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MappingRecord):
            return NotImplemented
        return self.mapping == other.mapping

    def __hash__(self) -> int:
        return hash(("MappingRecord", self.mapping))

    def __repr__(self) -> str:
        return f"MappingRecord({self.mapping.mapping_id!r})"


class IncomingMappingRecord:
    """An incoming-edge marker stored at the *target* schema's key space.

    The paper has each schema peer track both its in- and out-degree
    (§3.1).  Out-degree is derivable from the mapping records stored
    locally; in-degree requires the target's peer to learn about the
    edge — this marker is that notification.  It carries the full
    mapping so deprecation can be reflected on both sides.
    """

    __slots__ = ("mapping",)

    def __init__(self, mapping: SchemaMapping) -> None:
        object.__setattr__(self, "mapping", mapping)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("IncomingMappingRecord is immutable")

    def __reduce__(self):
        return (IncomingMappingRecord, (self.mapping,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IncomingMappingRecord):
            return NotImplemented
        return self.mapping == other.mapping

    def __hash__(self) -> int:
        return hash(("IncomingMappingRecord", self.mapping))

    def __repr__(self) -> str:
        return f"IncomingMappingRecord({self.mapping.mapping_id!r})"


class ConnectivityRecord:
    """``{Schema, InDegree, OutDegree}`` published at ``Hash(Domain)``.

    The exact payload of the paper's ``Update(Domain Connectivity)``
    (§3.1).  The domain peer aggregates these into the joint degree
    distribution ``p_jk`` behind the connectivity indicator.
    """

    __slots__ = ("schema_name", "in_degree", "out_degree")

    def __init__(self, schema_name: str, in_degree: int, out_degree: int) -> None:
        if in_degree < 0 or out_degree < 0:
            raise ValueError("degrees must be non-negative")
        object.__setattr__(self, "schema_name", schema_name)
        object.__setattr__(self, "in_degree", in_degree)
        object.__setattr__(self, "out_degree", out_degree)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("ConnectivityRecord is immutable")

    def __reduce__(self):
        return (ConnectivityRecord, (self.schema_name, self.in_degree, self.out_degree))

    @property
    def degree_pair(self) -> tuple[int, int]:
        """``(in_degree, out_degree)`` for the indicator computation."""
        return (self.in_degree, self.out_degree)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConnectivityRecord):
            return NotImplemented
        return (self.schema_name, self.in_degree, self.out_degree) == (
            other.schema_name, other.in_degree, other.out_degree
        )

    def __hash__(self) -> int:
        return hash(("ConnectivityRecord", self.schema_name,
                     self.in_degree, self.out_degree))

    def __repr__(self) -> str:
        return (f"ConnectivityRecord({self.schema_name!r}, "
                f"in={self.in_degree}, out={self.out_degree})")
