"""Mediation on the sharded transport: GridVine queries at scale.

:class:`ShardedGridVine` is the scale-out twin of
:class:`~repro.mediation.network.GridVineNetwork`: it exposes the same
query surface (``search_for``, the :meth:`run_batch` seam a
:class:`~repro.engine.core.QueryEngine` executes through) over a
:class:`~repro.simnet.shard.ShardedTransport` instead of the
single-loop :class:`~repro.simnet.network.SimNetwork`.

The division of labour mirrors the in-process harness exactly:

* the peer-side entry points (``GridVinePeer.search_for``,
  ``GridVinePeer.execute_planned_batch``) run *on the owning shard* —
  the controller reaches them through
  :meth:`~repro.simnet.shard.ShardedTransport.submit`, never through a
  direct method call, so inline and forked workers behave identically;
* per-query message attribution uses the transport's ``op:<ref>``
  scopes (``attribute=True``), the sharded equivalent of the
  ``searchfor:<n>`` / ``batch:<n>`` operation tags — counts are summed
  across every shard the query's causal chain touched;
* engine planning stays controller-side: the engine's mapping-graph
  mirror is backfilled by replaying the deployment's known mappings
  through :meth:`add_mapping_listener`, not by crawling the overlay
  (peers live on the shards; in process mode, in other processes).

Because worker processes exchange submissions and summaries over
pipes, everything crossing the boundary (queries, plans, outcomes)
must be picklable — which the mediation data model already is (frozen
value objects throughout).
"""

from __future__ import annotations

from typing import Any

from repro.simnet.events import SimulationError
from repro.simnet.shard import ShardedTransport


def outcome_passthrough(outcome: Any) -> Any:
    """Ship the full :class:`QueryOutcome` back to the controller."""
    return outcome


def batch_passthrough(result: Any) -> Any:
    """Ship an ``(outcomes, fetch_stats)`` batch result unchanged."""
    return result


class _PeerHandle:
    """Controller-side stand-in for a peer living on a shard.

    Carries exactly what the engine needs (an origin id for
    submissions and trace roots); it deliberately has no behaviour —
    calling through it would bypass the transport boundary.
    """

    __slots__ = ("node_id", "optimizer")

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        #: engines ask the origin peer for its cost-based optimizer;
        #: peer state is not reachable from the controller, so
        #: optimizing engines are rejected in :meth:`run_batch`
        self.optimizer = None


class ShardedGridVine:
    """Query facade over a mediation deployment on shards.

    Parameters
    ----------
    transport:
        The :class:`ShardedTransport` holding the deployment's
        :class:`~repro.mediation.peer.GridVinePeer` s.
    mappings:
        The deployment's known schema mappings (both directions of
        every bidirectional insert).  Replayed as ``"insert"`` events
        to every registered mapping listener, so engines created
        against this facade start with a complete mirror.
    """

    def __init__(self, transport: ShardedTransport,
                 mappings: tuple | list = ()) -> None:
        self.transport = transport
        self._mappings = list(mappings)
        self._listeners: list = []

    # -- the GridVineNetwork surface engines and harnesses consume -----

    def add_mapping_listener(self, listener) -> None:
        """Subscribe ``fn(action, mapping)``; immediately replays the
        deployment's known mappings as ``"insert"`` events (the
        sharded substitute for ``sync_from_overlay``)."""
        self._listeners.append(listener)
        for mapping in self._mappings:
            listener("insert", mapping)

    def _origin(self, origin: str | None) -> _PeerHandle:
        if origin is None:
            raise SimulationError(
                "sharded deployments need an explicit origin peer")
        if origin not in self.transport._owner_of:
            raise SimulationError(f"unknown origin peer {origin!r}")
        return _PeerHandle(origin)

    def create_engine(self, max_hops: int = 5,
                      cache_capacity: int = 256):
        """A :class:`~repro.engine.core.QueryEngine` bound to this
        sharded deployment (mirror backfilled from the deployment's
        mappings; batches execute through :meth:`run_batch`)."""
        from repro.engine.core import QueryEngine

        return QueryEngine(self, domain=None, max_hops=max_hops,
                           cache_capacity=cache_capacity)

    # -- transport-boundary execution ----------------------------------

    def search_for(self, query, strategy: str = "iterative",
                   max_hops: int = 5, origin: str | None = None,
                   limit: int | None = None):
        """Issue one ``SearchFor`` from ``origin`` and run the shards
        to quiescence; returns the :class:`QueryOutcome` with
        ``messages`` filled from the merged per-shard attribution."""
        peer = self._origin(origin)
        ref = self.transport.submit(
            peer.node_id, "search_for", query, strategy, max_hops, limit,
            summarize=outcome_passthrough, attribute=True)
        self.transport.run_until_quiescent()
        outcome = self.transport.completed[ref]
        outcome.messages = self._operation_messages(ref)
        return outcome

    def run_batch(self, peer, queries, plans, limit: int | None = None,
                  optimizer: Any = None):
        """Execute a pre-planned engine batch at ``peer``'s shard.

        The sharded implementation of the ``run_batch`` seam under
        :meth:`repro.engine.core.QueryEngine.execute_batch`: the
        planned batch crosses the transport boundary as one submitted
        ``execute_planned_batch`` operation, runs concurrently with
        whatever else is queued for the window, and reports
        ``(outcomes, fetch_stats, messages)`` exactly like the
        in-process seam.
        """
        if optimizer is not None:
            raise SimulationError(
                "cost-based optimization needs peer-side state and is "
                "not available through the sharded boundary")
        ref = self.transport.submit(
            peer.node_id, "execute_planned_batch", list(queries),
            [list(plan) for plan in plans], limit,
            summarize=batch_passthrough, attribute=True)
        self.transport.run_until_quiescent()
        outcomes, fetch_stats = self.transport.completed[ref]
        return outcomes, fetch_stats, self._operation_messages(ref)

    def _operation_messages(self, ref: int) -> int:
        merged = self.transport.metrics_snapshot()
        return merged["operations"].get(f"op:{ref}", 0)

    # -- reporting ------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Merged per-shard metrics (see
        :meth:`ShardedTransport.metrics_snapshot`)."""
        return self.transport.metrics_snapshot()
