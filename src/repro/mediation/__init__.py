"""The semantic mediation layer: GridVine peers and the network harness.

This package ties everything together.  A
:class:`~repro.mediation.peer.GridVinePeer` *is* a P-Grid peer (it
inherits the overlay protocol) extended with the mediation-layer
operations of the paper:

* ``Update(data)`` — :meth:`GridVinePeer.insert_triple` indexes the
  triple under the order-preserving hashes of its subject, predicate
  and object (three overlay updates);
* ``Update(schema)`` — :meth:`GridVinePeer.insert_schema` stores the
  schema definition at ``Hash(Schema Name)``;
* ``Update(mapping)`` — :meth:`GridVinePeer.insert_mapping` stores the
  mapping at the source schema's key space (both key spaces for
  bidirectional mappings) plus an incoming-edge marker at the target
  for degree accounting;
* ``Update(connectivity)`` — schema peers republish
  ``(Schema, InDegree, OutDegree)`` under ``Hash(Domain)`` whenever
  their mapping records change;
* ``SearchFor(query)`` — :meth:`GridVinePeer.search_for` resolves
  triple-pattern and conjunctive queries, optionally reformulating
  them across the mapping network with the iterative or recursive
  strategy of §4.

:class:`~repro.mediation.network.GridVineNetwork` builds a whole
simulated deployment (event loop + latency model + N peers) and offers
a synchronous façade used by the examples and benchmarks.  Mapping
mutations additionally fire issuing-path hooks
(:attr:`GridVinePeer.mapping_hooks`, relayed deployment-wide by
``GridVineNetwork.add_mapping_listener``) — the change feed that keeps
a :class:`~repro.engine.core.QueryEngine`'s plan cache and mapping
mirror consistent; ``GridVineNetwork.create_engine`` builds one.
"""

from repro.mediation.records import (
    ConnectivityRecord,
    IncomingMappingRecord,
    MappingRecord,
    SchemaRecord,
    TripleRecord,
)
from repro.mediation.keys import domain_key, schema_key, term_key, triple_keys
from repro.mediation.query import QueryOutcome
from repro.mediation.peer import GridVinePeer
from repro.mediation.network import GridVineNetwork

__all__ = [
    "TripleRecord",
    "SchemaRecord",
    "MappingRecord",
    "IncomingMappingRecord",
    "ConnectivityRecord",
    "term_key",
    "triple_keys",
    "schema_key",
    "domain_key",
    "QueryOutcome",
    "GridVinePeer",
    "GridVineNetwork",
]
