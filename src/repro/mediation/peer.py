"""The GridVine peer: P-Grid node + semantic mediation layer.

A :class:`GridVinePeer` extends :class:`~repro.pgrid.peer.PGridPeer`
with the paper's mediation operations:

* ``Update(data)`` / ``Update(schema)`` / ``Update(mapping)`` /
  ``Update(connectivity)`` — all reduce to overlay ``Update(key,
  value)`` calls with typed records and the key derivations of
  :mod:`repro.mediation.keys`;
* ``SearchFor(query)`` — triple-pattern and conjunctive queries with
  three execution strategies:

  ``"local"``
      No reformulation: resolve the query's patterns by overlay lookup
      and join at the origin.

  ``"iterative"``
      The origin "iteratively looks for paths of mappings and
      reformulates the query by itself" (§4): it retrieves the schema
      key spaces it learns about, translates the query through the
      mappings found there, and issues every distinct reformulation.

  ``"recursive"``
      "The successive reformulations are delegated to intermediate
      peers" (§4): the query travels to the peer holding the source
      schema's mappings; that peer reformulates with its local
      mappings, forwards to the next schema peers, executes the query
      it received, and streams results straight back to the origin.
      Termination uses spawn-count accounting (each request reports
      how many sub-requests it forwarded), with a virtual-time timeout
      as a safety net against message loss under churn.

Degree bookkeeping (§3.1) is event-driven: whenever mapping records at
a schema's key space change, the peer holding that schema definition
recomputes ``(InDegree, OutDegree)`` over *active* mappings and
republishes a :class:`~repro.mediation.records.ConnectivityRecord`
under ``Hash(Domain)``.  The domain peer keeps one record per schema
(last-writer-wins), so replicas republishing concurrently converge.
"""

from __future__ import annotations

import random
from typing import Any

from repro.mapping.model import SchemaMapping
from repro.mapping.unfolding import query_schemas, translate_query
from repro.mediation.keys import domain_key, schema_key, term_key, triple_keys
from repro.util.hashing import prefix_interval
from repro.util.keys import covering_prefixes
from repro.mediation.query import QueryOutcome
from repro.mediation.records import (
    ConnectivityRecord,
    IncomingMappingRecord,
    MappingRecord,
    SchemaRecord,
    TripleRecord,
)
from repro.pgrid.peer import PGridPeer
from repro.rdf.patterns import (
    ConjunctiveQuery,
    TriplePattern,
    join_bindings,
)
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.simnet.events import Future, gather
from repro.simnet.network import Message
from repro.storage.triplestore import TripleStore
from repro.util.guid import mint_guid
from repro.util.keys import Key

#: How long (virtual seconds) a schema peer remembers the queries it
#: has already processed for one recursive task.
_REFO_SEEN_TTL = 600.0


class GridVinePeer(PGridPeer):
    """A peer participating in all three GridVine layers."""

    def __init__(
        self,
        node_id: str,
        path: Key,
        rng: random.Random | None = None,
        timeout: float = 15.0,
        max_retries: int = 2,
        query_timeout: float = 120.0,
        failover: bool = True,
    ) -> None:
        super().__init__(node_id, path, rng=rng, timeout=timeout,
                         max_retries=max_retries, failover=failover)
        self.query_timeout = query_timeout
        #: conjunctive-join execution mode: ``"parallel"`` resolves all
        #: patterns independently and joins at the origin (the paper's
        #: "iteratively resolving each triple pattern ... and
        #: aggregating"); ``"bound"`` resolves patterns sequentially,
        #: substituting earlier bindings into later patterns (a bound
        #: join — ships far fewer tuples on selective queries)
        self.join_mode = "parallel"
        #: bound-join fan-out cap: above this many distinct
        #: substitutions a pattern is fetched unbound instead
        self.bound_join_fanout_cap = 24
        #: local triple database DB_p (triples routed here by any key)
        self.db = TripleStore()
        #: schema definitions stored in this peer's key space
        self.local_schemas: dict[str, Schema] = {}
        #: outgoing mapping records stored here, by mapping id
        self.local_mappings: dict[str, SchemaMapping] = {}
        #: incoming-edge markers stored here, by mapping id
        self.incoming_mappings: dict[str, SchemaMapping] = {}
        #: last connectivity record published per schema (suppresses
        #: redundant republication)
        self._published_connectivity: dict[str, ConnectivityRecord] = {}
        #: recursive-strategy origin-side task state
        self._refo_tasks: dict[str, _RecursiveTask] = {}
        #: recursive-strategy handler-side dedup sets, per task
        self._refo_seen: dict[str, set[ConjunctiveQuery]] = {}
        #: mapping-event hooks ``fn(action, mapping)`` fired on the
        #: issuing path of insert/remove/deprecate — the versioning
        #: signal consumed by :mod:`repro.engine` plan caches
        self.mapping_hooks: list = []

    # ------------------------------------------------------------------
    # Identifier minting
    # ------------------------------------------------------------------

    def mint_guid(self, local_identifier: str) -> str:
        """A globally unique id: ``pi(p)`` + hash of the local name."""
        return mint_guid(self.path, local_identifier)

    # ------------------------------------------------------------------
    # Mediation-layer updates
    # ------------------------------------------------------------------

    def insert_triple(self, triple: Triple) -> Future:
        """``Update(t)``: three overlay updates, one per position key."""
        record = TripleRecord(triple)
        return gather([
            self.update(key, record) for key in triple_keys(triple)
        ])

    def insert_triples(self, triples: list[Triple]) -> Future:
        """Insert a batch of triples (3 x len(triples) overlay updates)."""
        return gather([self.insert_triple(t) for t in triples])

    def remove_triple(self, triple: Triple) -> Future:
        """Delete a triple from all three position key spaces."""
        record = TripleRecord(triple)
        return gather([
            self.update(key, record, action="remove")
            for key in triple_keys(triple)
        ])

    def insert_schema(self, schema: Schema) -> Future:
        """``Update(Schema)``: definition stored at ``Hash(Schema Name)``."""
        return self.update(schema_key(schema.name), SchemaRecord(schema))

    def _fire_mapping_event(self, action: str,
                            mapping: SchemaMapping) -> None:
        """Notify :attr:`mapping_hooks` of one issued mapping mutation.

        Fired on the *issuing* path (not on record replication), so
        every logical operation produces exactly one event per
        direction, in deterministic issuing order.
        """
        for hook in self.mapping_hooks:
            hook(action, mapping)

    def _insert_mapping_records(self, mapping: SchemaMapping) -> Future:
        return gather([
            self.update(schema_key(mapping.source_schema),
                        MappingRecord(mapping)),
            self.update(schema_key(mapping.target_schema),
                        IncomingMappingRecord(mapping)),
        ])

    def _remove_mapping_records(self, mapping: SchemaMapping) -> Future:
        return gather([
            self.update(schema_key(mapping.source_schema),
                        MappingRecord(mapping), action="remove"),
            self.update(schema_key(mapping.target_schema),
                        IncomingMappingRecord(mapping), action="remove"),
        ])

    def insert_mapping(self, mapping: SchemaMapping,
                       bidirectional: bool = False) -> Future:
        """``Update(Schema Mapping)``.

        The mapping lands at the source schema's key space; an
        incoming-edge marker lands at the target's so that peer can
        account for its in-degree.  A bidirectional mapping is the
        pair of directed mappings (the reverse direction is derived
        from the equivalence correspondences) — "or at the key spaces
        corresponding to both schemas if the mapping is bidirectional".
        """
        self._fire_mapping_event("insert", mapping)
        ops = [self._insert_mapping_records(mapping)]
        if bidirectional:
            reverse = mapping.reversed()
            self._fire_mapping_event("insert", reverse)
            ops.append(self._insert_mapping_records(reverse))
        return gather(ops)

    def remove_mapping(self, mapping: SchemaMapping) -> Future:
        """Delete a directed mapping's record and its incoming marker."""
        self._fire_mapping_event("remove", mapping)
        return self._remove_mapping_records(mapping)

    def replace_mapping(self, old: SchemaMapping,
                        new: SchemaMapping) -> Future:
        """Atomically-ish swap a mapping record (e.g. to deprecate it).

        Issues the removal and the insertion together; both key spaces
        are updated so degree accounting stays consistent.
        """
        return gather([
            self.remove_mapping(old),
            self.insert_mapping(new),
        ])

    def deprecate_mapping(self, mapping: SchemaMapping) -> Future:
        """Mark a mapping deprecated (§3.2): it keeps existing but is
        ignored for reformulation and connectivity accounting."""
        deprecated = mapping.with_deprecated(True)
        self._fire_mapping_event("deprecate", deprecated)
        return gather([
            self._remove_mapping_records(mapping),
            self._insert_mapping_records(deprecated),
        ])

    # ------------------------------------------------------------------
    # Mediation-layer reads
    # ------------------------------------------------------------------

    def fetch_schema_space(self, schema_name: str) -> Future:
        """Retrieve every record at ``Hash(schema_name)``.

        Resolves to the raw record list (schema definition, outgoing
        mapping records and incoming markers).
        """
        out: Future = Future()
        fut = self.retrieve(schema_key(schema_name))
        fut.add_done_callback(
            lambda f: out.set_result(list(f.result().values or []))
        )
        return out

    def fetch_mappings(self, schema_name: str,
                       include_deprecated: bool = False) -> Future:
        """Active outgoing mappings of a schema, via the overlay."""
        out: Future = Future()

        def _on_records(f: Future) -> None:
            mappings = [
                r.mapping for r in f.result()
                if isinstance(r, MappingRecord)
                and (include_deprecated or r.mapping.active)
            ]
            out.set_result(sorted(mappings, key=lambda m: m.mapping_id))

        self.fetch_schema_space(schema_name).add_done_callback(_on_records)
        return out

    def fetch_connectivity(self, domain: str) -> Future:
        """All :class:`ConnectivityRecord`s of a domain."""
        out: Future = Future()
        fut = self.retrieve(domain_key(domain))
        fut.add_done_callback(lambda f: out.set_result([
            r for r in (f.result().values or [])
            if isinstance(r, ConnectivityRecord)
        ]))
        return out

    # ------------------------------------------------------------------
    # SearchFor
    # ------------------------------------------------------------------

    def search_for(self, query: ConjunctiveQuery, strategy: str = "iterative",
                   max_hops: int = 5) -> Future:
        """Resolve a query; resolves to a :class:`QueryOutcome`.

        ``strategy`` selects where reformulation runs: ``"local"``
        (no reformulation), ``"iterative"`` (the origin walks mapping
        paths itself) or ``"recursive"`` (reformulation is delegated
        to the schema peers) — see the module docstring for the
        paper's definitions.  Conjunctive joins additionally honour
        :attr:`join_mode` (``"parallel"`` or ``"bound"``).

        ``max_hops`` bounds the length of mapping paths explored (the
        recursive strategy's TTL / the iterative strategy's BFS depth).
        """
        for pattern in query.patterns:
            pattern.routing_position()  # raises early on unroutable patterns
        future: Future = Future()
        if strategy == "local":
            outcome = QueryOutcome(query=query, strategy="local",
                                   issued_at=self.loop.now)

            def _on_rows(f: Future) -> None:
                outcome.record(query, f.result())
                outcome.latency = self.loop.now - outcome.issued_at
                future.set_result(outcome)

            self._execute_query(query).add_done_callback(_on_rows)
        elif strategy == "iterative":
            _IterativeTask(self, query, max_hops, future).start()
        elif strategy == "recursive":
            self._start_recursive(query, max_hops, future)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        return future

    # -- data-layer execution ------------------------------------------

    def _search_pattern(self, pattern: TriplePattern) -> Future:
        """Route one pattern to its key space; resolves to bindings.

        Exact routing constants resolve with a single ``search`` op at
        the constant's key space.  A ``prefix%`` routing constant has
        no single key; its matches occupy a contiguous key *interval*
        (order-preserving hash), which is fetched with overlay range
        queries over the interval's covering prefixes and matched
        against the pattern at the origin.
        """
        if pattern.routing_mode() == "prefix":
            return self._search_pattern_by_prefix(pattern)
        key = term_key(pattern.routing_constant())
        out: Future = Future()

        def _on_result(f: Future) -> None:
            result = f.result()
            values = result.values if result.success else None
            out.set_result(list(values) if values else [])

        self._start_op("search", key, pattern).add_done_callback(_on_result)
        return out

    #: decomposition depth for prefix-pattern range queries; bounds the
    #: fan-out at 2 * depth subtree queries (over-covered results are
    #: filtered by pattern matching at the origin)
    _RANGE_COVER_DEPTH = 16

    def _search_pattern_by_prefix(self, pattern: TriplePattern) -> Future:
        needle = pattern.routing_constant().prefix_needle  # type: ignore[union-attr]
        low, high = prefix_interval(needle)
        covers = covering_prefixes(low, high,
                                   max_length=self._RANGE_COVER_DEPTH)
        out: Future = Future()

        def _on_ranges(f: Future) -> None:
            bindings: list[dict] = []
            seen_triples: set[Triple] = set()
            for result in f.result():
                for value in result.values or ():
                    if not isinstance(value, TripleRecord):
                        continue
                    if value.triple in seen_triples:
                        continue
                    seen_triples.add(value.triple)
                    matched = pattern.matches(value.triple)
                    if matched is not None:
                        bindings.append(matched)
            out.set_result(bindings)

        gather([self.range_query(c) for c in covers]).add_done_callback(
            _on_ranges)
        return out

    def _execute_query(self, query: ConjunctiveQuery) -> Future:
        """Resolve a query's patterns and project the distinguished
        variables; resolves to a set of result tuples.

        Dispatches on :attr:`join_mode`; single-pattern queries take
        the direct path either way.
        """
        if self.join_mode == "bound" and len(query.patterns) > 1:
            return self._execute_query_bound(query)
        return self._execute_query_parallel(query)

    def _execute_query_parallel(self, query: ConjunctiveQuery) -> Future:
        """All patterns resolved independently, joined at the origin."""
        out: Future = Future()
        pattern_futures = [self._search_pattern(p) for p in query.patterns]

        def _on_all(f: Future) -> None:
            joined: list[dict] = [{}]
            for bindings_list in f.result():
                joined = join_bindings(joined, bindings_list)
                if not joined:
                    break
            rows = {
                query.project(b) for b in joined
                if all(v in b for v in query.distinguished)
            }
            out.set_result(rows)

        gather(pattern_futures).add_done_callback(_on_all)
        return out

    @staticmethod
    def _selectivity_rank(pattern: TriplePattern) -> tuple:
        """Sort key: most selective pattern first.

        Exact subjects pin a single resource; exact objects a value;
        predicates an entire attribute extent.  More exact constants
        beat fewer.
        """
        constants = pattern.constants()
        from repro.rdf.triples import Position
        return (
            0 if Position.SUBJECT in constants else 1,
            0 if Position.OBJECT in constants else 1,
            0 if Position.PREDICATE in constants else 1,
            str(pattern),
        )

    def _execute_query_bound(self, query: ConjunctiveQuery) -> Future:
        """Sequential bound join: substitute earlier bindings into
        later patterns before fetching them.

        For each step, the distinct substituted variants of the next
        pattern are fetched (capped at :attr:`bound_join_fanout_cap`
        variants — beyond that the unbound pattern is cheaper) and
        joined into the running binding set.
        """
        ordered = sorted(query.patterns, key=self._selectivity_rank)
        out: Future = Future()

        def _step(index: int, joined: list[dict]) -> None:
            if index == len(ordered) or not joined:
                rows = {
                    query.project(b) for b in joined
                    if all(v in b for v in query.distinguished)
                }
                out.set_result(rows)
                return
            pattern = ordered[index]
            variants: list[TriplePattern] = []
            seen_variants: set[TriplePattern] = set()
            for bindings in joined:
                variant = pattern.substitute(bindings)
                if variant not in seen_variants:
                    seen_variants.add(variant)
                    variants.append(variant)
            if (len(variants) > self.bound_join_fanout_cap
                    or any(not v.variables() for v in variants)):
                # Too many variants (or fully ground ones, whose empty
                # binding dicts would not join back): fetch unbound.
                variants = [pattern]

            def _on_fetched(f: Future) -> None:
                fetched: list[dict] = []
                seen_keys: set[tuple] = set()
                from repro.rdf.terms import Variable
                from repro.rdf.triples import ALL_POSITIONS
                for bindings_list, variant in zip(f.result(), variants):
                    for b in bindings_list:
                        # Re-attach the variables the substitution
                        # erased, so the join sees them again.
                        restored = dict(b)
                        for pos in ALL_POSITIONS:
                            term = pattern.at(pos)
                            variant_term = variant.at(pos)
                            if (isinstance(term, Variable)
                                    and not isinstance(variant_term,
                                                       Variable)):
                                restored[term] = variant_term
                        key = tuple(sorted(
                            (v.value, repr(t))
                            for v, t in restored.items()))
                        if key not in seen_keys:
                            seen_keys.add(key)
                            fetched.append(restored)
                _step(index + 1, join_bindings(joined, fetched))

            gather([self._search_pattern(v) for v in variants]
                   ).add_done_callback(_on_fetched)

        _step(0, [{}])
        return out

    # -- recursive strategy ---------------------------------------------

    def _start_recursive(self, query: ConjunctiveQuery, max_hops: int,
                         future: Future) -> None:
        task_id = f"{self.node_id}:{next(self._op_ids)}"
        task = _RecursiveTask(self, task_id, query, future)
        self._refo_tasks[task_id] = task
        task.timeout_handle = self.loop.schedule(
            self.query_timeout, task.finish, False
        )
        primary_schema = min(query_schemas(query))
        root_id = self._send_refo(schema_key(primary_schema), {
            "task_id": task_id,
            "task_origin": self.node_id,
            "query": query,
            "visited": [primary_schema],
            "ttl": max_hops,
        })
        task.expected.add(root_id)

    def _send_refo(self, key: Key, value: dict) -> str:
        """Route a reformulation request toward a schema key space.

        Returns the request id, which doubles as the route op id; the
        handler's report and results messages carry it back so the
        origin can do exact termination accounting (a child's report
        may overtake its parent's, so simple counters are not enough).
        """
        op_id = f"refo!{value['task_id']}!{self.node_id}:{next(self._op_ids)}"
        value = dict(value)
        value["request_id"] = op_id
        self._handle_route(Message(
            kind="route",
            src=self.node_id,
            dst=self.node_id,
            payload={
                "op": "reformulate",
                "op_id": op_id,
                "key": key.bits,
                "origin": value["task_origin"],
                "value": value,
            },
            hops=0,
        ))
        return op_id

    def _handle_reformulate(self, value: dict) -> dict:
        """Schema-peer side of the recursive strategy.

        Returns the report ``{"spawned": [...], "executes": bool}``
        delivered to the task origin as the route reply: ``spawned``
        lists the request ids of the sub-requests this peer forwarded,
        and ``executes`` says whether a separate ``refo_results``
        message will follow for this request.
        """
        task_id = value["task_id"]
        request_id = value["request_id"]
        query: ConjunctiveQuery = value["query"]
        visited = set(value["visited"])
        ttl = int(value["ttl"])
        task_origin = value["task_origin"]
        seen = self._refo_seen.get(task_id)
        if seen is None:
            seen = set()
            self._refo_seen[task_id] = seen
            self.loop.schedule(_REFO_SEEN_TTL, self._refo_seen.pop,
                               task_id, None)
        if query in seen:
            return {"spawned": [], "executes": False}
        seen.add(query)
        spawned: list[str] = []
        if ttl > 0:
            source_schemas = query_schemas(query)
            for mapping in sorted(self.local_mappings.values(),
                                  key=lambda m: m.mapping_id):
                if not mapping.active:
                    continue
                if mapping.source_schema not in source_schemas:
                    continue
                if mapping.target_schema in visited:
                    continue
                translated = translate_query(query, mapping)
                if translated is None:
                    continue
                spawned.append(self._send_refo(
                    schema_key(mapping.target_schema), {
                        "task_id": task_id,
                        "task_origin": task_origin,
                        "query": translated,
                        "visited": sorted(visited | {mapping.target_schema}),
                        "ttl": ttl - 1,
                    }
                ))

        def _on_rows(f: Future) -> None:
            self.send(task_origin, "refo_results", {
                "task_id": task_id,
                "request_id": request_id,
                "query": query,
                "rows": f.result(),
            })

        self._execute_query(query).add_done_callback(_on_rows)
        return {"spawned": spawned, "executes": True}

    def _on_refo_report(self, payload: dict) -> None:
        """Origin side: a schema peer reported its fan-out."""
        op_id = payload["op_id"]
        task_id = op_id.split("!", 2)[1]
        task = self._refo_tasks.get(task_id)
        if task is None:
            return
        task.on_report(op_id, payload.get("values") or
                       {"spawned": [], "executes": False})

    # ------------------------------------------------------------------
    # Protocol extensions
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == "refo_results":
            task = self._refo_tasks.get(message.payload["task_id"])
            if task is not None:
                task.on_results(message.payload["request_id"],
                                message.payload["query"],
                                message.payload["rows"])
            return
        super().on_message(message)

    def _execute_op(self, op: str, key: Key, value: Any) -> tuple[list[Any] | None, bool]:
        if op == "search":
            return self.db.match(value), False
        if op == "reformulate":
            return self._handle_reformulate(value), False  # type: ignore[return-value]
        return super()._execute_op(op, key, value)

    def _complete(self, payload: dict, hops_override: int | None = None) -> None:
        if str(payload.get("op_id", "")).startswith("refo!"):
            self._on_refo_report(payload)
            return
        super()._complete(payload, hops_override)

    # ------------------------------------------------------------------
    # Record dispatch (storage side)
    # ------------------------------------------------------------------

    def local_insert(self, key: Key, value: Any) -> None:
        if isinstance(value, ConnectivityRecord):
            # Last-writer-wins per schema: drop stale records so the
            # domain key space holds exactly one record per schema.
            bucket = self.store.setdefault(key.bits, [])
            bucket[:] = [
                r for r in bucket
                if not (isinstance(r, ConnectivityRecord)
                        and r.schema_name == value.schema_name)
            ]
            bucket.append(value)
            return
        super().local_insert(key, value)
        if isinstance(value, TripleRecord):
            self.db.add(value.triple)
        elif isinstance(value, SchemaRecord):
            self.local_schemas[value.schema.name] = value.schema
            self._republish_connectivity(value.schema.name)
        elif isinstance(value, MappingRecord):
            self.local_mappings[value.mapping.mapping_id] = value.mapping
            self._republish_connectivity(value.mapping.source_schema)
        elif isinstance(value, IncomingMappingRecord):
            self.incoming_mappings[value.mapping.mapping_id] = value.mapping
            self._republish_connectivity(value.mapping.target_schema)

    def local_remove(self, key: Key, value: Any) -> int:
        removed = super().local_remove(key, value)
        if not removed:
            return removed
        if isinstance(value, TripleRecord):
            # The triple may still be stored under another of its three
            # keys at this peer; only drop it from the local database
            # when no copy remains in the generic store.
            still_here = any(
                isinstance(v, TripleRecord) and v.triple == value.triple
                for bucket in self.store.values() for v in bucket
            )
            if not still_here:
                self.db.remove(value.triple)
        elif isinstance(value, SchemaRecord):
            self.local_schemas.pop(value.schema.name, None)
        elif isinstance(value, MappingRecord):
            self.local_mappings.pop(value.mapping.mapping_id, None)
            self._republish_connectivity(value.mapping.source_schema)
        elif isinstance(value, IncomingMappingRecord):
            self.incoming_mappings.pop(value.mapping.mapping_id, None)
            self._republish_connectivity(value.mapping.target_schema)
        return removed

    # ------------------------------------------------------------------
    # Degree bookkeeping (§3.1)
    # ------------------------------------------------------------------

    def _local_degree(self, schema_name: str) -> tuple[int, int]:
        """(in, out) over active mappings recorded at this peer."""
        out_degree = sum(
            1 for m in self.local_mappings.values()
            if m.active and m.source_schema == schema_name
        )
        in_degree = sum(
            1 for m in self.incoming_mappings.values()
            if m.active and m.target_schema == schema_name
        )
        return (in_degree, out_degree)

    def _republish_connectivity(self, schema_name: str) -> None:
        """Push ``{Schema, InDegree, OutDegree}`` to ``Hash(Domain)``.

        Only the peer(s) holding the schema definition publish — the
        paper makes "each peer storing a schema definition responsible
        for updating the number of incoming and outgoing mappings
        attached to its schema".  No-ops when the record is unchanged.
        """
        schema = self.local_schemas.get(schema_name)
        if schema is None:
            return
        in_degree, out_degree = self._local_degree(schema_name)
        record = ConnectivityRecord(schema_name, in_degree, out_degree)
        if self._published_connectivity.get(schema_name) == record:
            return
        self._published_connectivity[schema_name] = record
        self.update(domain_key(schema.domain), record)


class _IterativeTask:
    """Origin-side state machine of the iterative strategy.

    The origin interleaves two kinds of asynchronous work: fetching
    schema key spaces (to learn mappings) and executing reformulated
    queries.  ``pending`` counts outstanding futures; the task resolves
    when it reaches zero.
    """

    def __init__(self, peer: GridVinePeer, query: ConjunctiveQuery,
                 max_hops: int, future: Future) -> None:
        self.peer = peer
        self.max_hops = max_hops
        self.future = future
        self.outcome = QueryOutcome(query=query, strategy="iterative",
                                    issued_at=peer.loop.now)
        self.pending = 0
        self.seen_queries: set[ConjunctiveQuery] = {query}
        #: schema -> list of (query, hops) posed against it
        self.queries_by_schema: dict[str, list[tuple[ConjunctiveQuery, int]]] = {}
        #: schema -> fetched active mappings (present once fetched)
        self.mappings_cache: dict[str, list[SchemaMapping]] = {}
        self.fetching: set[str] = set()
        #: guards against resolving mid-start (a sub-operation can
        #: complete synchronously when the origin owns the key) and
        #: against double resolution
        self._starting = True
        self._finished = False

    def start(self) -> None:
        """Kick off: run the original query and learn its schemas."""
        self._run_query(self.outcome.query, 0)
        self._register(self.outcome.query, 0)
        self._starting = False
        self._maybe_finish()

    # -- bookkeeping -----------------------------------------------------

    def _register(self, query: ConjunctiveQuery, hops: int) -> None:
        """Note a query and trigger fetch/translate for its schemas."""
        if hops >= self.max_hops:
            return
        for schema in sorted(query_schemas(query)):
            self.queries_by_schema.setdefault(schema, []).append((query, hops))
            if schema in self.mappings_cache:
                self._translate_one(query, hops, schema)
            else:
                self._fetch_schema(schema)

    def _fetch_schema(self, schema: str) -> None:
        if schema in self.fetching or schema in self.mappings_cache:
            return
        self.fetching.add(schema)
        self.pending += 1

        def _on_mappings(f: Future) -> None:
            self.mappings_cache[schema] = f.result()
            self.fetching.discard(schema)
            for query, hops in list(self.queries_by_schema.get(schema, ())):
                self._translate_one(query, hops, schema)
            self._decrement()

        self.peer.fetch_mappings(schema).add_done_callback(_on_mappings)

    def _translate_one(self, query: ConjunctiveQuery, hops: int,
                       schema: str) -> None:
        for mapping in self.mappings_cache.get(schema, ()):
            translated = translate_query(query, mapping)
            if translated is None or translated in self.seen_queries:
                continue
            self.seen_queries.add(translated)
            self._run_query(translated, hops + 1)
            self._register(translated, hops + 1)

    def _run_query(self, query: ConjunctiveQuery, hops: int) -> None:
        self.pending += 1

        def _on_rows(f: Future) -> None:
            self.outcome.record(query, f.result())
            self._decrement()

        self.peer._execute_query(query).add_done_callback(_on_rows)

    def _decrement(self) -> None:
        self.pending -= 1
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.pending == 0 and not self._starting and not self._finished:
            self._finished = True
            self.outcome.reformulations_explored = len(self.seen_queries) - 1
            self.outcome.latency = self.peer.loop.now - self.outcome.issued_at
            self.future.set_result(self.outcome)


class _RecursiveTask:
    """Origin-side termination accounting of the recursive strategy.

    Each request eventually yields one report (listing the exact ids of
    the sub-requests it spawned) and, if it executed the query, one
    ``refo_results`` message.  A request is *settled* once its report
    and (if due) its results have arrived; the task completes when
    every expected request is settled.  Tracking explicit ids (rather
    than counters) keeps the accounting correct when a child's report
    overtakes its parent's on the network.
    """

    def __init__(self, peer: GridVinePeer, task_id: str,
                 query: ConjunctiveQuery, future: Future) -> None:
        self.peer = peer
        self.task_id = task_id
        self.future = future
        self.outcome = QueryOutcome(query=query, strategy="recursive",
                                    issued_at=peer.loop.now)
        #: request ids known to be part of this task
        self.expected: set[str] = set()
        #: request id -> its report, once received
        self.reports: dict[str, dict] = {}
        #: request ids whose results have arrived
        self.results_received: set[str] = set()
        self.finished = False
        self.timeout_handle = None
        #: attribution tag captured at issue time (a timeout-driven
        #: finish runs outside any delivery scope)
        self.op_tag = (peer.network.current_operation()
                       if peer.network is not None else None)

    def on_report(self, request_id: str, report: dict) -> None:
        """A schema peer reported which sub-requests it spawned."""
        if self.finished:
            return
        self.reports[request_id] = report
        self.expected.add(request_id)
        self.expected.update(report.get("spawned", ()))
        self._check_done()

    def on_results(self, request_id: str, query: ConjunctiveQuery,
                   rows: set) -> None:
        """A schema peer streamed back one reformulation's results."""
        if self.finished:
            return
        self.results_received.add(request_id)
        self.outcome.record(query, set(rows))
        self._check_done()

    def _check_done(self) -> None:
        for request_id in self.expected:
            report = self.reports.get(request_id)
            if report is None:
                return
            if report.get("executes") and request_id not in self.results_received:
                return
        self.finish(True)

    def finish(self, complete: bool) -> None:
        """Resolve the task (``complete=False`` on timeout)."""
        if self.finished:
            return
        self.finished = True
        if self.timeout_handle is not None:
            self.timeout_handle.cancel()
        self.peer._refo_tasks.pop(self.task_id, None)
        self.outcome.complete = complete
        self.outcome.reformulations_explored = max(
            0, len(self.outcome.results_by_query) - 1
        )
        self.outcome.latency = self.peer.loop.now - self.outcome.issued_at
        if self.op_tag is not None and self.peer.network is not None:
            with self.peer.network.operation(self.op_tag):
                self.future.set_result(self.outcome)
        else:
            self.future.set_result(self.outcome)
