"""The GridVine peer: P-Grid node + semantic mediation layer.

A :class:`GridVinePeer` extends :class:`~repro.pgrid.peer.PGridPeer`
with the paper's mediation operations:

* ``Update(data)`` / ``Update(schema)`` / ``Update(mapping)`` /
  ``Update(connectivity)`` — all reduce to overlay ``Update(key,
  value)`` calls with typed records and the key derivations of
  :mod:`repro.mediation.keys`;
* ``SearchFor(query)`` — triple-pattern and conjunctive queries with
  three execution strategies:

  ``"local"``
      No reformulation: resolve the query's patterns by overlay lookup
      and join at the origin.

  ``"iterative"``
      The origin "iteratively looks for paths of mappings and
      reformulates the query by itself" (§4): it retrieves the schema
      key spaces it learns about, translates the query through the
      mappings found there, and issues every distinct reformulation.

  ``"recursive"``
      "The successive reformulations are delegated to intermediate
      peers" (§4): the query travels to the peer holding the source
      schema's mappings; that peer reformulates with its local
      mappings, forwards to the next schema peers, executes the query
      it received, and streams results straight back to the origin.
      Termination uses spawn-count accounting (each request reports
      how many sub-requests it forwarded), with a virtual-time timeout
      as a safety net against message loss under churn.

All three strategies execute through the streaming operator runtime of
:mod:`repro.exec`: this module builds the operator DAG (via
:mod:`repro.exec.plans`) and contributes the overlay primitives the
operators drive — pattern fetches (:meth:`GridVinePeer.
_search_pattern`), schema-space reads and the recursive strategy's
wire protocol.  ``SearchFor`` therefore supports **limit pushdown**: a
``limit`` makes the pipeline cancel its remaining fan-out the moment
enough distinct answers arrived, and the outcome reports what the
early stop saved.

Degree bookkeeping (§3.1) is event-driven: whenever mapping records at
a schema's key space change, the peer holding that schema definition
recomputes ``(InDegree, OutDegree)`` over *active* mappings and
republishes a :class:`~repro.mediation.records.ConnectivityRecord`
under ``Hash(Domain)``.  The domain peer keeps one record per schema
(last-writer-wins), so replicas republishing concurrently converge.
"""

from __future__ import annotations

import random
from typing import Any

from repro.exec.plans import execute_query_rows, run_query_plan
from repro.mapping.model import SchemaMapping
from repro.mapping.unfolding import query_schemas, translate_query
from repro.mediation.keys import domain_key, schema_key, term_key, triple_keys
from repro.util.hashing import prefix_interval
from repro.util.keys import covering_prefixes
from repro.mediation.records import (
    ConnectivityRecord,
    IncomingMappingRecord,
    MappingRecord,
    SchemaRecord,
    TripleRecord,
)
from repro.pgrid.peer import PGridPeer
from repro.optimizer.core import QueryOptimizer
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.simnet.events import CancelToken, Future, gather
from repro.simnet.network import Message
from repro.stats.synopsis import PeerSynopsis, mapping_edges
from repro.storage.triplestore import TripleStore
from repro.util.guid import mint_guid
from repro.util.keys import Key

#: How long (virtual seconds) a schema peer remembers the queries it
#: has already processed for one recursive task.
_REFO_SEEN_TTL = 600.0


class GridVinePeer(PGridPeer):
    """A peer participating in all three GridVine layers."""

    def __init__(
        self,
        node_id: str,
        path: Key,
        rng: random.Random | None = None,
        timeout: float = 15.0,
        max_retries: int = 2,
        query_timeout: float = 120.0,
        failover: bool = True,
    ) -> None:
        super().__init__(node_id, path, rng=rng, timeout=timeout,
                         max_retries=max_retries, failover=failover)
        self.query_timeout = query_timeout
        #: conjunctive-join execution mode: ``"parallel"`` resolves all
        #: patterns independently and joins at the origin (the paper's
        #: "iteratively resolving each triple pattern ... and
        #: aggregating"); ``"bound"`` resolves patterns sequentially,
        #: substituting earlier bindings into later patterns (a bound
        #: join — ships far fewer tuples on selective queries)
        self.join_mode = "parallel"
        #: bound-join fan-out cap: above this many distinct
        #: substitutions a pattern is fetched unbound instead
        self.bound_join_fanout_cap = 24
        #: local triple database DB_p (triples routed here by any key)
        self.db = TripleStore()
        #: schema definitions stored in this peer's key space
        self.local_schemas: dict[str, Schema] = {}
        #: outgoing mapping records stored here, by mapping id
        self.local_mappings: dict[str, SchemaMapping] = {}
        #: incoming-edge markers stored here, by mapping id
        self.incoming_mappings: dict[str, SchemaMapping] = {}
        #: last connectivity record published per schema (suppresses
        #: redundant republication)
        self._published_connectivity: dict[str, ConnectivityRecord] = {}
        #: recursive-strategy origin-side fan-out operators by task id
        #: (:class:`repro.exec.operators.RecursiveFanout`), the
        #: dispatch table for report / results messages
        self._refo_tasks: dict[str, Any] = {}
        #: recursive-strategy handler-side dedup sets, per task
        self._refo_seen: dict[str, set[ConjunctiveQuery]] = {}
        #: mapping-event hooks ``fn(action, mapping)`` fired on the
        #: issuing path of insert/remove/deprecate — the versioning
        #: signal consumed by :mod:`repro.engine` plan caches
        self.mapping_hooks: list = []
        #: monotone counter bumped on local mapping-record changes;
        #: folded into the synopsis digest version
        self._mapping_stats_version = 0
        self._digest_cache: tuple[int, PeerSynopsis] | None = None
        #: cost-based query optimizer over the peer's synopsis
        #: registry; consulted by ``strategy="auto"`` and by engines
        #: executing with ``optimize=True`` (static strategies keep
        #: their historical behaviour bit for bit)
        self.optimizer = QueryOptimizer(self)
        self.register_handler("refo_results", self._handle_refo_results)

    # ------------------------------------------------------------------
    # Statistics (see repro.stats)
    # ------------------------------------------------------------------

    def synopsis_digest(self) -> PeerSynopsis:
        """This peer's current statistics digest.

        Combines the triple database's incrementally maintained
        synopsis with the active mapping edges stored here; the
        version is the sum of both monotone change counters, so any
        local mutation makes the next digest win merges.
        """
        version = self.db.synopsis.version + self._mapping_stats_version
        if (self._digest_cache is not None
                and self._digest_cache[0] == version):
            return self._digest_cache[1]
        digest = self.db.synopsis.digest(
            self.node_id, version=version,
            mappings=mapping_edges(self.local_mappings.values()),
            path=self.path.bits,
        )
        self._digest_cache = (version, digest)
        return digest

    # ------------------------------------------------------------------
    # Identifier minting
    # ------------------------------------------------------------------

    def mint_guid(self, local_identifier: str) -> str:
        """A globally unique id: ``pi(p)`` + hash of the local name."""
        return mint_guid(self.path, local_identifier)

    # ------------------------------------------------------------------
    # Mediation-layer updates
    # ------------------------------------------------------------------

    def insert_triple(self, triple: Triple) -> Future:
        """``Update(t)``: three overlay updates, one per position key."""
        record = TripleRecord(triple)
        return gather([
            self.update(key, record) for key in triple_keys(triple)
        ])

    def insert_triples(self, triples: list[Triple]) -> Future:
        """Insert a batch of triples (3 x len(triples) overlay updates)."""
        return gather([self.insert_triple(t) for t in triples])

    def remove_triple(self, triple: Triple) -> Future:
        """Delete a triple from all three position key spaces."""
        record = TripleRecord(triple)
        return gather([
            self.update(key, record, action="remove")
            for key in triple_keys(triple)
        ])

    def insert_schema(self, schema: Schema) -> Future:
        """``Update(Schema)``: definition stored at ``Hash(Schema Name)``."""
        return self.update(schema_key(schema.name), SchemaRecord(schema))

    def _fire_mapping_event(self, action: str,
                            mapping: SchemaMapping) -> None:
        """Notify :attr:`mapping_hooks` of one issued mapping mutation.

        Fired on the *issuing* path (not on record replication), so
        every logical operation produces exactly one event per
        direction, in deterministic issuing order.
        """
        for hook in self.mapping_hooks:
            hook(action, mapping)

    def _insert_mapping_records(self, mapping: SchemaMapping) -> Future:
        return gather([
            self.update(schema_key(mapping.source_schema),
                        MappingRecord(mapping)),
            self.update(schema_key(mapping.target_schema),
                        IncomingMappingRecord(mapping)),
        ])

    def _remove_mapping_records(self, mapping: SchemaMapping) -> Future:
        return gather([
            self.update(schema_key(mapping.source_schema),
                        MappingRecord(mapping), action="remove"),
            self.update(schema_key(mapping.target_schema),
                        IncomingMappingRecord(mapping), action="remove"),
        ])

    def insert_mapping(self, mapping: SchemaMapping,
                       bidirectional: bool = False) -> Future:
        """``Update(Schema Mapping)``.

        The mapping lands at the source schema's key space; an
        incoming-edge marker lands at the target's so that peer can
        account for its in-degree.  A bidirectional mapping is the
        pair of directed mappings (the reverse direction is derived
        from the equivalence correspondences) — "or at the key spaces
        corresponding to both schemas if the mapping is bidirectional".
        """
        self._fire_mapping_event("insert", mapping)
        ops = [self._insert_mapping_records(mapping)]
        if bidirectional:
            reverse = mapping.reversed()
            self._fire_mapping_event("insert", reverse)
            ops.append(self._insert_mapping_records(reverse))
        return gather(ops)

    def remove_mapping(self, mapping: SchemaMapping) -> Future:
        """Delete a directed mapping's record and its incoming marker."""
        self._fire_mapping_event("remove", mapping)
        return self._remove_mapping_records(mapping)

    def replace_mapping(self, old: SchemaMapping,
                        new: SchemaMapping) -> Future:
        """Atomically-ish swap a mapping record (e.g. to deprecate it).

        Issues the removal and the insertion together; both key spaces
        are updated so degree accounting stays consistent.
        """
        return gather([
            self.remove_mapping(old),
            self.insert_mapping(new),
        ])

    def deprecate_mapping(self, mapping: SchemaMapping) -> Future:
        """Mark a mapping deprecated (§3.2): it keeps existing but is
        ignored for reformulation and connectivity accounting."""
        deprecated = mapping.with_deprecated(True)
        self._fire_mapping_event("deprecate", deprecated)
        return gather([
            self._remove_mapping_records(mapping),
            self._insert_mapping_records(deprecated),
        ])

    # ------------------------------------------------------------------
    # Mediation-layer reads
    # ------------------------------------------------------------------

    def fetch_schema_space(self, schema_name: str,
                           cancel: CancelToken | None = None) -> Future:
        """Retrieve every record at ``Hash(schema_name)``.

        Resolves to the raw record list (schema definition, outgoing
        mapping records and incoming markers).  ``cancel`` propagates
        cooperative cancellation into the underlying retrieve.
        """
        out: Future = Future()
        fut = self.retrieve(schema_key(schema_name), cancel=cancel)
        fut.add_done_callback(
            lambda f: out.set_result(list(f.result().values or []))
        )
        return out

    def fetch_mappings(self, schema_name: str,
                       include_deprecated: bool = False,
                       cancel: CancelToken | None = None) -> Future:
        """Active outgoing mappings of a schema, via the overlay."""
        out: Future = Future()

        def _on_records(f: Future) -> None:
            mappings = [
                r.mapping for r in f.result()
                if isinstance(r, MappingRecord)
                and (include_deprecated or r.mapping.active)
            ]
            out.set_result(sorted(mappings, key=lambda m: m.mapping_id))

        self.fetch_schema_space(schema_name, cancel=cancel
                                ).add_done_callback(_on_records)
        return out

    def fetch_connectivity(self, domain: str) -> Future:
        """All :class:`ConnectivityRecord`s of a domain."""
        out: Future = Future()
        fut = self.retrieve(domain_key(domain))
        fut.add_done_callback(lambda f: out.set_result([
            r for r in (f.result().values or [])
            if isinstance(r, ConnectivityRecord)
        ]))
        return out

    # ------------------------------------------------------------------
    # SearchFor
    # ------------------------------------------------------------------

    def search_for(self, query: ConjunctiveQuery, strategy: str = "iterative",
                   max_hops: int = 5, limit: int | None = None) -> Future:
        """Resolve a query; resolves to a :class:`QueryOutcome`.

        ``strategy`` selects where reformulation runs: ``"local"``
        (no reformulation), ``"iterative"`` (the origin walks mapping
        paths itself) or ``"recursive"`` (reformulation is delegated
        to the schema peers) — see the module docstring for the
        paper's definitions.  ``"auto"`` lets the peer's cost-based
        :attr:`optimizer` pick among the three per query (plus join
        mode, scan order and reformulation pruning) from propagated
        statistics; the :class:`~repro.optimizer.core.PlanDecision`
        is recorded on the outcome.  Conjunctive joins otherwise
        honour :attr:`join_mode` (``"parallel"`` or ``"bound"``).

        ``max_hops`` bounds the length of mapping paths explored (the
        recursive strategy's TTL / the iterative strategy's BFS
        depth).  ``limit`` caps the number of distinct result rows:
        once reached, the streaming pipeline cooperatively cancels all
        remaining fan-out (limit pushdown), and the outcome's
        streaming statistics report the fetches that saved.
        """
        for pattern in query.patterns:
            pattern.routing_position()  # raises early on unroutable patterns
        return run_query_plan(self, query, strategy=strategy,
                              max_hops=max_hops, limit=limit)

    def execute_planned_batch(self, queries: list[ConjunctiveQuery],
                              plans: list[list[Any]],
                              limit: int | None = None,
                              optimizer: Any = None) -> Future:
        """Run a pre-planned query batch from this peer.

        The transport-boundary twin of
        :func:`repro.engine.executor.execute_batch`: planning happens
        wherever the mapping-graph mirror lives (a
        :class:`~repro.engine.core.QueryEngine`, or a scale-out
        controller), and execution happens *here*, against whatever
        transport this peer is attached to — so the same engine batch
        runs on the in-process loop or as a sharded submission
        (``transport.submit(origin, "execute_planned_batch", ...)``).
        Resolves to ``(outcomes, fetch_stats)``; both are plain data,
        so the result crosses process-mode worker pipes unchanged.
        """
        from repro.engine.executor import execute_batch

        return execute_batch(self, queries, plans, limit=limit,
                             optimizer=optimizer)

    # -- data-layer execution ------------------------------------------

    def _search_pattern(self, pattern: TriplePattern,
                        cancel: CancelToken | None = None) -> Future:
        """Route one pattern to its key space; resolves to bindings.

        Exact routing constants resolve with a single ``search`` op at
        the constant's key space.  A ``prefix%`` routing constant has
        no single key; its matches occupy a contiguous key *interval*
        (order-preserving hash), which is fetched with overlay range
        queries over the interval's covering prefixes and matched
        against the pattern at the origin.  ``cancel`` propagates
        cooperative cancellation: a fired token stops retries and
        resolves the fetch (empty) immediately.
        """
        if pattern.routing_mode() == "prefix":
            return self._search_pattern_by_prefix(pattern, cancel=cancel)
        key = term_key(pattern.routing_constant())
        out: Future = Future()

        def _on_result(f: Future) -> None:
            result = f.result()
            values = result.values if result.success else None
            out.set_result(list(values) if values else [])

        self._start_op("search", key, pattern,
                       cancel=cancel).add_done_callback(_on_result)
        return out

    #: decomposition depth for prefix-pattern range queries; bounds the
    #: fan-out at 2 * depth subtree queries (over-covered results are
    #: filtered by pattern matching at the origin)
    _RANGE_COVER_DEPTH = 16

    def _search_pattern_by_prefix(self, pattern: TriplePattern,
                                  cancel: CancelToken | None = None
                                  ) -> Future:
        needle = pattern.routing_constant().prefix_needle  # type: ignore[union-attr]
        low, high = prefix_interval(needle)
        covers = covering_prefixes(low, high,
                                   max_length=self._RANGE_COVER_DEPTH)
        out: Future = Future()

        def _on_ranges(f: Future) -> None:
            bindings: list[dict] = []
            seen_triples: set[Triple] = set()
            for result in f.result():
                for value in result.values or ():
                    if not isinstance(value, TripleRecord):
                        continue
                    if value.triple in seen_triples:
                        continue
                    seen_triples.add(value.triple)
                    matched = pattern.matches(value.triple)
                    if matched is not None:
                        bindings.append(matched)
            out.set_result(bindings)

        gather([self.range_query(c, cancel=cancel) for c in covers]
               ).add_done_callback(_on_ranges)
        return out

    def _execute_query(self, query: ConjunctiveQuery,
                       cancel: CancelToken | None = None) -> Future:
        """Resolve a query's patterns and project the distinguished
        variables; resolves to a set of result tuples.

        Runs a reformulation-free operator pipeline honouring
        :attr:`join_mode` — the data-layer primitive behind the local
        strategy and the recursive strategy's handler-side execution.
        """
        return execute_query_rows(self, query, cancel=cancel)

    # -- recursive strategy (wire protocol; the origin-side fan-out
    # -- accounting lives in repro.exec.operators.RecursiveFanout) ------

    def _send_refo(self, key: Key, value: dict) -> str:
        """Route a reformulation request toward a schema key space.

        Returns the request id, which doubles as the route op id; the
        handler's report and results messages carry it back so the
        origin can do exact termination accounting (a child's report
        may overtake its parent's, so simple counters are not enough).
        """
        op_id = f"refo!{value['task_id']}!{self.node_id}:{next(self._op_ids)}"
        value = dict(value)
        value["request_id"] = op_id
        self._handle_route(Message(
            kind="route",
            src=self.node_id,
            dst=self.node_id,
            payload={
                "op": "reformulate",
                "op_id": op_id,
                "key": key.bits,
                "origin": value["task_origin"],
                "value": value,
            },
            hops=0,
        ))
        return op_id

    def _handle_reformulate(self, value: dict) -> dict:
        """Schema-peer side of the recursive strategy.

        Returns the report ``{"spawned": [...], "executes": bool}``
        delivered to the task origin as the route reply: ``spawned``
        lists the request ids of the sub-requests this peer forwarded,
        and ``executes`` says whether a separate ``refo_results``
        message will follow for this request.
        """
        task_id = value["task_id"]
        request_id = value["request_id"]
        query: ConjunctiveQuery = value["query"]
        visited = set(value["visited"])
        ttl = int(value["ttl"])
        task_origin = value["task_origin"]
        seen = self._refo_seen.get(task_id)
        if seen is None:
            seen = set()
            self._refo_seen[task_id] = seen
            self.loop.schedule(_REFO_SEEN_TTL, self._refo_seen.pop,
                               task_id, None)
        if query in seen:
            return {"spawned": [], "executes": False}
        seen.add(query)
        spawned: list[str] = []
        if ttl > 0:
            source_schemas = query_schemas(query)
            for mapping in sorted(self.local_mappings.values(),
                                  key=lambda m: m.mapping_id):
                if not mapping.active:
                    continue
                if mapping.source_schema not in source_schemas:
                    continue
                if mapping.target_schema in visited:
                    continue
                translated = translate_query(query, mapping)
                if translated is None:
                    continue
                spawned.append(self._send_refo(
                    schema_key(mapping.target_schema), {
                        "task_id": task_id,
                        "task_origin": task_origin,
                        "query": translated,
                        "visited": sorted(visited | {mapping.target_schema}),
                        "ttl": ttl - 1,
                    }
                ))

        def _on_rows(f: Future) -> None:
            self.send(task_origin, "refo_results", {
                "task_id": task_id,
                "request_id": request_id,
                "query": query,
                "rows": f.result(),
            })

        self._execute_query(query).add_done_callback(_on_rows)
        return {"spawned": spawned, "executes": True}

    def _on_refo_report(self, payload: dict) -> None:
        """Origin side: a schema peer reported its fan-out."""
        op_id = payload["op_id"]
        task_id = op_id.split("!", 2)[1]
        task = self._refo_tasks.get(task_id)
        if task is None:
            return
        task.on_report(op_id, payload.get("values") or
                       {"spawned": [], "executes": False})

    # ------------------------------------------------------------------
    # Protocol extensions
    # ------------------------------------------------------------------

    def _handle_refo_results(self, message: Message) -> None:
        task = self._refo_tasks.get(message.payload["task_id"])
        if task is not None:
            task.on_results(message.payload["request_id"],
                            message.payload["query"],
                            message.payload["rows"])

    def _execute_op(self, op: str, key: Key, value: Any) -> tuple[list[Any] | None, bool]:
        if op == "search":
            return self.db.match(value), False
        if op == "reformulate":
            return self._handle_reformulate(value), False  # type: ignore[return-value]
        return super()._execute_op(op, key, value)

    def _complete(self, payload: dict, hops_override: int | None = None) -> None:
        if payload["op_id"].startswith("refo!"):
            self._on_refo_report(payload)
            return
        super()._complete(payload, hops_override)

    # ------------------------------------------------------------------
    # Record dispatch (storage side)
    # ------------------------------------------------------------------

    def local_insert(self, key: Key, value: Any) -> None:
        if type(value) is TripleRecord:
            # Hot path: triple inserts dominate every deployment build
            # (three overlay keys per triple), so dispatch them before
            # the full record-type chain.  Subclassed records still
            # take the generic path below.
            self.store.setdefault(key._bits, []).append(value)
            self.db.add(value.triple)
            return
        if isinstance(value, ConnectivityRecord):
            # Last-writer-wins per schema: drop stale records so the
            # domain key space holds exactly one record per schema.
            bucket = self.store.setdefault(key.bits, [])
            bucket[:] = [
                r for r in bucket
                if not (isinstance(r, ConnectivityRecord)
                        and r.schema_name == value.schema_name)
            ]
            bucket.append(value)
            return
        super().local_insert(key, value)
        if isinstance(value, TripleRecord):
            self.db.add(value.triple)
        elif isinstance(value, SchemaRecord):
            self.local_schemas[value.schema.name] = value.schema
            self._republish_connectivity(value.schema.name)
        elif isinstance(value, MappingRecord):
            self.local_mappings[value.mapping.mapping_id] = value.mapping
            self._mapping_stats_version += 1
            self._republish_connectivity(value.mapping.source_schema)
        elif isinstance(value, IncomingMappingRecord):
            self.incoming_mappings[value.mapping.mapping_id] = value.mapping
            self._republish_connectivity(value.mapping.target_schema)

    def local_remove(self, key: Key, value: Any) -> int:
        removed = super().local_remove(key, value)
        if not removed:
            return removed
        if isinstance(value, TripleRecord):
            # The triple may still be stored under another of its three
            # keys at this peer; only drop it from the local database
            # when no copy remains in the generic store.
            still_here = any(
                isinstance(v, TripleRecord) and v.triple == value.triple
                for bucket in self.store.values() for v in bucket
            )
            if not still_here:
                self.db.remove(value.triple)
        elif isinstance(value, SchemaRecord):
            self.local_schemas.pop(value.schema.name, None)
        elif isinstance(value, MappingRecord):
            self.local_mappings.pop(value.mapping.mapping_id, None)
            self._mapping_stats_version += 1
            self._republish_connectivity(value.mapping.source_schema)
        elif isinstance(value, IncomingMappingRecord):
            self.incoming_mappings.pop(value.mapping.mapping_id, None)
            self._republish_connectivity(value.mapping.target_schema)
        return removed

    # ------------------------------------------------------------------
    # Degree bookkeeping (§3.1)
    # ------------------------------------------------------------------

    def _local_degree(self, schema_name: str) -> tuple[int, int]:
        """(in, out) over active mappings recorded at this peer."""
        out_degree = sum(
            1 for m in self.local_mappings.values()
            if m.active and m.source_schema == schema_name
        )
        in_degree = sum(
            1 for m in self.incoming_mappings.values()
            if m.active and m.target_schema == schema_name
        )
        return (in_degree, out_degree)

    def _republish_connectivity(self, schema_name: str) -> None:
        """Push ``{Schema, InDegree, OutDegree}`` to ``Hash(Domain)``.

        Only the peer(s) holding the schema definition publish — the
        paper makes "each peer storing a schema definition responsible
        for updating the number of incoming and outgoing mappings
        attached to its schema".  No-ops when the record is unchanged.
        """
        schema = self.local_schemas.get(schema_name)
        if schema is None:
            return
        in_degree, out_degree = self._local_degree(schema_name)
        record = ConnectivityRecord(schema_name, in_degree, out_degree)
        if self._published_connectivity.get(schema_name) == record:
            return
        self._published_connectivity[schema_name] = record
        self.update(domain_key(schema.domain), record)

