"""Mediation-to-overlay key derivation.

Centralizes every ``Hash(...)`` of the paper so the mediation layer and
the tests agree on key widths:

* ``triple_keys(t)`` — the three keys a triple is indexed under
  (``Hash(t_subject), Hash(t_predicate), Hash(t_object)``, §2.2);
* ``schema_key(name)`` — ``Hash(Schema Name)`` for schema definitions
  and mappings (§2.2/§3);
* ``domain_key(domain)`` — ``Hash(Domain)`` for connectivity records
  (§3.1);
* ``term_key(term)`` — the routing key of a query's most specific
  constant (§2.3).
"""

from __future__ import annotations

from repro.rdf.terms import GroundTerm
from repro.rdf.triples import ALL_POSITIONS, Triple
from repro.util.hashing import DEFAULT_KEY_BITS, order_preserving_hash
from repro.util.keys import Key


def term_key(term: GroundTerm, bits: int = DEFAULT_KEY_BITS) -> Key:
    """Overlay key of a ground term's value."""
    return order_preserving_hash(term.value, bits)


def triple_keys(triple: Triple, bits: int = DEFAULT_KEY_BITS) -> list[Key]:
    """The three keys of a triple, in (subject, predicate, object) order."""
    return [term_key(triple.at(pos), bits) for pos in ALL_POSITIONS]


def schema_key(schema_name: str, bits: int = DEFAULT_KEY_BITS) -> Key:
    """``Hash(Schema Name)`` — where the definition and mappings live."""
    return order_preserving_hash(schema_name, bits)


def domain_key(domain: str, bits: int = DEFAULT_KEY_BITS) -> Key:
    """``Hash(Domain)`` — where connectivity records aggregate."""
    return order_preserving_hash(domain, bits)
