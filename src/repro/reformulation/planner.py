"""Breadth-first reformulation planning over a mapping graph.

Given a query and a :class:`~repro.mapping.graph.MappingGraph`, the
planner enumerates every distinct reformulated query reachable through
active mappings, together with the mapping path that produced it.
This is the sequential core both distributed strategies share; they
differ only in *where* each translation step runs and which messages it
costs.

A plan is the *logical* half of execution: the engine's batch executor
(:mod:`repro.engine.executor`) turns it into a physical operator DAG
(shared pattern scans, hash joins, per-query limits — see
:mod:`repro.exec`).  :func:`reformulation_waves` provides the bridge
for limit pushdown: it groups a plan by hop count so the executor can
fetch wave by wave and stop fanning out as soon as a query's limit is
satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapping.graph import MappingGraph
from repro.mapping.model import SchemaMapping
from repro.mapping.unfolding import query_schemas, translate_query
from repro.rdf.patterns import ConjunctiveQuery


@dataclass(frozen=True)
class Reformulation:
    """One reformulated query plus its provenance.

    ``path`` is the mapping chain from the original query's schema; an
    empty path denotes the original query itself.  ``min_confidence``
    is the weakest mapping confidence along the path — a crude but
    useful quality proxy for ranking results.
    """

    query: ConjunctiveQuery
    path: tuple[SchemaMapping, ...] = field(default_factory=tuple)

    @property
    def hops(self) -> int:
        """Number of mappings traversed."""
        return len(self.path)

    @property
    def min_confidence(self) -> float:
        """Weakest link confidence (1.0 for the original query)."""
        if not self.path:
            return 1.0
        return min(m.confidence for m in self.path)

    @property
    def target_schemas(self) -> set[str]:
        """Schemas the reformulated query is posed against."""
        return query_schemas(self.query)


def plan_reformulations(
    query: ConjunctiveQuery,
    graph: MappingGraph,
    max_hops: int = 6,
    include_original: bool = True,
) -> list[Reformulation]:
    """Enumerate reachable reformulations of ``query``, BFS order.

    Each *distinct* reformulated query is reported once, with the
    shortest (first-found) mapping path that produces it.  Cycles in
    the mapping graph are harmless: revisiting a schema can only
    reproduce a query already seen, which is dropped by the dedup set.

    >>> # with an empty graph only the original query is planned
    >>> from repro.rdf.parser import parse_search_for
    >>> q = parse_search_for("SearchFor(x? : (x?, A#p, v))")
    >>> [r.hops for r in plan_reformulations(q, MappingGraph())]
    [0]
    """
    original = Reformulation(query, ())
    seen: set[ConjunctiveQuery] = {query}
    frontier: list[Reformulation] = [original]
    planned: list[Reformulation] = [original] if include_original else []
    hops = 0
    while frontier and hops < max_hops:
        next_frontier: list[Reformulation] = []
        for current in frontier:
            for schema in sorted(current.target_schemas):
                for mapping in graph.outgoing(schema):
                    translated = translate_query(current.query, mapping)
                    if translated is None or translated in seen:
                        continue
                    seen.add(translated)
                    reformulation = Reformulation(
                        translated, current.path + (mapping,)
                    )
                    next_frontier.append(reformulation)
                    planned.append(reformulation)
        frontier = next_frontier
        hops += 1
    return planned


def reformulation_waves(
    plan: list[Reformulation],
) -> list[list[Reformulation]]:
    """Group a plan into execution waves by hop count.

    Wave ``h`` holds the reformulations exactly ``h`` mappings away
    from the original query (wave 0 is the original itself).  BFS
    order within each wave is preserved.  Streaming executors fetch
    wave by wave under a result limit: nearer reformulations tend to
    answer first, and every wave not started is fan-out saved.

    >>> from repro.mapping.graph import MappingGraph
    >>> from repro.rdf.parser import parse_search_for
    >>> q = parse_search_for("SearchFor(x? : (x?, A#p, v))")
    >>> [len(w) for w in reformulation_waves(
    ...     plan_reformulations(q, MappingGraph()))]
    [1]
    """
    waves: list[list[Reformulation]] = []
    for reformulation in plan:
        while reformulation.hops >= len(waves):
            waves.append([])
        waves[reformulation.hops].append(reformulation)
    return [wave for wave in waves if wave]


def prune_reformulations(
    plan: list[Reformulation],
    expected_yield,
    min_expected_yield: float = 0.0,
) -> tuple[list[Reformulation], int]:
    """Drop reformulations whose expected yield is too low.

    ``expected_yield`` maps a :class:`Reformulation` to the optimizer's
    ``confidence × estimated target cardinality`` (see
    :meth:`repro.optimizer.core.QueryOptimizer.reformulation_yield`),
    or ``None`` when the statistics cannot estimate it.  The original
    query (``hops == 0``) and unestimable reformulations are always
    kept — pruning on ignorance would silently lose results.  Returns
    ``(kept, pruned_count)`` with plan order preserved.

    >>> from repro.rdf.parser import parse_search_for
    >>> q = parse_search_for("SearchFor(x? : (x?, A#p, v))")
    >>> plan = plan_reformulations(q, MappingGraph())
    >>> prune_reformulations(plan, lambda r: 0.0)[0] == plan
    True
    """
    kept: list[Reformulation] = []
    pruned = 0
    for reformulation in plan:
        if reformulation.hops == 0:
            kept.append(reformulation)
            continue
        expected = expected_yield(reformulation)
        if expected is None or expected > min_expected_yield:
            kept.append(reformulation)
        else:
            pruned += 1
    return kept, pruned
