"""Query reformulation across the network of mappings (§3, §4).

"By iterating this process over several mappings, a query can traverse
a sequence of schemas at the mediation layer and retrieve all relevant
results, irrespective of their schemas."

This package holds the *logic* of reformulation — planning which
reformulated queries exist and along which mapping paths
(:mod:`repro.reformulation.planner`).  The two *distributed execution
strategies* of §4 (iterative: the issuing peer walks mapping paths
itself; recursive: successive reformulations are delegated to the
intermediate peers holding the mappings) are expressed as operator-
DAG plan shapes in :mod:`repro.exec.plans` on top of this logic, with
the recursive wire protocol living in :mod:`repro.mediation.peer`.

Planning is a pure function of (query, mapping graph), which is what
makes it cacheable: :mod:`repro.engine` wraps
:func:`~repro.reformulation.planner.plan_reformulations` in an
invalidation-aware plan cache so repeated and structurally identical
queries skip the BFS entirely.
"""

from repro.reformulation.planner import (
    Reformulation,
    plan_reformulations,
    reformulation_waves,
)

__all__ = ["Reformulation", "plan_reformulations", "reformulation_waves"]
