"""Legacy setup shim.

The environment used for the reproduction is offline and has no
``wheel`` package, so PEP 660 editable installs cannot build; keeping a
``setup.py`` (and no ``[build-system]`` table in pyproject.toml) lets
``pip install -e .`` fall back to the classic ``setup.py develop``
path, which works without network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Self-Organizing Schema Mappings in the "
        "GridVine Peer Data Management System' (VLDB 2007)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
