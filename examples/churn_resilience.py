#!/usr/bin/env python3
"""Churn resilience: probabilistic guarantees in a dynamic network.

§2.1: P-Grid's "Retrieve and Update operations provide probabilistic
guarantees for data consistency and are efficient even in highly
unreliable, dynamic environments."

This example deploys a replicated GridVine network, turns on both a
churn process (peers crash and recover continuously) and the overlay
maintenance loop (reference probing + replica anti-entropy), and
measures query success rates over time — with and without maintenance,
so the repair machinery's contribution is visible.

Run:  python examples/churn_resilience.py [--peers N] [--uptime S]
"""

import argparse
import random

from repro import GridVineNetwork, Literal, Schema, Triple, URI
from repro.pgrid.maintenance import MaintenanceProcess
from repro.simnet.churn import ChurnProcess


def deploy(num_peers, seed):
    net = GridVineNetwork.build(num_peers=num_peers, seed=seed,
                                replication=3, timeout=4.0, max_retries=1)
    schema = Schema("S", ["organism", "accession"], domain="churn-demo")
    net.insert_schema(schema)
    triples = []
    for i in range(60):
        triples.append(Triple(URI(f"S:e{i}"), URI("S#organism"),
                              Literal(f"Aspergillus strain {i:03d}")))
        triples.append(Triple(URI(f"S:e{i}"), URI("S#accession"),
                              Literal(f"P{10000 + i}")))
    net.insert_triples(triples)
    net.settle()
    return net


def run_epochs(net, origin, use_maintenance, departures_per_epoch, seed,
               epochs=6, epoch_length=300.0, queries_per_epoch=40):
    """Stage permanent departures; return per-epoch success rates.

    Each epoch a few peers leave *forever* (disk died, user gone).
    Without maintenance, routing tables silently rot: once every
    reference a peer holds toward some subtree is dead, queries into
    that subtree dead-end.  The maintenance loop detects the dead
    references and discovers live replicas of the departed peers
    through routed lookups, keeping the trie navigable.
    """
    maintenance = None
    if use_maintenance:
        maintenance = MaintenanceProcess(net.peers, interval=20.0,
                                         probe_timeout=4.0,
                                         rng=random.Random(seed))
        maintenance.start()
    rng = random.Random(seed + 1)
    rates = []
    departed: set[str] = set()
    candidates = [p for p in net.peer_ids() if p != origin]
    rng.shuffle(candidates)
    for _epoch in range(epochs):
        for _d in range(departures_per_epoch):
            if candidates:
                victim = candidates.pop()
                net.network.set_online(victim, False)
                departed.add(victim)
        net.loop.run_until(net.loop.now + epoch_length)
        answered = 0
        for _q in range(queries_per_epoch):
            i = rng.randrange(60)
            out = net.search_for(
                f'SearchFor(x? : (x?, S#organism, "Aspergillus strain '
                f'{i:03d}"))',
                strategy="local", origin=origin)
            if out.result_count == 1:
                answered += 1
        rates.append(answered / queries_per_epoch)
    if maintenance is not None:
        maintenance.stop()
    return rates, len(departed)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--peers", type=int, default=48)
    parser.add_argument("--departures", type=int, default=3,
                        help="permanent departures per epoch")
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    print(f"deploying {args.peers} peers, replication 3; "
          f"{args.departures} peers leave permanently each epoch\n")
    results = {}
    for use_maintenance in (False, True):
        net = deploy(args.peers, args.seed)
        origin = net.peer_ids()[0]
        rates, departed = run_epochs(net, origin, use_maintenance,
                                     args.departures, args.seed)
        label = "with maintenance" if use_maintenance else "no maintenance"
        results[label] = rates
        stats_total = {
            k: sum(p.maintenance_stats[k] for p in net.peers.values())
            for k in ("refs_dropped", "refs_added", "values_repaired")
        }
        print(f"{label}: {departed} peers departed over the run")
        print("  per-epoch query success: "
              + "  ".join(f"{r:.0%}" for r in rates))
        if use_maintenance:
            print(f"  repair totals: {stats_total}")
        print()

    mean_without = sum(results["no maintenance"]) / 6
    mean_with = sum(results["with maintenance"]) / 6
    print(f"mean success: {mean_without:.0%} without vs "
          f"{mean_with:.0%} with maintenance")


if __name__ == "__main__":
    main()
