#!/usr/bin/env python3
"""The §4 demonstration storyline on synthetic bioinformatic data.

Recreates the VLDB'07 demo script:

1. generate a corpus of bioinformatic schemas and protein records
   (substituting the EBI/SRS export — see DESIGN.md);
2. insert data, schemas and a few manually created mappings into a
   network of a few hundred peers;
3. monitor the connectivity indicator at the mediation layer while the
   self-organization loop creates mappings automatically;
4. issue the same semantic query throughout and watch recall grow as
   the mapping network densifies;
5. remove some mappings and watch replacements appear.

Run:  python examples/bioinformatics_demo.py  [--peers N] [--schemas N]
"""

import argparse

from repro import GridVineNetwork
from repro.datagen import BioDatasetGenerator, QueryWorkloadGenerator
from repro.selforg import CreationPolicy, SelfOrganizationController


def relevant_entries(dataset, needle: str) -> set[str]:
    """Ground truth: subjects of every record whose organism matches."""
    return {
        f"{schema.name}:{entity.accession}"
        for schema in dataset.schemas
        for entity in dataset.coverage[schema.name]
        if needle in entity.value("organism")
    }


def measure_recall(net, query, truth) -> tuple[int, float]:
    """Run the query with reformulation; return (hits, recall)."""
    outcome = net.search_for(query, strategy="iterative", max_hops=8)
    hits = {str(row[0]).strip("<>") for row in outcome.results}
    found = len(hits & truth)
    return found, found / len(truth) if truth else 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--peers", type=int, default=200)
    parser.add_argument("--schemas", type=int, default=20)
    parser.add_argument("--entities", type=int, default=150)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print("=== 1. generating the corpus ===")
    dataset = BioDatasetGenerator(
        num_schemas=args.schemas,
        num_entities=args.entities,
        entities_per_schema=max(10, args.entities // 5),
        seed=args.seed,
    ).generate()
    print(f"{len(dataset.schemas)} schemas, {len(dataset.triples)} triples, "
          f"{len(dataset.entities)} shared protein entities")

    print("\n=== 2. deploying the network ===")
    net = GridVineNetwork.build(num_peers=args.peers, seed=args.seed,
                                replication=2)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    net.settle()
    print(f"{args.peers} peers; "
          f"{net.total_triples_stored()} triple copies stored "
          f"(3 keys x replication)")

    # Manual mappings seed the graph (the demo starts from "a set of
    # manually created mappings"): the schemas are paired off, so
    # every schema touches a mapping but the graph is far from
    # strongly connected and the indicator starts negative.
    names = [s.name for s in dataset.schemas]
    for i in range(0, len(names) - 1, 2):
        net.insert_mapping(dataset.ground_truth_mapping(names[i],
                                                        names[i + 1]))
    net.settle()

    workload = QueryWorkloadGenerator(dataset, seed=args.seed)
    query = workload.concept_query(dataset.schemas[0].name, "organism",
                                   "Aspergillus")
    truth = relevant_entries(dataset, "Aspergillus")
    print(f"probe query: {query}")
    print(f"ground truth: {len(truth)} relevant entries across all schemas")

    print("\n=== 3./4. the self-organization loop ===")
    controller = SelfOrganizationController(
        net, domain=dataset.domain,
        policy=CreationPolicy(mappings_per_round=4),
    )
    found, recall = measure_recall(net, query, truth)
    ci = net.connectivity_indicator(dataset.domain)
    print(f"round -: ci {ci:+.3f}  recall {found}/{len(truth)} = {recall:.0%}")
    for report in controller.run(max_rounds=10):
        found, recall = measure_recall(net, query, truth)
        print(f"round {report.round_index}: "
              f"ci {report.ci_before:+.3f} -> {report.ci_after:+.3f}  "
              f"+{len(report.created)} mappings, "
              f"-{len(report.deprecated)} deprecated  "
              f"recall {found}/{len(truth)} = {recall:.0%}")

    print("\n=== 5. removing mappings fosters replacements ===")
    graph = net.mapping_graph(dataset.domain)
    # keep removing automatic mappings until the indicator notices the
    # damage (degree-based estimates are optimistic, so a single
    # removal rarely flips the sign)
    removable = []
    for mapping in [m for m in graph.mappings()
                    if m.provenance == "auto"]:
        net.remove_mapping(mapping)
        removable.append(mapping)
        net.settle()
        if net.connectivity_indicator(dataset.domain) < 0:
            break
    ci = net.connectivity_indicator(dataset.domain)
    found, recall = measure_recall(net, query, truth)
    print(f"removed {len(removable)} mappings: ci {ci:+.3f}, "
          f"recall {recall:.0%}")
    for report in controller.run(max_rounds=6):
        found, recall = measure_recall(net, query, truth)
        print(f"round {report.round_index}: "
              f"ci {report.ci_before:+.3f} -> {report.ci_after:+.3f}  "
              f"+{len(report.created)}  recall {recall:.0%}")

    print("\nnetwork totals:", net.metrics_snapshot())


if __name__ == "__main__":
    main()
