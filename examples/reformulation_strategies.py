#!/usr/bin/env python3
"""Iterative vs recursive reformulation along a mapping chain.

§4: "In reformulating queries, we support two approaches: iterative,
where a peer iteratively looks for paths of mappings and reformulates
the query by itself, and recursive, where the successive
reformulations are delegated to intermediate peers."

This example builds a chain of schemas ``S0 -> S1 -> ... -> Sk`` with
one mapping per hop, inserts one matching record per schema, and runs
the same query under both strategies — showing that they return the
same answers while spending messages and latency differently:

* *iterative* pays a schema-key retrieve per discovered schema, then a
  data lookup per reformulation, all round-tripping through the origin;
* *recursive* pipelines the hops: each schema peer forwards the
  reformulated query onward while already answering its own part.

Run:  python examples/reformulation_strategies.py [--chain K]
"""

import argparse

from repro import GridVineNetwork, Literal, Schema, Triple, URI
from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
from repro.rdf.terms import Variable
from repro.simnet import LogNormalWANLatency


def build_chain(net: GridVineNetwork, length: int) -> list[Schema]:
    """Schemas S0..Sk, one record each, one mapping per hop."""
    schemas = []
    for i in range(length + 1):
        schema = Schema(f"S{i}", [f"organism{i}", f"acc{i}"], domain="chain")
        schemas.append(schema)
        net.insert_schema(schema)
        net.insert_triples([
            Triple(URI(f"S{i}:entry-{i}"), URI(f"S{i}#organism{i}"),
                   Literal("Aspergillus niger")),
        ])
    for i in range(length):
        net.create_mapping(
            schemas[i], schemas[i + 1],
            [(f"organism{i}", f"organism{i + 1}")],
        )
    net.settle()
    return schemas


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chain", type=int, default=5,
                        help="number of mapping hops")
    parser.add_argument("--peers", type=int, default=64)
    args = parser.parse_args()

    net = GridVineNetwork.build(num_peers=args.peers, seed=3,
                                latency=LogNormalWANLatency())
    schemas = build_chain(net, args.chain)
    print(f"chain of {len(schemas)} schemas / {args.chain} mappings "
          f"over {args.peers} peers\n")

    query = ConjunctiveQuery(
        [TriplePattern(Variable("x"), URI("S0#organism0"),
                       Literal("%Aspergillus%"))],
        [Variable("x")],
    )
    print(f"query: {query}\n")

    header = f"{'strategy':<12} {'results':>7} {'refos':>6} " \
             f"{'latency':>9} {'messages':>9}"
    print(header)
    print("-" * len(header))
    for strategy in ("local", "iterative", "recursive"):
        net.network.metrics.reset()
        outcome = net.search_for(query, strategy=strategy,
                                 max_hops=args.chain + 1)
        messages = net.metrics_snapshot()["messages_sent"]
        print(f"{strategy:<12} {outcome.result_count:>7} "
              f"{outcome.reformulations_explored:>6} "
              f"{outcome.latency:>8.2f}s {messages:>9}")

    print("\nEvery strategy that reformulates reaches all "
          f"{args.chain + 1} schemas' records; the local strategy only "
          "sees schema S0.")


if __name__ == "__main__":
    main()
