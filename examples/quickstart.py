#!/usr/bin/env python3
"""Quickstart: the paper's Figure 2 scenario, end to end.

Builds a small GridVine network, shares two bioinformatic schemas
(EMBL and EMP), inserts a handful of triples, defines the
``EMBL#Organism -> EMP#SystematicName`` mapping, and shows how the
``%Aspergillus%`` query of Figure 2 is reformulated across the mapping
so that results from *both* schemas are retrieved.

Run:  python examples/quickstart.py
"""

from repro import (
    GridVineNetwork,
    Literal,
    Schema,
    Triple,
    URI,
    parse_search_for,
)


def main() -> None:
    # 1. Build a simulated deployment: 32 peers, deterministic seed.
    net = GridVineNetwork.build(num_peers=32, seed=7)
    print(f"built a GridVine network of {len(net.peers)} peers")

    # 2. Share two schemas of the same application domain.
    embl = Schema("EMBL", ["Organism", "SeqLength", "Accession"],
                  domain="bio")
    emp = Schema("EMP", ["SystematicName", "Length", "AccNumber"],
                 domain="bio")
    net.insert_schema(embl)
    net.insert_schema(emp)

    # 3. Share data structured under each schema (each triple is
    #    indexed three times: by subject, predicate and object).
    triples = [
        Triple(URI("EMBL:A78712"), URI("EMBL#Organism"),
               Literal("Aspergillus niger")),
        Triple(URI("EMBL:A78767"), URI("EMBL#Organism"),
               Literal("Aspergillus awamori")),
        Triple(URI("EMBL:X99012"), URI("EMBL#Organism"),
               Literal("Saccharomyces cerevisiae")),
        Triple(URI("EMP:NEN94295-05"), URI("EMP#SystematicName"),
               Literal("Aspergillus oryzae")),
    ]
    net.insert_triples(triples)
    net.settle()
    print(f"inserted {len(triples)} triples "
          f"({net.metrics_snapshot()['messages_sent']} messages so far)")

    # 4. Without any mapping, the query only sees the EMBL world.
    query = parse_search_for(
        "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))"
    )
    before = net.search_for(query, strategy="local")
    print(f"\nno mapping    : {sorted(map(str, before.sorted_results()))}")

    # 5. Define the Figure 2 mapping and query again: reformulation
    #    reaches the EMP data too.
    net.create_mapping(embl, emp, [("Organism", "SystematicName")])
    net.settle()
    for strategy in ("iterative", "recursive"):
        after = net.search_for(query, strategy=strategy)
        print(f"{strategy:<14}: {sorted(map(str, after.sorted_results()))} "
              f"(latency {after.latency:.2f}s simulated, "
              f"{after.reformulations_explored} reformulation(s))")

    # 6. Per-schema attribution, exactly like Figure 2's x1/x2 sets.
    print("\nresults by (re)formulated query:")
    for produced_by, rows in sorted(after.results_by_query.items(),
                                    key=lambda kv: str(kv[0])):
        print(f"  {produced_by}")
        print(f"    -> {sorted(map(str, rows))}")

    # 7. The connectivity indicator of the 'bio' domain: one directed
    #    mapping between two schemas is not enough for a strongly
    #    connected mediation layer, and the indicator says so (ci < 0).
    ci = net.connectivity_indicator("bio")
    print(f"\nconnectivity indicator ci = {ci:+.3f} "
          f"({'connected' if ci >= 0 else 'more mappings needed'})")


if __name__ == "__main__":
    main()
