#!/usr/bin/env python3
"""Mapping deprecation: the Bayesian cycle analysis in action (§3.2).

Builds a small mediation layer where user mappings form a reliable
backbone, injects a deliberately *wrong* automatic mapping alongside a
correct one, and runs the quality assessment:

* cycles through the wrong mapping compose to non-identity
  correspondences → inconsistent evidence;
* the posterior of the wrong mapping collapses below the deprecation
  threshold while the correct automatic mapping's rises;
* after deprecation, query reformulation stops using the wrong edge —
  answers through the bad mapping disappear, answers through the good
  path remain.

Run:  python examples/selforganizing_deprecation.py
"""

import random

from repro import GridVineNetwork
from repro.datagen import BioDatasetGenerator, QueryWorkloadGenerator
from repro.selforg import DeprecationConfig, assess_mapping_quality


def main() -> None:
    dataset = BioDatasetGenerator(
        num_schemas=4, num_entities=60, entities_per_schema=30, seed=9,
    ).generate()
    a, b, c, d = (s.name for s in dataset.schemas)
    net = GridVineNetwork.build(num_peers=48, seed=9)
    for schema in dataset.schemas:
        net.insert_schema(schema)
    net.insert_triples(dataset.triples)
    net.settle()

    # Backbone of user mappings: A <-> B <-> C <-> D (all correct).
    for x, y in ((a, b), (b, c), (c, d)):
        net.insert_mapping(dataset.ground_truth_mapping(x, y),
                           bidirectional=True)
    # Two automatic mappings closing the D -> A cycle: one correct,
    # one corrupted (attributes of different concepts related).
    good = dataset.ground_truth_mapping(d, a, mapping_id="auto:good:D->A",
                                        provenance="auto")
    bad = dataset.corrupted_mapping(d, a, random.Random(1),
                                    mapping_id="auto:bad:D->A")
    net.insert_mapping(good)
    net.insert_mapping(bad)
    net.settle()

    print("mapping graph:")
    graph = net.mapping_graph(dataset.domain)
    for mapping in graph.mappings():
        print(f"  {mapping.mapping_id:<24} [{mapping.provenance}]")

    config = DeprecationConfig()
    posteriors = assess_mapping_quality(graph, config)
    print("\nposterior correctness (threshold "
          f"{config.threshold}):")
    for mapping_id, posterior in sorted(posteriors.items()):
        verdict = "DEPRECATE" if posterior < config.threshold else "keep"
        print(f"  {mapping_id:<24} {posterior:.3f}  -> {verdict}")

    # Apply the deprecations through the overlay and show the effect
    # on reformulation.
    workload = QueryWorkloadGenerator(dataset, seed=2)
    query = workload.concept_query(d, "organism", "Aspergillus")
    before = net.search_for(query, strategy="iterative", max_hops=4)
    for mapping in graph.mappings():
        if (not mapping.is_user_defined
                and posteriors[mapping.mapping_id] < config.threshold):
            net.deprecate_mapping(mapping)
    net.settle()
    after = net.search_for(query, strategy="iterative", max_hops=4)

    print(f"\nquery {query}")
    print(f"  before deprecation: {before.result_count} results "
          f"({before.reformulations_explored} reformulations)")
    print(f"  after  deprecation: {after.result_count} results "
          f"({after.reformulations_explored} reformulations)")
    bogus = before.results - after.results
    print(f"  answers produced only through the bad mapping: {len(bogus)}")


if __name__ == "__main__":
    main()
