"""Tests for the synthetic bioinformatic corpus generator."""

import random

import pytest

from repro.datagen.concepts import CONCEPT_SYNONYMS, CORE_CONCEPTS
from repro.datagen.entities import generate_entities
from repro.datagen.generator import BioDatasetGenerator
from repro.datagen.workload import QueryWorkloadGenerator
from repro.rdf.terms import Variable
from repro.storage.triplestore import TripleStore


class TestEntities:
    def test_distinct_accessions(self):
        entities = generate_entities(50, random.Random(1))
        accessions = [e.accession for e in entities]
        assert len(set(accessions)) == 50

    def test_every_concept_has_a_value(self):
        entity = generate_entities(1, random.Random(2))[0]
        for concept in CONCEPT_SYNONYMS:
            assert entity.value(concept)

    def test_value_raises_on_unknown_concept(self):
        entity = generate_entities(1, random.Random(2))[0]
        with pytest.raises(KeyError):
            entity.value("nonexistent")

    def test_deterministic_under_seed(self):
        a = generate_entities(10, random.Random(3))
        b = generate_entities(10, random.Random(3))
        assert a == b

    def test_seq_length_consistent_with_description(self):
        entity = generate_entities(1, random.Random(4))[0]
        organism = entity.value("organism")
        assert organism in entity.value("description")


class TestGenerator:
    def test_schema_count(self, bio_dataset):
        assert len(bio_dataset.schemas) == 8

    def test_schema_names_unique(self, bio_dataset):
        names = [s.name for s in bio_dataset.schemas]
        assert len(set(names)) == len(names)

    def test_more_than_20_schemas_get_numbered_names(self):
        ds = BioDatasetGenerator(num_schemas=25, num_entities=30,
                                 entities_per_schema=5, seed=1).generate()
        names = [s.name for s in ds.schemas]
        assert len(set(names)) == 25

    def test_core_concepts_in_every_schema(self, bio_dataset):
        for schema in bio_dataset.schemas:
            concepts = set(
                bio_dataset.attribute_concepts[schema.name].values())
            for core in CORE_CONCEPTS:
                assert core in concepts

    def test_attribute_names_come_from_synonym_pools(self, bio_dataset):
        for schema in bio_dataset.schemas:
            for attr, concept in (
                    bio_dataset.attribute_concepts[schema.name].items()):
                assert attr in CONCEPT_SYNONYMS[concept]

    def test_triples_use_schema_predicates(self, bio_dataset):
        for schema in bio_dataset.schemas:
            for triple in bio_dataset.triples_by_schema[schema.name]:
                assert schema.owns_predicate(triple.predicate)

    def test_triple_count_matches_coverage(self, bio_dataset):
        for schema in bio_dataset.schemas:
            expected = (len(bio_dataset.coverage[schema.name])
                        * len(schema.attributes))
            assert len(bio_dataset.triples_by_schema[schema.name]) == expected

    def test_shared_entities_share_values(self, bio_dataset):
        # The same entity covered by two schemas carries identical
        # canonical values — the precondition for set-distance matching.
        a, b = bio_dataset.schemas[0], bio_dataset.schemas[1]
        shared = (set(bio_dataset.coverage[a.name])
                  & set(bio_dataset.coverage[b.name]))
        if not shared:
            pytest.skip("no shared entities in this draw")
        entity = next(iter(shared))
        acc_a = bio_dataset.concept_attribute(a.name, "accession")
        acc_b = bio_dataset.concept_attribute(b.name, "accession")
        store_a = TripleStore()
        store_a.add_all(bio_dataset.triples_by_schema[a.name])
        values_a = {
            t.object.value for t in store_a.all_triples()
            if t.predicate == a.predicate(acc_a)
        }
        assert entity.accession in values_a
        assert acc_b is not None

    def test_ground_truth_pairs_symmetric(self, bio_dataset):
        a, b = bio_dataset.schemas[0].name, bio_dataset.schemas[1].name
        ab = bio_dataset.ground_truth_pairs(a, b)
        ba = bio_dataset.ground_truth_pairs(b, a)
        assert {(y, x) for x, y in ab} == set(ba)

    def test_ground_truth_mapping_is_valid(self, bio_dataset):
        a, b = bio_dataset.schemas[0].name, bio_dataset.schemas[1].name
        mapping = bio_dataset.ground_truth_mapping(a, b)
        assert mapping.source_schema == a
        assert mapping.target_schema == b
        assert mapping.is_user_defined

    def test_corrupted_mapping_has_no_correct_pair(self, bio_dataset):
        a, b = bio_dataset.schemas[0].name, bio_dataset.schemas[1].name
        gt = set(bio_dataset.ground_truth_pairs(a, b))
        bad = bio_dataset.corrupted_mapping(a, b, random.Random(7))
        bad_pairs = {(c.source.local_name, c.target.local_name)
                     for c in bad.correspondences}
        assert not (bad_pairs & gt)

    def test_deterministic_under_seed(self):
        kwargs = dict(num_schemas=5, num_entities=40,
                      entities_per_schema=10, seed=11)
        a = BioDatasetGenerator(**kwargs).generate()
        b = BioDatasetGenerator(**kwargs).generate()
        assert a.triples == b.triples
        assert a.attribute_concepts == b.attribute_concepts

    def test_validates_args(self):
        with pytest.raises(ValueError):
            BioDatasetGenerator(num_schemas=0)
        with pytest.raises(ValueError):
            BioDatasetGenerator(num_entities=5, entities_per_schema=10)

    def test_default_scale_matches_paper(self):
        gen = BioDatasetGenerator()
        assert gen.num_schemas == 50  # "50 distinct schemas"


class TestWorkload:
    def test_queries_are_satisfiable(self, bio_dataset):
        store = TripleStore()
        store.add_all(bio_dataset.triples)
        workload = QueryWorkloadGenerator(bio_dataset, seed=13)
        for query in workload.queries(50):
            pattern = query.patterns[0]
            assert store.match(pattern), f"unsatisfiable: {query}"

    def test_queries_are_routable(self, bio_dataset):
        workload = QueryWorkloadGenerator(bio_dataset, seed=14)
        for query in workload.queries(50):
            query.patterns[0].routing_position()  # must not raise

    def test_mix_of_query_shapes(self, bio_dataset):
        workload = QueryWorkloadGenerator(bio_dataset, seed=15)
        queries = workload.queries(200)
        like = sum(
            1 for q in queries
            if getattr(q.patterns[0].object, "is_like_pattern", False))
        subject_lookups = sum(
            1 for q in queries
            if not isinstance(q.patterns[0].subject, Variable))
        assert like > 20
        assert subject_lookups > 10

    def test_concept_query_targets_right_attribute(self, bio_dataset):
        schema = bio_dataset.schemas[0]
        workload = QueryWorkloadGenerator(bio_dataset, seed=16)
        query = workload.concept_query(schema.name, "organism", "Asp")
        predicate = query.patterns[0].predicate
        concept = bio_dataset.attribute_concepts[schema.name][
            predicate.local_name]
        assert concept == "organism"

    def test_concept_query_unknown_concept_raises(self, bio_dataset):
        workload = QueryWorkloadGenerator(bio_dataset, seed=17)
        missing = None
        for schema in bio_dataset.schemas:
            if bio_dataset.concept_attribute(schema.name, "host") is None:
                missing = schema.name
                break
        if missing is None:
            pytest.skip("every schema has 'host' in this draw")
        with pytest.raises(ValueError):
            workload.concept_query(missing, "host", "x")

    def test_fraction_validation(self, bio_dataset):
        with pytest.raises(ValueError):
            QueryWorkloadGenerator(bio_dataset, like_fraction=0.9,
                                   subject_fraction=0.9)
