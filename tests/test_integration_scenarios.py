"""Integration scenarios crossing all layers of the system."""

import random

import pytest

from repro.mediation.network import GridVineNetwork
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.simnet.churn import ChurnProcess
from repro.simnet.latency import LogNormalWANLatency


class TestDemonstrationStoryline:
    """§4 compressed: insert, fragment, organize, deprecate, recover."""

    def test_full_storyline(self):
        from repro.datagen import BioDatasetGenerator, QueryWorkloadGenerator
        from repro.selforg import (
            CreationPolicy,
            SelfOrganizationController,
        )
        dataset = BioDatasetGenerator(
            num_schemas=6, num_entities=60, entities_per_schema=20, seed=21,
        ).generate()
        net = GridVineNetwork.build(num_peers=24, seed=21)
        for schema in dataset.schemas:
            net.insert_schema(schema)
        net.insert_triples(dataset.triples)
        net.insert_mapping(
            dataset.ground_truth_mapping(dataset.schemas[0].name,
                                         dataset.schemas[1].name),
            bidirectional=True,
        )
        net.settle()

        workload = QueryWorkloadGenerator(dataset, seed=22)
        query = workload.concept_query(dataset.schemas[0].name,
                                       "organism", "Aspergillus")

        # Sparse mapping network: low recall.
        sparse = net.search_for(query, strategy="iterative", max_hops=8)

        controller = SelfOrganizationController(
            net, domain=dataset.domain,
            policy=CreationPolicy(mappings_per_round=3),
        )
        reports = controller.run(max_rounds=10)
        dense = net.search_for(query, strategy="iterative", max_hops=8)

        assert reports[-1].ci_after >= 0
        assert dense.result_count >= sparse.result_count
        assert dense.result_count > 0

        # Removing mappings re-fragments; the loop recreates them.
        graph = net.mapping_graph(dataset.domain)
        removable = [m for m in graph.mappings()
                     if m.provenance == "auto"][:4]
        for mapping in removable:
            net.remove_mapping(mapping)
        net.settle()
        recovery = controller.run(max_rounds=10)
        assert recovery[-1].ci_after >= 0


class TestChurnDuringQueries:
    def test_queries_survive_moderate_churn(self):
        net = GridVineNetwork.build(num_peers=40, seed=31, replication=3,
                                    timeout=5.0, max_retries=3)
        schema = Schema("S", ["attr"], domain="churny")
        net.insert_schema(schema)
        triples = [
            Triple(URI(f"S:e{i}"), URI("S#attr"), Literal(f"value-{i}"))
            for i in range(30)
        ]
        net.insert_triples(triples)
        net.settle()
        churn = ChurnProcess(net.network, mean_uptime=200.0,
                             mean_downtime=20.0, rng=random.Random(31))
        churn.start()
        answered = 0
        for i in range(30):
            out = net.search_for(
                f'SearchFor(x? : (x?, S#attr, "value-{i}"))',
                strategy="local")
            if out.result_count == 1:
                answered += 1
        churn.stop()
        assert answered >= 25  # probabilistic guarantees, not absolutes


class TestWanLatencyProfile:
    def test_latency_distribution_shape(self):
        """Sanity-check the E2 machinery at reduced scale: a heavy
        tail exists but most queries answer quickly."""
        net = GridVineNetwork.build(
            num_peers=60, seed=41, replication=2,
            latency=LogNormalWANLatency(),
        )
        schema = Schema("S", ["attr"], domain="wan")
        net.insert_schema(schema)
        net.insert_triples([
            Triple(URI(f"S:e{i}"), URI("S#attr"), Literal(f"v{i}"))
            for i in range(40)
        ])
        net.settle()
        latencies = []
        for i in range(60):
            out = net.search_for(
                f'SearchFor(x? : (x?, S#attr, "v{i % 40}"))',
                strategy="local")
            latencies.append(out.latency)
        fast = sum(1 for lat in latencies if lat <= 1.0) / len(latencies)
        slow = sum(1 for lat in latencies if lat > 5.0) / len(latencies)
        assert fast >= 0.25       # a decent share answers fast
        assert slow <= 0.5        # but the tail is fat, not dominant


class TestMessageComplexity:
    @pytest.mark.parametrize("num_peers", [16, 64])
    def test_route_hops_grow_logarithmically(self, num_peers):
        net = GridVineNetwork.build(num_peers=num_peers, seed=51)
        schema = Schema("S", ["attr"], domain="hops")
        net.insert_schema(schema)
        net.insert_triples([
            Triple(URI(f"S:e{i}"), URI("S#attr"), Literal(f"v{i}"))
            for i in range(20)
        ])
        net.settle()
        max_depth = max(len(p.path) for p in net.peers.values())
        # Constant-latency model: per-query latency / 0.05 bounds the
        # total number of sequential hops (route chain + reply).
        for i in range(20):
            out = net.search_for(
                f'SearchFor(x? : (x?, S#attr, "v{i}"))', strategy="local")
            hops = out.latency / 0.05
            assert hops <= max_depth + 2
