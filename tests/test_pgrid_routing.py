"""Tests for P-Grid routing: Retrieve/Update correctness and bounds."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgrid.overlay import PGridOverlay
from repro.simnet.churn import ChurnProcess
from repro.util.hashing import order_preserving_hash, uniform_hash
from repro.util.keys import Key


def build(n, **kwargs):
    kwargs.setdefault("seed", 11)
    return PGridOverlay.build(n, **kwargs)


class TestUpdateRetrieve:
    def test_round_trip(self):
        overlay = build(8)
        key = uniform_hash("some-key")
        origin = overlay.peer_ids()[0]
        result = overlay.update_sync(origin, key, "payload")
        assert result.success
        got = overlay.retrieve_sync(overlay.peer_ids()[3], key)
        assert got.success
        assert got.values == ["payload"]

    def test_retrieve_missing_key_returns_empty(self):
        overlay = build(8)
        got = overlay.retrieve_sync(
            overlay.peer_ids()[0], uniform_hash("never-inserted"))
        assert got.success
        assert got.values == []

    def test_multiple_values_accumulate(self):
        overlay = build(8)
        key = uniform_hash("k")
        origin = overlay.peer_ids()[0]
        overlay.update_sync(origin, key, "a")
        overlay.update_sync(origin, key, "b")
        got = overlay.retrieve_sync(origin, key)
        assert sorted(got.values) == ["a", "b"]

    def test_remove_deletes_value(self):
        overlay = build(8)
        key = uniform_hash("k")
        origin = overlay.peer_ids()[0]
        overlay.update_sync(origin, key, "a")
        overlay.update_sync(origin, key, "b")
        overlay.update_sync(origin, key, "a", action="remove")
        got = overlay.retrieve_sync(origin, key)
        assert got.values == ["b"]

    def test_unknown_action_rejected(self):
        overlay = build(4)
        with pytest.raises(ValueError):
            overlay.peers[overlay.peer_ids()[0]].update(
                Key("0"), "x", action="upsert")

    def test_value_lands_on_responsible_peer(self):
        overlay = build(16)
        key = uniform_hash("where-does-it-go")
        overlay.update_sync(overlay.peer_ids()[0], key, "v")
        owners = overlay.responsible_peers(key)
        assert owners
        for owner in owners:
            assert overlay.peer(owner).local_retrieve(key) == ["v"]

    def test_replication_copies_to_whole_group(self):
        overlay = build(12, replication=3)
        key = uniform_hash("replicated")
        overlay.update_sync(overlay.peer_ids()[0], key, "v")
        overlay.loop.run_until_idle()  # let replicate messages land
        owners = overlay.responsible_peers(key)
        assert len(owners) == 3
        for owner in owners:
            assert overlay.peer(owner).local_retrieve(key) == ["v"]

    def test_hop_count_bounded_by_max_depth(self):
        overlay = build(64)
        max_depth = max(overlay.trie_depths())
        origin = overlay.peer_ids()[0]
        for i in range(30):
            result = overlay.retrieve_sync(
                origin, uniform_hash(f"probe-{i}"))
            assert result.success
            assert result.hops <= max_depth

    def test_origin_responsible_means_zero_hops(self):
        overlay = build(8)
        origin = overlay.peer_ids()[0]
        peer = overlay.peer(origin)
        key = peer.path.concat(Key("0" * (128 - len(peer.path))))
        result = overlay.retrieve_sync(origin, key)
        assert result.success
        assert result.hops == 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 40), st.text(
        alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
        min_size=1, max_size=20))
    def test_any_peer_retrieves_any_inserted_key(self, n, data):
        overlay = build(n)
        key = order_preserving_hash(data)
        ids = overlay.peer_ids()
        assert overlay.update_sync(ids[0], key, data).success
        got = overlay.retrieve_sync(ids[-1], key)
        assert got.success
        assert data in got.values


class TestPrefixRetrieve:
    def test_prefix_retrieve_finds_extensions(self):
        overlay = build(8)
        origin = overlay.peer_ids()[0]
        base = order_preserving_hash("EMBL#Organism")
        overlay.update_sync(origin, base, "v1")
        # a nearby key sharing a long prefix
        sibling = order_preserving_hash("EMBL#Organisn")
        overlay.update_sync(origin, sibling, "v2")
        depth = max(overlay.trie_depths())
        prefix = base.prefix(max(depth, 20))
        result = overlay.loop.run_until_complete(
            overlay.peer(origin).retrieve_prefix(prefix))
        assert result.success
        assert "v1" in result.values


class TestChurnResilience:
    def test_retries_through_replicas_under_churn(self):
        overlay = build(24, replication=3, timeout=5.0, max_retries=4)
        origin = overlay.peer_ids()[0]
        keys = [uniform_hash(f"key-{i}") for i in range(20)]
        for i, key in enumerate(keys):
            overlay.update_sync(origin, key, f"value-{i}")
        overlay.loop.run_until_idle()
        churn = ChurnProcess(overlay.network, mean_uptime=120.0,
                             mean_downtime=20.0, rng=random.Random(5),
                             protected={origin})
        churn.start()
        successes = 0
        for key in keys:
            result = overlay.retrieve_sync(origin, key)
            if result.success and result.values:
                successes += 1
        churn.stop()
        # Probabilistic guarantee: the vast majority must succeed.
        assert successes >= 17

    def test_failure_reported_when_owners_dead(self):
        overlay = build(8, timeout=2.0, max_retries=1)
        key = uniform_hash("lost")
        origin = overlay.peer_ids()[0]
        overlay.update_sync(origin, key, "v")
        owners = overlay.responsible_peers(key)
        if origin in owners:
            pytest.skip("origin owns the key; cannot simulate loss")
        for owner in owners:
            overlay.network.set_online(owner, False)
        result = overlay.retrieve_sync(origin, key)
        assert not result.success
        # base attempts (max_retries + 1) plus the failover budget
        # granted while untried first-hop alternates remain
        peer = overlay.peer(origin)
        assert 2 <= result.attempts <= 2 + peer.failover_retries

    def test_failure_attempts_exact_without_failover(self):
        overlay = build(8, timeout=2.0, max_retries=1)
        for peer in overlay.peers.values():
            peer.failover = False
        key = uniform_hash("lost")
        origin = overlay.peer_ids()[0]
        overlay.update_sync(origin, key, "v")
        owners = overlay.responsible_peers(key)
        if origin in owners:
            pytest.skip("origin owns the key; cannot simulate loss")
        for owner in owners:
            overlay.network.set_online(owner, False)
        result = overlay.retrieve_sync(origin, key)
        assert not result.success
        assert result.attempts == 2

    def test_failover_skips_dead_reference_at_every_hop(self):
        """With failover on, a retrieve succeeds as long as one replica
        of every subtree on the path is alive: dead references are
        skipped at forwarding time instead of eating a timeout."""
        overlay = build(24, replication=3, timeout=5.0, max_retries=1)
        origin = overlay.peer_ids()[0]
        key = uniform_hash("precious")
        overlay.update_sync(origin, key, "v")
        overlay.loop.run_until_idle()
        owners = overlay.responsible_peers(key)
        if origin in owners:
            pytest.skip("origin owns the key; cannot simulate loss")
        # Kill all but one owner: failover must find the survivor.
        for owner in owners[:-1]:
            overlay.network.set_online(owner, False)
        result = overlay.retrieve_sync(origin, key)
        assert result.success
        assert "v" in result.values


class TestLoadBalancing:
    def test_sample_driven_overlay_spreads_skewed_load(self):
        rng = random.Random(0)
        # Skewed key population: all keys sit in the narrow band of
        # two-letter-alphabet strings, diverging within a few chars.
        keys = [
            order_preserving_hash(
                "".join(rng.choice("no") for _ in range(10)))
            for _ in range(300)
        ]
        adapted = PGridOverlay.build(16, key_sample=keys, seed=3)
        uniform = PGridOverlay.build(16, seed=3)
        for overlay in (adapted, uniform):
            origin = overlay.peer_ids()[0]
            for i, key in enumerate(rng.sample(keys, 150)):
                overlay.update_sync(origin, key, i)
        assert max(adapted.storage_loads()) < max(uniform.storage_loads())
