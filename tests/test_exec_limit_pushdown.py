"""Integration tests: limit pushdown and cooperative cancellation.

Covers the streaming semantics end to end — every strategy honours a
pushed-down limit, cancellation stops in-flight retries without
spending further messages (even under churn with failover retries
pending), and the per-operation metrics scopes close cleanly after a
cancel.
"""

import random

import pytest

from repro.mediation.keys import term_key
from repro.mediation.network import GridVineNetwork
from repro.rdf.patterns import TriplePattern
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.triples import Triple
from repro.schema.model import Schema
from repro.simnet.churn import ChurnProcess
from repro.simnet.events import CancelToken

X, Y = Variable("x"), Variable("y")


def deploy_chain(num_schemas=4, matches_per_schema=6, seed=29,
                 **build_kwargs):
    """A chain of mapped schemas, each holding matching rows."""
    build_kwargs.setdefault("num_peers", 32)
    net = GridVineNetwork.build(seed=seed, **build_kwargs)
    schemas = [Schema(f"S{i}", ["org", "len"], domain="lp")
               for i in range(num_schemas)]
    for schema in schemas:
        net.insert_schema(schema)
    triples = []
    for i, schema in enumerate(schemas):
        for j in range(matches_per_schema):
            subject = URI(f"{schema.name}:e{j}")
            triples.append(Triple(subject, URI(f"{schema.name}#org"),
                                  Literal(f"Aspergillus-{i}-{j}")))
            triples.append(Triple(subject, URI(f"{schema.name}#len"),
                                  Literal(str(100 + j))))
    net.insert_triples(triples)
    for a, b in zip(schemas, schemas[1:]):
        net.create_mapping(a, b, [("org", "org"), ("len", "len")],
                           origin=net.peer_ids()[0])
    net.settle()
    return net


QUERY = "SearchFor(x? : (x?, S0#org, %Aspergillus%))"


class TestLimitPushdownStrategies:
    @pytest.mark.parametrize("strategy", ["local", "iterative",
                                          "recursive"])
    def test_limit_caps_results_and_flags_hit(self, strategy):
        net = deploy_chain()
        origin = net.peer_ids()[0]
        out = net.search_for(QUERY, strategy=strategy, max_hops=8,
                             origin=origin, limit=4)
        assert out.result_count == 4
        assert out.limit_hit
        assert out.limit == 4
        assert out.first_result_latency is not None
        assert out.first_result_latency <= out.latency

    def test_limited_results_subset_of_unlimited(self):
        net = deploy_chain()
        origin = net.peer_ids()[0]
        unlimited = net.search_for(QUERY, strategy="iterative",
                                   max_hops=8, origin=origin)
        net2 = deploy_chain()
        limited = net2.search_for(QUERY, strategy="iterative",
                                  max_hops=8, origin=origin, limit=4)
        assert limited.results <= unlimited.results
        assert not unlimited.limit_hit
        assert unlimited.result_count == 24

    def test_limit_saves_messages_iterative(self):
        origin = None
        nets = [deploy_chain(), deploy_chain()]
        origin = nets[0].peer_ids()[0]
        unlimited = nets[0].search_for(QUERY, strategy="iterative",
                                       max_hops=8, origin=origin)
        limited = nets[1].search_for(QUERY, strategy="iterative",
                                     max_hops=8, origin=origin, limit=4)
        assert limited.messages < unlimited.messages

    def test_unreached_limit_equals_unlimited(self):
        net = deploy_chain()
        origin = net.peer_ids()[0]
        unlimited = net.search_for(QUERY, strategy="iterative",
                                   max_hops=8, origin=origin)
        capped = net.search_for(QUERY, strategy="iterative",
                                max_hops=8, origin=origin, limit=10_000)
        assert capped.results == unlimited.results
        assert not capped.limit_hit

    def test_bound_join_mode_respects_limit(self):
        net = deploy_chain()
        for peer in net.peers.values():
            peer.join_mode = "bound"
        origin = net.peer_ids()[0]
        query = ("SearchFor(x?, y? : (x?, S0#org, %Aspergillus%) "
                 "AND (x?, S0#len, y?))")
        out = net.search_for(query, strategy="iterative", max_hops=8,
                             origin=origin, limit=3)
        assert out.result_count == 3
        assert out.limit_hit

    def test_metrics_scopes_closed_after_limited_queries(self):
        net = deploy_chain()
        origin = net.peer_ids()[0]
        for strategy in ("local", "iterative", "recursive"):
            net.search_for(QUERY, strategy=strategy, max_hops=8,
                           origin=origin, limit=2)
            assert net.network.metrics.operations == {}
        net.settle()
        assert net.network.metrics.operations == {}


class TestEngineLimitPushdown:
    def test_engine_limit_caps_and_skips_scans(self):
        net = deploy_chain()
        engine = net.create_engine(domain="lp", max_hops=8)
        origin = net.peer_ids()[0]
        unlimited = engine.search_for(QUERY, origin=origin)
        limited = engine.search_for(QUERY, origin=origin, limit=4)
        assert limited.result_count == 4
        assert limited.limit_hit
        assert limited.fetches_skipped > 0
        assert limited.messages < unlimited.messages
        assert engine.stats.limits_hit == 1
        assert engine.stats.scans_skipped == limited.fetches_skipped

    def test_engine_batch_per_query_limits(self):
        net = deploy_chain()
        engine = net.create_engine(domain="lp", max_hops=8)
        origin = net.peer_ids()[0]
        other = "SearchFor(y? : (y?, S1#org, %Aspergillus%))"
        result = engine.execute_batch([QUERY, other], origin=origin,
                                      limit=4)
        assert all(o.result_count == 4 for o in result.outcomes)
        assert all(o.limit_hit for o in result.outcomes)
        assert result.limits_hit == 2
        assert result.scans_issued + result.scans_skipped == \
            result.patterns_fetched

    def test_engine_mixed_batch_skips_satisfied_queries_scans(self):
        """Scans consumed only by already-satisfied queries are never
        fetched, even while other queries in the batch keep running
        (and finish naturally without reaching their limit)."""
        net = deploy_chain()
        iso = Schema("Iso", ["org", "len"], domain="lp")
        net.insert_schema(iso)
        net.insert_triples([
            Triple(URI(f"Iso:e{j}"), URI("Iso#org"),
                   Literal(f"Aspergillus-x-{j}"))
            for j in range(2)
        ])
        net.settle()
        engine = net.create_engine(domain="lp", max_hops=8)
        origin = net.peer_ids()[0]
        # Query 1 satisfies its limit from wave 0; query 2 (isolated
        # schema, only 2 rows) never reaches the limit.
        result = engine.execute_batch(
            [QUERY, "SearchFor(y? : (y?, Iso#org, %Aspergillus%))"],
            origin=origin, limit=4)
        assert [o.result_count for o in result.outcomes] == [4, 2]
        assert [o.limit_hit for o in result.outcomes] == [True, False]
        # Query 1's deeper reformulation scans were all skipped, and
        # the accounting is complete in the returned result.
        assert result.scans_skipped > 0
        assert result.scans_issued + result.scans_skipped == \
            result.patterns_fetched

    def test_engine_unlimited_unchanged_by_limit_support(self):
        net = deploy_chain()
        engine = net.create_engine(domain="lp", max_hops=8)
        origin = net.peer_ids()[0]
        result = engine.execute_batch([QUERY], origin=origin)
        assert result.scans_skipped == 0
        assert result.limits_hit == 0
        assert result.scans_issued == result.patterns_fetched


class TestCancellationStopsInFlightRetries:
    """A fired token stops timeout/failover retries from spending
    messages — the satellite scenario: the limit is met while retries
    toward a dead key space are still pending."""

    def _setup_pending_fetch(self):
        net = GridVineNetwork.build(num_peers=24, seed=61,
                                    replication=2, timeout=10.0)
        schema = Schema("Alpha", ["organism"], domain="c")
        net.insert_schema(schema)
        net.insert_triples([
            Triple(URI("Alpha:1"), URI("Alpha#organism"),
                   Literal("Aspergillus niger")),
        ])
        net.settle()
        pattern = TriplePattern(X, URI("Alpha#organism"), Y)
        key = term_key(URI("Alpha#organism"))
        origin_id = next(
            n for n in net.peer_ids()
            if not net.peer(n).is_responsible_for(key))
        origin = net.peer(origin_id)
        token = CancelToken()
        future = origin._search_pattern(pattern, cancel=token)
        # Kill every owner *after* the fetch went out: the route (or
        # its reply) is lost in flight and the origin will retry on
        # timeout, steering toward replicas (failover).
        for node_id, peer in net.peers.items():
            if peer.is_responsible_for(key) and node_id != origin_id:
                net.network.set_online(node_id, False)
        return net, origin, token, future

    def test_retries_fire_without_cancel(self):
        net, origin, _token, future = self._setup_pending_fetch()
        net.loop.run_until(net.loop.now + 2.0)
        sent_before = net.network.metrics.messages_sent
        net.settle()
        # Control: the timeout retries really were in flight.
        assert origin.failover_stats["retries"] > 0
        assert net.network.metrics.messages_sent > sent_before
        assert future.done  # resolved (empty) after retries exhausted

    def test_cancel_stops_new_messages(self):
        net, origin, token, future = self._setup_pending_fetch()
        net.loop.run_until(net.loop.now + 2.0)
        token.cancel()
        assert future.done  # resolves immediately on cancel
        assert future.result() == []
        sent_at_cancel = net.network.metrics.messages_sent
        net.settle()
        # Not a single new message after the cancel: no retries fired.
        assert net.network.metrics.messages_sent == sent_at_cancel
        assert origin.failover_stats["retries"] == 0
        assert origin.failover_stats["cancelled"] == 1
        assert not origin._pending


class TestCancellationUnderChurn:
    def test_limited_queries_stop_spending_under_churn(self):
        net = deploy_chain(num_peers=32, seed=17, replication=2)
        origin = net.peer_ids()[0]
        churn = ChurnProcess(net.network, mean_uptime=60.0,
                             mean_downtime=30.0,
                             rng=random.Random(99),
                             protected={origin})
        churn.start()
        net.loop.run_until(net.loop.now + 45.0)
        outcomes = []
        for _ in range(4):
            out = net.search_for(QUERY, strategy="iterative",
                                 max_hops=8, origin=origin, limit=3)
            outcomes.append(out)
            # Operation scopes close cleanly right after each cancel.
            assert net.network.metrics.operations == {}
            net.loop.run_until(net.loop.now + 20.0)
        churn.stop()
        churn.assert_consistent()
        assert all(o.limit_hit for o in outcomes)
        assert all(o.result_count == 3 for o in outcomes)
        # The deployment stays healthy: everything outstanding drains.
        net.settle()
        assert net.network.metrics.operations == {}

    def test_scenario_runner_with_limit(self):
        from repro.resilience import ScenarioRunner, ScenarioSpec

        spec = ScenarioSpec(num_peers=32, replication=2, seed=5,
                            num_schemas=4, num_entities=40,
                            num_queries=6, warmup=30.0,
                            query_interval=20.0, limit=2)
        report = ScenarioRunner.from_spec(spec).run()
        assert report.queries_issued == 6
        assert report.limit_hits > 0
        assert report.first_result_p50 > 0.0
        # The limited workload is cheaper than the same spec unlimited.
        unlimited_spec = ScenarioSpec(num_peers=32, replication=2,
                                      seed=5, num_schemas=4,
                                      num_entities=40, num_queries=6,
                                      warmup=30.0, query_interval=20.0)
        unlimited = ScenarioRunner.from_spec(unlimited_spec).run()
        assert report.query_messages < unlimited.query_messages
