"""Mediation on the sharded transport: GridVine queries, engine
batches and fault injection through :class:`ShardedTransport`.

The tentpole guarantee is stronger than the retrieve workload's: with
``refs_per_level=1`` and ``replication=1`` the query path makes no
consequential rng draws, so one mediation deployment produces
*bit-identical per-query outcomes* — success flags, result rows,
reformulation counts and exact attributed message counts — on the
single-loop engine and on the sharded engine at any shard count, in
either worker mode.

Fault injection rides the same transport seam: one
:class:`~repro.faultlab.plan.FaultPlan` installs per-shard injectors,
partitions account identically to the single-loop engine (their
clauses are rng-free), and any faulted sharded run replays
bit-identically from its seed.
"""

import pytest

from repro.faultlab.plan import FaultPlan, MessageDrop, Partition
from repro.pgrid.scaleout import (
    ScaleoutReport,
    ScaleoutSpec,
    build_deployment,
    run_inprocess,
    run_sharded,
)
from repro.simnet.events import SimulationError
from repro.simnet.latency import ConstantLatency
from repro.simnet.shard import ShardedTransport, partition_paths


def med_spec(**overrides):
    """A mediation deployment in the bit-exact cross-engine regime."""
    defaults = dict(num_peers=120, replication=1, refs_per_level=1,
                    seed=3, num_shards=2, workload="mediation",
                    num_schemas=4, num_entities=60,
                    entities_per_schema=20, ops_per_wave=6, num_waves=2)
    defaults.update(overrides)
    return ScaleoutSpec(**defaults)


def halves_partition(deployment, seed=7):
    """A plan splitting the node-id space in half — rng-free clauses,
    so fault accounting is engine-exact."""
    node_ids = sorted(deployment.assignment)
    half = len(node_ids) // 2
    return FaultPlan(seed=seed, faults=(
        Partition(side_a=tuple(node_ids[:half]),
                  side_b=tuple(node_ids[half:])),
    ))


# ----------------------------------------------------------------------
# Tentpole: one deployment, identical query outcomes everywhere
# ----------------------------------------------------------------------

class TestCrossEngineEquality:
    def test_outcomes_identical_across_engines_and_shard_counts(self):
        spec = med_spec()
        deployment = build_deployment(spec)
        baseline = run_inprocess(spec, deployment)
        assert baseline.ops_completed == baseline.ops_issued > 0
        assert baseline.successes > 0 and baseline.rows_returned > 0
        for shards in (1, 2, 4):
            sharded = run_sharded(med_spec(num_shards=shards), deployment)
            # Full per-ref summaries — rows, reformulations and exact
            # attributed message counts included.
            assert sharded.outcomes == baseline.outcomes
            assert sharded.query_messages == baseline.query_messages
            assert sharded.successes == baseline.successes

    def test_forked_workers_match_inline_bit_for_bit(self):
        spec = med_spec()
        deployment = build_deployment(spec)
        inline = run_sharded(med_spec(mode="inline"), deployment)
        forked = run_sharded(med_spec(mode="process"), deployment)
        assert forked.outcomes == inline.outcomes
        assert forked.messages_sent == inline.messages_sent
        assert forked.events_processed == inline.events_processed

    def test_engine_batches_cross_the_seam_identically(self):
        spec = med_spec(batch_queries=3)
        deployment = build_deployment(spec)
        baseline = run_inprocess(spec, deployment)
        tags = {summary[0] for summary in baseline.outcomes.values()}
        assert tags == {"q", "b"}
        for shards in (1, 2):
            sharded = run_sharded(med_spec(batch_queries=3,
                                           num_shards=shards), deployment)
            assert sharded.outcomes == baseline.outcomes

    def test_run_to_run_identical(self):
        first = run_sharded(med_spec())
        second = run_sharded(med_spec())
        assert first.outcomes == second.outcomes
        assert first.messages_sent == second.messages_sent


# ----------------------------------------------------------------------
# Fault injection on sharded runs
# ----------------------------------------------------------------------

class TestShardedMediationFaults:
    def test_partition_accounting_matches_inprocess(self):
        # Partition clauses never draw rng, so sharded and single-loop
        # runs block the exact same sends and count them identically.
        spec = med_spec()
        deployment = build_deployment(spec)
        plan = halves_partition(deployment)
        baseline = run_inprocess(med_spec(faults=plan), deployment)
        assert baseline.faults_by_kind  # the split actually blocks traffic
        for shards in (1, 2, 4):
            sharded = run_sharded(med_spec(num_shards=shards, faults=plan),
                                  deployment)
            assert sharded.faults_by_kind == baseline.faults_by_kind
            assert sharded.outcomes == baseline.outcomes

    def test_faulted_run_replays_bit_identically(self):
        # Probabilistic clauses consume per-shard rng streams seeded
        # from the plan seed — replay and worker mode cannot move them.
        spec = med_spec()
        deployment = build_deployment(spec)
        plan = FaultPlan(seed=11, faults=(
            MessageDrop(probability=0.05),
            halves_partition(deployment).faults[0],
        ))
        first = run_sharded(med_spec(faults=plan), deployment)
        second = run_sharded(med_spec(faults=plan), deployment)
        assert first.faults_by_kind
        assert second.outcomes == first.outcomes
        assert second.faults_by_kind == first.faults_by_kind
        assert second.messages_sent == first.messages_sent
        forked = run_sharded(med_spec(faults=plan, mode="process"),
                             deployment)
        assert forked.outcomes == first.outcomes
        assert forked.faults_by_kind == first.faults_by_kind

    def test_install_must_precede_start_in_process_mode(self):
        spec = med_spec(mode="process")
        deployment = build_deployment(spec)
        transport = ShardedTransport(
            2, latency=ConstantLatency(spec.latency_delay),
            seed=spec.seed, mode="process")
        owner = partition_paths(deployment.assignment, 2)
        from repro.pgrid.scaleout import _make_peer
        for node_id in sorted(deployment.assignment):
            transport.add_peer(_make_peer(spec, deployment, node_id),
                               owner[node_id])
        transport.start()
        try:
            with pytest.raises(SimulationError):
                transport.install_fault_plan(halves_partition(deployment))
        finally:
            transport.stop()


# ----------------------------------------------------------------------
# Satellite: live process-mode metrics before stop()
# ----------------------------------------------------------------------

class TestLiveProcessStats:
    def _running_transport(self):
        spec = ScaleoutSpec(num_peers=60, replication=2, seed=5,
                            num_shards=2, num_keys=20, mode="process")
        deployment = build_deployment(spec)
        transport = ShardedTransport(
            2, latency=ConstantLatency(spec.latency_delay),
            seed=spec.seed, mode="process")
        owner = partition_paths(deployment.assignment, 2)
        from repro.pgrid.scaleout import _make_peer, _preload
        peers = {node_id: _make_peer(spec, deployment, node_id)
                 for node_id in sorted(deployment.assignment)}
        _preload(deployment, peers)
        for node_id, peer in peers.items():
            transport.add_peer(peer, owner[node_id])
        transport.start()
        for origin, key in deployment.waves[0][:10]:
            transport.submit(origin, "retrieve", key)
        transport.run_until_quiescent()
        return transport

    def test_metrics_snapshot_is_live_before_stop(self):
        # Regression: the merged snapshot used to read the parent-side
        # shard objects, which stop advancing at the fork — a mid-run
        # snapshot on a forked transport silently reported all zeros.
        transport = self._running_transport()
        try:
            live = transport.metrics_snapshot()
            assert live["messages_sent"] > 0
            assert live["events_processed"] > 0
        finally:
            final = transport.stop()
        after = transport.metrics_snapshot()
        assert after["messages_sent"] >= live["messages_sent"]
        assert len(final) == 2

    def test_stats_error_when_workers_vanish_without_final_stats(self):
        transport = self._running_transport()
        conns = list(transport._conns)
        transport._conns = []
        try:
            with pytest.raises(SimulationError,
                               match="call stop"):
                transport.shard_stats()
        finally:
            transport._conns = conns
            transport.stop()


# ----------------------------------------------------------------------
# Satellite: empty-wave deployments and zero-guard symmetry
# ----------------------------------------------------------------------

class TestEmptyWaveEdges:
    def test_zero_waves_retrieve_runs_clean(self):
        spec = ScaleoutSpec(num_peers=40, replication=2, seed=1,
                            num_shards=2, num_keys=5, num_waves=0)
        deployment = build_deployment(spec)
        for report in (run_sharded(spec, deployment),
                       run_inprocess(spec, deployment)):
            assert report.ops_issued == report.ops_completed == 0
            assert report.success_rate == 0.0
            assert report.summary()["success_rate"] == 0.0

    def test_zero_ops_per_wave_mediation_runs_clean(self):
        spec = med_spec(ops_per_wave=0)
        deployment = build_deployment(spec)
        sharded = run_sharded(spec, deployment)
        single = run_inprocess(spec, deployment)
        assert sharded.outcomes == single.outcomes == {}
        assert sharded.summary()["mean_hops"] == 0.0

    def test_empty_churn_run_reaches_quiescence(self):
        # Regression for the empty-slice max() in the quiet-jump branch
        # of run_until_quiescent: churn enabled, zero toggles pending,
        # zero traffic — the horizon fallback must not crash.
        spec = ScaleoutSpec(num_peers=40, replication=2, seed=1,
                            num_shards=2, num_keys=5, num_waves=0,
                            ops_per_wave=0)
        transport = ShardedTransport(
            2, latency=ConstantLatency(spec.latency_delay), seed=spec.seed)
        deployment = build_deployment(spec)
        owner = partition_paths(deployment.assignment, 2)
        from repro.pgrid.scaleout import _make_peer
        for node_id in sorted(deployment.assignment):
            transport.add_peer(_make_peer(spec, deployment, node_id),
                               owner[node_id])
        transport.start()
        transport.run_until_quiescent()
        transport.stop()

    def test_empty_report_summary_is_zero_guarded(self):
        report = ScaleoutReport(engine="inprocess", num_peers=0,
                                num_shards=1)
        assert report.success_rate == 0.0
        assert report.mean_hops == 0.0
        summary = report.summary()
        assert summary["success_rate"] == 0.0
        assert summary["faults_by_kind"] == {}
