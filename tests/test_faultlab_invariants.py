"""Tests for the fault lab's invariant checkers.

Each checker is exercised both ways: green on a healthy deployment,
and red once the corresponding kind of damage is planted (via the
omniscient harness view — the same access the checkers use).
"""

from repro.faultlab import LabContext, run_invariants
from repro.faultlab.invariants import (
    check_engine_cache,
    check_live_recall,
    check_recall,
    check_replica_agreement,
    check_routing_tables,
    check_synopsis_convergence,
    check_trie_coverage,
)
from repro.mediation.network import GridVineNetwork
from repro.rdf.terms import URI, Literal
from repro.rdf.triples import Triple
from repro.resilience.scenario import ScenarioReport, ScenarioSpec
from repro.schema.model import Schema
from repro.stats.gossip import StatsAntiEntropy


def small_net(num_peers=12, seed=5, replication=2):
    net = GridVineNetwork.build(num_peers=num_peers, seed=seed,
                                replication=replication)
    embl = Schema("EMBL", ["Organism"], domain="d")
    emp = Schema("EMP", ["SystematicName"], domain="d")
    net.insert_schema(embl)
    net.insert_schema(emp)
    net.insert_triples([
        Triple(URI(f"EMBL:{i}"), URI("EMBL#Organism"),
               Literal(f"Aspergillus {i}"))
        for i in range(6)
    ] + [
        Triple(URI("EMP:9"), URI("EMP#SystematicName"),
               Literal("Aspergillus 9")),
    ])
    net.create_mapping(embl, emp, [("Organism", "SystematicName")],
                       origin=net.peer_ids()[0])
    net.settle()
    return net


class TestRoutingAndCoverage:
    def test_healthy_network_passes(self):
        ctx = LabContext(net=small_net())
        assert check_routing_tables(ctx) == []
        assert check_trie_coverage(ctx) == []

    def test_poisoned_reference_flagged(self):
        net = small_net()
        peer = net.peers[net.peer_ids()[0]]
        # a ref pointing back at the peer's own subtree breaks the
        # forwarding invariant
        peer.routing_table[0].append(peer.node_id)
        violations = check_routing_tables(LabContext(net=net))
        assert any("references itself" in v for v in violations)

    def test_unknown_reference_flagged(self):
        net = small_net()
        peer = net.peers[net.peer_ids()[0]]
        peer.routing_table[0].append("ghost-peer")
        violations = check_routing_tables(LabContext(net=net))
        assert any("unknown peer" in v for v in violations)

    def test_dead_replica_group_breaks_coverage(self):
        net = small_net()
        by_path = {}
        for node_id, peer in net.peers.items():
            by_path.setdefault(peer.path.bits, []).append(node_id)
        victims = next(iter(sorted(by_path.values())))
        for node_id in victims:
            net.network.set_online(node_id, False)
        violations = check_trie_coverage(LabContext(net=net))
        assert len(violations) == 1
        assert "no online holder" in violations[0]


class TestReplicaAgreement:
    def test_converged_replicas_pass(self):
        assert check_replica_agreement(LabContext(net=small_net())) == []

    def test_diverged_store_flagged(self):
        net = small_net()
        # plant divergence: drop one stored value from one member of
        # a replica group that actually holds data
        for node_id in net.peer_ids():
            peer = net.peers[node_id]
            if peer.replicas and peer.store:
                bits = next(iter(peer.store))
                peer.store[bits] = peer.store[bits][1:]
                if not peer.store[bits]:
                    del peer.store[bits]
                break
        violations = check_replica_agreement(LabContext(net=net))
        assert violations
        assert "disagree" in violations[0]


class TestSynopsisConvergence:
    def test_cold_registry_flagged_then_sweep_converges(self):
        net = small_net()
        origin = net.peer_ids()[0]
        ctx = LabContext(net=net, origin=origin)
        assert check_synopsis_convergence(ctx)  # nothing pulled yet
        StatsAntiEntropy(net.peers, origin).sweep()
        net.settle()
        assert check_synopsis_convergence(ctx) == []

    def test_stale_digest_flagged_after_mutation(self):
        net = small_net()
        origin = net.peer_ids()[0]
        StatsAntiEntropy(net.peers, origin).sweep()
        net.settle()
        # mutate a remote store directly: its digest version advances
        # past what the origin pulled
        other = net.peer_ids()[1]
        net.peers[other].db.add(
            Triple(URI("EMBL:new"), URI("EMBL#Organism"), Literal("X")))
        ctx = LabContext(net=net, origin=origin)
        violations = check_synopsis_convergence(ctx)
        assert any(other in v and "stale" in v for v in violations)


class TestEngineCacheCoherence:
    def test_live_cache_passes(self):
        net = small_net()
        engine = net.create_engine(domain="d", max_hops=4)
        engine.search_for("SearchFor(x? : (x?, EMBL#Organism, %Asp%))")
        assert len(engine.cache) > 0
        ctx = LabContext(net=net, engine=engine)
        assert check_engine_cache(ctx) == []

    def test_planted_stale_plan_flagged(self):
        net = small_net()
        engine = net.create_engine(domain="d", max_hops=4)
        engine.search_for("SearchFor(x? : (x?, EMBL#Organism, %Asp%))")
        (_key, entry), *_ = engine.cache.entries()
        entry.reformulations.pop()  # corrupt the cached plan
        violations = check_engine_cache(LabContext(net=net, engine=engine))
        assert violations
        assert "stale cached plan" in violations[0]

    def test_no_engine_means_no_check(self):
        assert check_engine_cache(LabContext(net=small_net())) == []


class TestRecallCheckers:
    def test_healthy_recall_passes_and_damage_flags(self):
        net = small_net()
        panel = [(
            # answered via the mapping: EMBL + EMP subjects
            "SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))",
            {f"EMBL:{i}" for i in range(6)} | {"EMP:9"},
        )]
        from repro.rdf.parser import parse_search_for
        panel = [(parse_search_for(q), t) for q, t in panel]
        ctx = LabContext(net=net, panel=panel, max_hops=4)
        assert check_recall(ctx) == []
        # knock every holder of some leaf offline: part of the truth
        # set becomes unreachable
        by_path = {}
        for node_id, peer in net.peers.items():
            by_path.setdefault(peer.path.bits, []).append(node_id)
        for members in by_path.values():
            for node_id in members:
                if node_id != net.peer_ids()[0]:
                    net.network.set_online(node_id, False)
        violations = check_recall(ctx)
        assert violations
        assert "recall" in violations[0]

    def test_live_recall_reads_report(self):
        report = ScenarioReport(spec=ScenarioSpec())
        report.per_query_recall = [0.2, 0.2]
        report.recall = 0.2
        ctx = LabContext(net=None, report=report, min_live_recall=0.5)
        assert check_live_recall(ctx)
        report.recall = 0.9
        assert check_live_recall(ctx) == []

    def test_no_report_or_panel_skips(self):
        ctx = LabContext(net=None)
        assert check_live_recall(ctx) == []
        assert check_recall(ctx) == []


class TestRunInvariants:
    def test_aggregates_named_violations(self):
        net = small_net()
        peer = net.peers[net.peer_ids()[0]]
        peer.routing_table[0].append("ghost-peer")
        report = run_invariants(
            LabContext(net=net),
            names=["routing_tables", "trie_coverage"])
        assert not report.ok
        assert report.failed_invariants() == ["routing_tables"]
        assert any("ghost-peer" in line for line in report.summary())

    def test_healthy_summary(self):
        report = run_invariants(
            LabContext(net=small_net()),
            names=["routing_tables", "trie_coverage",
                   "replica_agreement"])
        assert report.ok
        assert report.summary() == ["all invariants hold"]
