"""Tests for the Bayesian cycle analysis and deprecation logic."""

import random

import pytest

from repro.mapping.graph import MappingGraph
from repro.mapping.model import PredicateCorrespondence, SchemaMapping
from repro.rdf.terms import URI
from repro.selforg.deprecation import (
    DeprecationConfig,
    assess_mapping_quality,
    cycle_is_consistent,
    mappings_to_deprecate,
)


def edge(mapping_id, src, dst, pairs, provenance="auto"):
    return SchemaMapping(
        mapping_id, src, dst,
        [PredicateCorrespondence(URI(f"{src}#{a}"), URI(f"{dst}#{b}"))
         for a, b in pairs],
        provenance=provenance,
        confidence=0.7 if provenance == "auto" else 1.0,
    )


class TestCycleConsistency:
    def test_identity_cycle_is_consistent(self):
        cycle = [edge("m1", "A", "B", [("x", "y")]),
                 edge("m2", "B", "A", [("y", "x")])]
        assert cycle_is_consistent(cycle) is True

    def test_twisted_cycle_is_inconsistent(self):
        cycle = [edge("m1", "A", "B", [("x", "y"), ("u", "v")]),
                 edge("m2", "B", "A", [("y", "u"), ("v", "x")])]
        assert cycle_is_consistent(cycle) is False

    def test_no_surviving_attribute_gives_no_evidence(self):
        cycle = [edge("m1", "A", "B", [("x", "y")]),
                 edge("m2", "B", "A", [("other", "x")])]
        assert cycle_is_consistent(cycle) is None


class TestAssessment:
    def triangle(self, bad_last=False):
        """A->B->C->A; the closing mapping is correct or corrupted."""
        graph = MappingGraph()
        graph.add(edge("u1", "A", "B", [("x", "x"), ("w", "w")],
                       provenance="user"))
        graph.add(edge("u2", "B", "C", [("x", "x"), ("w", "w")],
                       provenance="user"))
        closing_pairs = ([("x", "w"), ("w", "x")] if bad_last
                         else [("x", "x"), ("w", "w")])
        graph.add(edge("a1", "C", "A", closing_pairs))
        return graph

    def test_user_mappings_pinned_at_one(self):
        beliefs = assess_mapping_quality(self.triangle())
        assert beliefs["u1"] == 1.0
        assert beliefs["u2"] == 1.0

    def test_consistent_cycle_raises_auto_confidence(self):
        config = DeprecationConfig()
        beliefs = assess_mapping_quality(self.triangle(), config)
        assert beliefs["a1"] > config.prior

    def test_inconsistent_cycle_lowers_auto_confidence(self):
        config = DeprecationConfig()
        beliefs = assess_mapping_quality(self.triangle(bad_last=True),
                                         config)
        assert beliefs["a1"] < config.threshold

    def test_no_cycles_keeps_prior(self):
        graph = MappingGraph([edge("a1", "A", "B", [("x", "y")])])
        config = DeprecationConfig()
        beliefs = assess_mapping_quality(graph, config)
        assert beliefs["a1"] == pytest.approx(config.prior, abs=1e-6)

    def test_blame_lands_on_auto_not_user(self):
        # Inconsistent cycle of two user mappings and one auto: only
        # the auto mapping can be blamed.
        graph = self.triangle(bad_last=True)
        beliefs = assess_mapping_quality(graph)
        assert beliefs["u1"] == beliefs["u2"] == 1.0
        assert beliefs["a1"] < 0.5

    def test_good_and_bad_parallel_paths_separated(self):
        graph = self.triangle(bad_last=True)
        graph.add(edge("a2", "C", "A", [("x", "x"), ("w", "w")]))
        beliefs = assess_mapping_quality(graph)
        assert beliefs["a2"] > 0.8
        assert beliefs["a1"] < 0.35

    def test_deprecated_mappings_not_assessed(self):
        graph = self.triangle(bad_last=True)
        graph.deprecate("a1")
        beliefs = assess_mapping_quality(graph)
        assert "a1" not in beliefs


class TestDeprecationSelection:
    def test_selects_only_bad_autos(self):
        graph = MappingGraph()
        graph.add(edge("u1", "A", "B", [("x", "x")], provenance="user"))
        graph.add(edge("a-good", "B", "A", [("x", "x")]))
        graph.add(edge("a-bad", "B", "A", [("x", "other")]))
        # a-bad composes A#x -> B#x -> A#other: inconsistent.
        doomed = mappings_to_deprecate(graph)
        assert [m.mapping_id for m in doomed] == ["a-bad"]

    def test_user_mapping_never_deprecated(self):
        graph = MappingGraph()
        graph.add(edge("u1", "A", "B", [("x", "w")], provenance="user"))
        graph.add(edge("u2", "B", "A", [("w", "w")], provenance="user"))
        # Even an inconsistent all-user cycle deprecates nothing.
        assert mappings_to_deprecate(graph) == []

    def test_threshold_sweep_monotone(self):
        graph = MappingGraph()
        graph.add(edge("u1", "A", "B", [("x", "x")], provenance="user"))
        graph.add(edge("a1", "B", "A", [("x", "other")]))
        lax = DeprecationConfig(threshold=0.05)
        strict = DeprecationConfig(threshold=0.95)
        assert (len(mappings_to_deprecate(graph, lax))
                <= len(mappings_to_deprecate(graph, strict)))


class TestEndToEndWithDataset(object):
    def test_corrupted_mapping_detected(self, bio_dataset):
        ds = bio_dataset
        names = [s.name for s in ds.schemas[:3]]
        graph = MappingGraph()
        # User backbone A->B->C; two automatic candidates close the
        # C->A cycle, one correct and one corrupted — the parallel
        # paths give the analysis the evidence to separate them.
        graph.add(ds.ground_truth_mapping(names[0], names[1],
                                          provenance="user"))
        graph.add(ds.ground_truth_mapping(names[1], names[2],
                                          provenance="user"))
        graph.add(ds.ground_truth_mapping(names[2], names[0],
                                          mapping_id="auto:ok",
                                          provenance="auto"))
        graph.add(ds.corrupted_mapping(names[2], names[0],
                                       random.Random(1),
                                       mapping_id="auto:bad"))
        beliefs = assess_mapping_quality(graph)
        assert beliefs["auto:ok"] > 0.8
        assert beliefs["auto:bad"] < 0.35

    def test_single_cycle_with_two_suspects_stays_ambiguous(self, bio_dataset):
        # With only one inconsistent cycle containing two automatic
        # mappings, the analysis cannot tell which is wrong: both end
        # up in the ambiguous middle, neither cleared nor condemned.
        ds = bio_dataset
        names = [s.name for s in ds.schemas[:3]]
        graph = MappingGraph()
        graph.add(ds.ground_truth_mapping(names[0], names[1],
                                          provenance="user"))
        graph.add(ds.ground_truth_mapping(names[1], names[2],
                                          mapping_id="auto:ok",
                                          provenance="auto"))
        graph.add(ds.corrupted_mapping(names[2], names[0],
                                       random.Random(1),
                                       mapping_id="auto:bad"))
        beliefs = assess_mapping_quality(graph)
        assert beliefs["auto:ok"] == pytest.approx(beliefs["auto:bad"])
        assert 0.35 < beliefs["auto:ok"] < 0.9
