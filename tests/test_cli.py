"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.peers == 100
        assert args.rounds == 8

    def test_query_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "SearchFor(x? : (x?, A#p, %v%))",
                 "--strategy", "telepathic"])

    def test_auto_strategy_accepted(self):
        args = build_parser().parse_args(
            ["query", "SearchFor(x? : (x?, A#p, %v%))",
             "--strategy", "auto"])
        assert args.strategy == "auto"
        args = build_parser().parse_args(["scenario", "--strategy",
                                          "auto"])
        assert args.strategy == "auto"

    def test_max_hops_flag(self):
        args = build_parser().parse_args(
            ["query", "SearchFor(x? : (x?, A#p, %v%))"])
        assert args.max_hops == 8  # the historical hardcoded depth
        args = build_parser().parse_args(
            ["query", "SearchFor(x? : (x?, A#p, %v%))",
             "--max-hops", "3"])
        assert args.max_hops == 3
        assert build_parser().parse_args(
            ["scenario", "--max-hops", "4"]).max_hops == 4
        assert build_parser().parse_args(
            ["batch", "--max-hops", "4"]).max_hops == 4


class TestExperimentsCommand:
    def test_lists_all_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("E1", "E2", "E5", "E12"):
            assert exp_id in out
        assert "REPRO_BENCH_SCALE" in out


class TestDemoCommand:
    def test_demo_small_run(self, capsys):
        code = main(["demo", "--peers", "24", "--schemas", "4",
                     "--entities", "40", "--rounds", "3", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "before self-organization" in out
        assert "after:" in out


class TestQueryCommand:
    def test_parse_error_exit_code(self, capsys):
        code = main(["query", "SELECT 1", "--peers", "8",
                     "--schemas", "3", "--entities", "20"])
        assert code == 2
        assert "does not parse" in capsys.readouterr().err

    def test_query_against_corpus(self, capsys):
        # discover a real predicate of the generated corpus first
        from repro.datagen import BioDatasetGenerator
        dataset = BioDatasetGenerator(
            num_schemas=4, num_entities=40, entities_per_schema=8,
            seed=7).generate()
        schema = dataset.schemas[0]
        organism_attr = dataset.concept_attribute(schema.name, "organism")
        query = (f"SearchFor(x? : (x?, {schema.name}#{organism_attr}, "
                 f"%a%))")
        code = main(["query", query, "--peers", "24", "--schemas", "4",
                     "--entities", "40", "--rounds", "2", "--seed", "7",
                     "--limit", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "results  :" in out
        assert "latency  :" in out

    def test_zero_results_prints_hint(self, capsys):
        code = main(["query",
                     "SearchFor(x? : (x?, Nowhere#nothing, %zz%))",
                     "--peers", "16", "--schemas", "3",
                     "--entities", "20", "--rounds", "1"])
        assert code == 0
        assert "hint" in capsys.readouterr().out


class TestAutoQueryCommand:
    def test_auto_query_prints_optimizer_decision(self, capsys):
        from repro.datagen import BioDatasetGenerator
        dataset = BioDatasetGenerator(
            num_schemas=4, num_entities=40, entities_per_schema=8,
            seed=7).generate()
        schema = dataset.schemas[0]
        organism_attr = dataset.concept_attribute(schema.name, "organism")
        query = (f"SearchFor(x? : (x?, {schema.name}#{organism_attr}, "
                 f"%a%))")
        code = main(["query", query, "--strategy", "auto",
                     "--peers", "24", "--schemas", "4",
                     "--entities", "40", "--rounds", "2", "--seed", "7",
                     "--limit", "0", "--warm-stats", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimizer:" in out
        assert "estimated" in out or "fallback" in out


class TestStatsCommand:
    def test_stats_reports_digest_and_estimate_error(self, capsys):
        code = main(["stats", "--peers", "24", "--schemas", "4",
                     "--entities", "40", "--rounds", "1", "--seed", "7",
                     "--warm-stats", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "local triples" in out
        assert "registry" in out
        assert "mean relative error" in out


class TestChaosCommand:
    def test_chaos_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos"])

    def test_chaos_intensity_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["chaos", "run", "--intensity", "apocalyptic"])
        args = build_parser().parse_args(
            ["chaos", "explore", "--intensity", "heavy"])
        assert args.intensity == "heavy"
        assert args.budget == 8

    def test_chaos_run_green_seed(self, capsys):
        code = main(["chaos", "run", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault schedule:" in out
        assert "invariants: all hold" in out

    def test_chaos_explore_reports_budget(self, capsys):
        code = main(["chaos", "explore", "--budget", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "explored 2 seed(s)" in out
        assert "2 passed, 0 failed" in out

    def test_chaos_replay_reproduces_failure_and_shrinks(self, capsys):
        """Acceptance: replay from the printed seed alone reproduces
        the failure, and --shrink emits a strictly smaller schedule
        that still fails."""
        code = main(["chaos", "replay", "--seed", "0",
                     "--intensity", "extreme",
                     "--min-live-recall", "0.8", "--shrink"])
        assert code == 1  # the failure reproduced
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "live_recall" in out
        assert "minimal reproducer" in out
        # the shrunk schedule is strictly smaller than the original
        assert "shrunk 8 -> 1 fault clause(s)" in out

    def test_chaos_replay_passing_seed_nothing_to_shrink(self, capsys):
        code = main(["chaos", "replay", "--seed", "0", "--shrink"])
        assert code == 0
        assert "nothing to shrink" in capsys.readouterr().out

    def test_chaos_listed_in_experiments(self, capsys):
        assert main(["experiments"]) == 0
        assert "E17" in capsys.readouterr().out


class TestTraceCommand:
    def run_traced_query(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main(["query",
                     "SearchFor(x? : (x?, Nowhere#nothing, %zz%))",
                     "--peers", "16", "--schemas", "3",
                     "--entities", "20", "--rounds", "1",
                     "--trace", str(path)])
        assert code == 0
        return path

    def test_query_trace_flag_writes_jsonl(self, tmp_path, capsys):
        path = self.run_traced_query(tmp_path)
        out = capsys.readouterr().out
        assert f"-> {path}" in out
        from repro.obs.analysis import load_jsonl, trace_ids
        records = load_jsonl(str(path))
        assert trace_ids(records) == ["searchfor:0"]

    def test_trace_summary_waterfall_and_stats(self, tmp_path, capsys):
        path = self.run_traced_query(tmp_path)
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 trace(s)" in out and "searchfor:0" in out
        assert main(["trace", str(path), "--waterfall",
                     "searchfor:0"]) == 0
        out = capsys.readouterr().out
        assert "msg:route" in out and "|" in out
        assert main(["trace", str(path), "--critical-path",
                     "searchfor:0"]) == 0
        assert "critical path" in capsys.readouterr().out
        assert main(["trace", str(path), "--stats"]) == 0
        assert "message attribution" in capsys.readouterr().out

    def test_trace_missing_file_exit_code(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_chaos_run_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "chaos.jsonl"
        code = main(["chaos", "run", "--seed", "0", "--peers", "12",
                     "--queries", "2", "--trace", str(path)])
        assert code == 0
        assert "trace: written to" in capsys.readouterr().out
        from repro.obs.analysis import load_jsonl
        assert load_jsonl(str(path))


class TestScaleoutCommand:
    def test_retrieve_run_prints_report(self, capsys):
        code = main(["scaleout", "--peers", "60", "--shards", "2",
                     "--keys", "10", "--ops", "5", "--waves", "1",
                     "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded/inline" in out
        assert "success_rate" in out

    def test_mediation_workload_flag(self, capsys):
        code = main(["scaleout", "--peers", "60", "--shards", "2",
                     "--keys", "10", "--ops", "3", "--waves", "1",
                     "--seed", "3", "--workload", "mediation"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SearchFor queries" in out
        assert "rows_returned" in out

    def test_trace_flag_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "scaleout.jsonl"
        code = main(["scaleout", "--peers", "60", "--shards", "2",
                     "--keys", "10", "--ops", "3", "--waves", "1",
                     "--seed", "3", "--workload", "mediation",
                     "--trace", str(path)])
        assert code == 0
        assert "trace: written to" in capsys.readouterr().out
        from repro.obs.analysis import load_jsonl, trace_ids
        records = load_jsonl(str(path))
        assert records
        assert all(t.startswith("op:") for t in trace_ids(records))

    def test_trace_identical_across_engines_is_not_required_but_loads(
            self, tmp_path):
        # The inprocess engine exports the same trace-id scheme, so one
        # `repro trace` invocation can analyze either engine's output.
        path = tmp_path / "inproc.jsonl"
        code = main(["scaleout", "--engine", "inprocess", "--peers", "60",
                     "--keys", "10", "--ops", "3", "--waves", "1",
                     "--seed", "3", "--trace", str(path)])
        assert code == 0
        from repro.obs.analysis import load_jsonl, trace_ids
        assert all(t.startswith("op:")
                   for t in trace_ids(load_jsonl(str(path))))

    def test_workload_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scaleout", "--workload", "raw"])
