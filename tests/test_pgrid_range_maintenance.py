"""Tests for overlay range queries and the maintenance process."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgrid.maintenance import MaintenanceProcess
from repro.pgrid.overlay import PGridOverlay
from repro.util.hashing import order_preserving_hash, prefix_interval
from repro.util.keys import Key, covering_prefixes


class TestCoveringPrefixes:
    def test_full_space(self):
        covers = covering_prefixes(Key("000"), Key("111"))
        assert covers == [Key("")]

    def test_known_decomposition(self):
        covers = covering_prefixes(Key("010"), Key("101"))
        assert [c.bits for c in covers] == ["01", "10"]

    def test_single_key(self):
        covers = covering_prefixes(Key("011"), Key("011"))
        assert covers == [Key("011")]

    def test_rejects_mismatched_widths(self):
        with pytest.raises(ValueError):
            covering_prefixes(Key("0"), Key("11"))

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            covering_prefixes(Key("10"), Key("01"))

    def test_max_length_over_approximates(self):
        covers = covering_prefixes(Key("0101"), Key("0110"), max_length=2)
        # coarsened cover must still contain the whole interval
        for key_int in range(int("0101", 2), int("0110", 2) + 1):
            key = Key.from_int(key_int, 4)
            assert any(c.is_prefix_of(key) for c in covers)
        assert all(len(c) <= 2 for c in covers)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_exact_cover_property(self, a, b):
        low, high = min(a, b), max(a, b)
        covers = covering_prefixes(Key.from_int(low, 8),
                                   Key.from_int(high, 8))
        # disjoint
        for i, x in enumerate(covers):
            for y in covers[i + 1:]:
                assert not x.is_prefix_of(y) and not y.is_prefix_of(x)
        # exact: a key is covered iff it lies in [low, high]
        for value in range(256):
            key = Key.from_int(value, 8)
            covered = any(c.is_prefix_of(key) for c in covers)
            assert covered == (low <= value <= high)

    def test_prefix_interval_contains_extensions(self):
        low, high = prefix_interval("Asp")
        for word in ("Asp", "Aspergillus", "Aspz", "Asp zzz"):
            assert low <= order_preserving_hash(word) <= high
        # strings clearly outside the prefix fall outside the interval
        # ("Asq" itself shares the quantized boundary key — see the
        # prefix_interval docstring — so test from "Asr" up)
        for word in ("Asr", "Aso", "B", "Asozzz"):
            h = order_preserving_hash(word)
            assert not (low <= h <= high)


class TestRangeQuery:
    def _populate(self, overlay, words):
        origin = overlay.peer_ids()[0]
        for word in words:
            overlay.update_sync(origin, order_preserving_hash(word), word)
        overlay.loop.run_until_idle()

    def test_range_spanning_many_peers(self):
        overlay = PGridOverlay.build(32, seed=5)
        words = [f"item-{i:03d}" for i in range(40)] + ["zebra", "aardvark"]
        self._populate(overlay, words)
        low, high = prefix_interval("item-")
        origin = overlay.peer(overlay.peer_ids()[0])
        results = []
        for cover in covering_prefixes(low, high, max_length=16):
            result = overlay.loop.run_until_complete(
                origin.range_query(cover))
            assert result.success
            results.extend(result.values)
        matching = [v for v in results if str(v).startswith("item-")]
        assert sorted(set(matching)) == sorted(
            w for w in words if w.startswith("item-"))

    def test_range_on_empty_region(self):
        overlay = PGridOverlay.build(16, seed=6)
        self._populate(overlay, ["only-entry"])
        origin = overlay.peer(overlay.peer_ids()[0])
        low, high = prefix_interval("zzz")
        for cover in covering_prefixes(low, high, max_length=12):
            result = overlay.loop.run_until_complete(
                origin.range_query(cover))
            assert result.success
            assert result.values == []

    def test_whole_keyspace_range_returns_everything(self):
        overlay = PGridOverlay.build(16, seed=7)
        words = [f"w{i}" for i in range(25)]
        self._populate(overlay, words)
        origin = overlay.peer(overlay.peer_ids()[0])
        result = overlay.loop.run_until_complete(
            origin.range_query(Key("")))
        assert result.success
        assert sorted(set(result.values)) == sorted(words)

    def test_range_with_replication_no_duplicates_per_leaf(self):
        overlay = PGridOverlay.build(24, replication=3, seed=8)
        words = [f"r{i}" for i in range(15)]
        self._populate(overlay, words)
        origin = overlay.peer(overlay.peer_ids()[0])
        result = overlay.loop.run_until_complete(
            origin.range_query(Key("")))
        assert result.success
        # the shower visits each subtree once: one replica answers per
        # leaf, so values appear exactly once
        assert sorted(result.values) == sorted(words)

    def test_range_timeout_reports_partial(self):
        overlay = PGridOverlay.build(16, seed=9, timeout=3.0)
        words = [f"t{i}" for i in range(10)]
        self._populate(overlay, words)
        # kill half the network: some subtrees are unreachable
        for node_id in overlay.peer_ids()[::2]:
            overlay.network.set_online(node_id, False)
        origin_id = next(n for n in overlay.peer_ids()
                         if overlay.network.is_online(n))
        origin = overlay.peer(origin_id)
        result = overlay.loop.run_until_complete(
            origin.range_query(Key(""), timeout=30.0))
        assert not result.success  # incomplete coverage admitted


class TestMaintenance:
    def test_dead_refs_dropped_and_replaced(self):
        overlay = PGridOverlay.build(16, replication=2, seed=10)
        peers = overlay.peers
        maintenance = MaintenanceProcess(peers, interval=10.0,
                                         probe_timeout=2.0,
                                         rng=random.Random(10))
        # kill one peer; someone references it
        victim = overlay.peer_ids()[3]
        overlay.network.set_online(victim, False)
        referencing = [
            p for p in peers.values()
            if any(victim in refs for refs in p.routing_table)
            and p.node_id != victim
        ]
        assert referencing
        maintenance.start()
        overlay.loop.run_until(300.0)
        maintenance.stop()
        for peer in referencing:
            for refs in peer.routing_table:
                assert victim not in refs
        dropped = sum(p.maintenance_stats["refs_dropped"]
                      for p in peers.values())
        assert dropped >= 1

    def test_routing_still_works_after_churn_with_maintenance(self):
        overlay = PGridOverlay.build(24, replication=3, seed=11,
                                     timeout=4.0, max_retries=3)
        from repro.util.hashing import uniform_hash
        origin = overlay.peer_ids()[0]
        keys = [uniform_hash(f"k{i}") for i in range(15)]
        for i, key in enumerate(keys):
            overlay.update_sync(origin, key, i)
        overlay.loop.run_until_idle()
        maintenance = MaintenanceProcess(overlay.peers, interval=20.0,
                                         probe_timeout=3.0,
                                         rng=random.Random(11))
        maintenance.start()
        # permanently fail a third of the network (not the origin)
        for node_id in overlay.peer_ids()[1::3]:
            overlay.network.set_online(node_id, False)
        overlay.loop.run_until(overlay.loop.now + 400.0)
        successes = sum(
            1 for key in keys
            if overlay.retrieve_sync(origin, key).success
        )
        maintenance.stop()
        assert successes >= 13

    def test_anti_entropy_repairs_stale_replica(self):
        overlay = PGridOverlay.build(8, replication=2, seed=12)
        from repro.util.hashing import uniform_hash
        origin = overlay.peer_ids()[0]
        key = uniform_hash("repair-me")
        owners = overlay.responsible_peers(key)
        assert len(owners) == 2
        # one replica sleeps through the insert
        overlay.network.set_online(owners[1], False)
        overlay.update_sync(origin, key, "payload")
        overlay.loop.run_until_idle()
        assert overlay.peer(owners[1]).local_retrieve(key) == []
        overlay.network.set_online(owners[1], True)
        maintenance = MaintenanceProcess(overlay.peers, interval=15.0,
                                         rng=random.Random(12))
        maintenance.start()
        overlay.loop.run_until(overlay.loop.now + 200.0)
        maintenance.stop()
        assert overlay.peer(owners[1]).local_retrieve(key) == ["payload"]

    def test_sync_push_is_idempotent(self):
        overlay = PGridOverlay.build(8, replication=2, seed=13)
        from repro.util.hashing import uniform_hash
        origin = overlay.peer_ids()[0]
        key = uniform_hash("idem")
        overlay.update_sync(origin, key, "v")
        overlay.loop.run_until_idle()
        owners = overlay.responsible_peers(key)
        maintenance = MaintenanceProcess(overlay.peers, interval=5.0,
                                         rng=random.Random(13))
        maintenance.start()
        overlay.loop.run_until(overlay.loop.now + 300.0)
        maintenance.stop()
        for owner in owners:
            assert overlay.peer(owner).local_retrieve(key) == ["v"]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MaintenanceProcess({}, interval=0.0)


class TestPrefixPatternQueries:
    def test_prefix_literal_detection(self):
        from repro.rdf.terms import Literal
        assert Literal("Asp%").is_prefix_pattern
        assert not Literal("%Asp%").is_prefix_pattern
        assert not Literal("Asp").is_prefix_pattern
        assert Literal("Asp%").prefix_needle == "Asp"

    def test_prefix_routing_mode(self):
        from repro.rdf.patterns import TriplePattern
        from repro.rdf.terms import Literal, URI, Variable
        exact = TriplePattern(Variable("x"), URI("S#p"), Literal("Asp%"))
        assert exact.routing_mode() == "exact"  # predicate wins
        only_prefix = TriplePattern(Variable("x"), Variable("p"),
                                    Literal("Asp%"))
        assert only_prefix.routing_mode() == "prefix"

    def test_mediation_prefix_search(self):
        from repro import GridVineNetwork, Literal, Schema, Triple, URI
        from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
        from repro.rdf.terms import Variable
        net = GridVineNetwork.build(num_peers=32, seed=14)
        schema = Schema("S", ["org"], domain="x")
        net.insert_schema(schema)
        net.insert_triples([
            Triple(URI("S:1"), URI("S#org"), Literal("Aspergillus niger")),
            Triple(URI("S:2"), URI("S#org"), Literal("Aspergillus oryzae")),
            Triple(URI("S:3"), URI("S#org"), Literal("Saccharomyces")),
        ])
        net.settle()
        x = Variable("x")
        query = ConjunctiveQuery(
            [TriplePattern(x, Variable("p"), Literal("Aspergillus%"))], [x])
        out = net.search_for(query, strategy="local")
        assert {str(r[0]) for r in out.results} == {"<S:1>", "<S:2>"}

    def test_prefix_and_exact_agree(self):
        from repro import GridVineNetwork, Literal, Schema, Triple, URI
        from repro.rdf.patterns import ConjunctiveQuery, TriplePattern
        from repro.rdf.terms import Variable
        net = GridVineNetwork.build(num_peers=24, seed=15)
        schema = Schema("S", ["org"], domain="x")
        net.insert_schema(schema)
        triples = [
            Triple(URI(f"S:{i}"), URI("S#org"),
                   Literal(f"Aspergillus strain {i}"))
            for i in range(10)
        ]
        net.insert_triples(triples)
        net.settle()
        x = Variable("x")
        via_predicate = net.search_for(ConjunctiveQuery(
            [TriplePattern(x, URI("S#org"), Literal("Aspergillus%"))],
            [x]), strategy="local")
        via_range = net.search_for(ConjunctiveQuery(
            [TriplePattern(x, Variable("p"), Literal("Aspergillus%"))],
            [x]), strategy="local")
        assert via_predicate.results == via_range.results
