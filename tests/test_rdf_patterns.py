"""Tests for triple patterns, conjunctive queries and binding joins."""

import pytest

from repro.rdf.patterns import (
    ConjunctiveQuery,
    TriplePattern,
    join_bindings,
)
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.triples import Position, Triple

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestPatternConstruction:
    def test_literal_subject_rejected(self):
        with pytest.raises(TypeError):
            TriplePattern(Literal("s"), URI("p"), X)

    def test_literal_predicate_rejected(self):
        with pytest.raises(TypeError):
            TriplePattern(X, Literal("p"), Y)

    def test_variables_and_constants(self):
        p = TriplePattern(X, URI("p"), Literal("%v%"))
        assert p.variables() == {X}
        assert set(p.constants()) == {Position.PREDICATE, Position.OBJECT}

    def test_replace(self):
        p = TriplePattern(X, URI("p"), Y)
        q = p.replace(Position.PREDICATE, URI("q"))
        assert q.predicate == URI("q")
        assert p.predicate == URI("p")  # original untouched

    def test_immutability(self):
        p = TriplePattern(X, URI("p"), Y)
        with pytest.raises(AttributeError):
            p.subject = Y


class TestRoutingPosition:
    def test_predicate_chosen_when_object_is_like(self):
        # The paper's example: object %Aspergillus% is not routable.
        p = TriplePattern(X, URI("EMBL#Organism"), Literal("%Aspergillus%"))
        assert p.routing_position() is Position.PREDICATE
        assert p.routing_constant() == URI("EMBL#Organism")

    def test_subject_most_specific(self):
        p = TriplePattern(URI("s"), URI("p"), Literal("o"))
        assert p.routing_position() is Position.SUBJECT

    def test_object_beats_predicate(self):
        p = TriplePattern(X, URI("p"), Literal("o"))
        assert p.routing_position() is Position.OBJECT

    def test_all_variable_pattern_unroutable(self):
        with pytest.raises(ValueError):
            TriplePattern(X, Y, Z).routing_position()

    def test_only_like_constant_unroutable(self):
        with pytest.raises(ValueError):
            TriplePattern(X, Y, Literal("%v%")).routing_position()


class TestPatternMatching:
    triple = Triple(URI("EMBL:A1"), URI("EMBL#Organism"),
                    Literal("Aspergillus niger"))

    def test_binds_variables(self):
        p = TriplePattern(X, URI("EMBL#Organism"), Y)
        assert p.matches(self.triple) == {
            X: URI("EMBL:A1"), Y: Literal("Aspergillus niger")}

    def test_like_object(self):
        p = TriplePattern(X, URI("EMBL#Organism"), Literal("%niger%"))
        assert p.matches(self.triple) == {X: URI("EMBL:A1")}

    def test_mismatch_returns_none(self):
        p = TriplePattern(X, URI("Other#Pred"), Y)
        assert p.matches(self.triple) is None

    def test_prior_bindings_respected(self):
        p = TriplePattern(X, URI("EMBL#Organism"), Y)
        consistent = p.matches(self.triple, {X: URI("EMBL:A1")})
        assert consistent is not None
        conflicting = p.matches(self.triple, {X: URI("EMBL:A2")})
        assert conflicting is None

    def test_uri_object_exact_match(self):
        triple = Triple(URI("s"), URI("p"), URI("o"))
        assert TriplePattern(X, URI("p"), URI("o")).matches(triple) == {
            X: URI("s")}
        assert TriplePattern(X, URI("p"), URI("other")).matches(triple) \
            is None


class TestConjunctiveQuery:
    def test_needs_patterns(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([], [X])

    def test_needs_distinguished(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([TriplePattern(X, URI("p"), Y)], [])

    def test_distinguished_must_appear(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([TriplePattern(X, URI("p"), Y)], [Z])

    def test_variables_union(self):
        q = ConjunctiveQuery(
            [TriplePattern(X, URI("p"), Y),
             TriplePattern(Y, URI("q"), Z)],
            [X, Z],
        )
        assert q.variables() == {X, Y, Z}

    def test_project(self):
        q = ConjunctiveQuery([TriplePattern(X, URI("p"), Y)], [Y, X])
        row = q.project({X: URI("s"), Y: Literal("v")})
        assert row == (Literal("v"), URI("s"))

    def test_str_matches_paper_syntax(self):
        q = ConjunctiveQuery(
            [TriplePattern(X, URI("EMBL#Organism"),
                           Literal("%Aspergillus%"))], [X])
        assert str(q) == (
            'SearchFor(x? : (x?, <EMBL#Organism>, "%Aspergillus%"))')

    def test_hashable_for_dedup(self):
        q1 = ConjunctiveQuery([TriplePattern(X, URI("p"), Y)], [X])
        q2 = ConjunctiveQuery([TriplePattern(X, URI("p"), Y)], [X])
        assert len({q1, q2}) == 1


class TestJoinBindings:
    def test_join_on_shared_variable(self):
        left = [{X: URI("a"), Y: URI("b")}]
        right = [{Y: URI("b"), Z: URI("c")}, {Y: URI("zz"), Z: URI("d")}]
        joined = join_bindings(left, right)
        assert joined == [{X: URI("a"), Y: URI("b"), Z: URI("c")}]

    def test_disjoint_variables_cross_product(self):
        left = [{X: URI("a")}, {X: URI("b")}]
        right = [{Y: URI("c")}]
        assert len(join_bindings(left, right)) == 2

    def test_empty_side_annihilates(self):
        assert join_bindings([], [{X: URI("a")}]) == []
        assert join_bindings([{X: URI("a")}], []) == []

    def test_seed_with_empty_binding(self):
        # [{}] is the join identity (used to fold over patterns).
        right = [{X: URI("a")}]
        assert join_bindings([{}], right) == right
